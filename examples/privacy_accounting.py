"""Privacy accounting walkthrough.

Shows how a worker's per-step (epsilon, delta) budget composes into an
end-to-end guarantee over a full training run, comparing the three
accountants the literature uses (basic, advanced, RDP/moments) plus
subsampling amplification — and how the injected noise scale relates
to the model's gradient signal (the paper's Eq. 8 numerator).

Run:  python examples/privacy_accounting.py
"""

import math

from repro.core.vn_ratio import dp_noise_total_variance
from repro.privacy import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    GaussianMechanism,
    RDPAccountant,
    amplify_by_subsampling,
)

EPSILON, DELTA = 0.2, 1e-6
G_MAX, BATCH, DIMENSION = 1e-2, 50, 69
STEPS = 1000
DATASET_SIZE = 8400


def main() -> None:
    mechanism = GaussianMechanism.for_clipped_gradients(EPSILON, DELTA, G_MAX, BATCH)
    print(f"per-step mechanism: {mechanism}")
    noise_norm = math.sqrt(dp_noise_total_variance(DIMENSION, G_MAX, BATCH, EPSILON, DELTA))
    print(
        f"expected noise norm sqrt(d) s = {noise_norm:.4f} vs gradient "
        f"signal <= G_max = {G_MAX}: the noise is {noise_norm / G_MAX:.1f}x "
        "the signal — Eq. 8's numerator in action\n"
    )

    basic = BasicCompositionAccountant().compose(EPSILON, DELTA, STEPS)
    advanced = AdvancedCompositionAccountant(slack_delta=1e-6).compose(
        EPSILON, DELTA, STEPS
    )
    rdp = RDPAccountant()
    rdp.step_gaussian(mechanism.noise_multiplier, STEPS)
    rdp_spend = rdp.get_privacy_spent(DELTA)

    print(f"after T = {STEPS} steps:")
    print(f"  basic composition   : eps = {basic.epsilon:8.2f}, delta = {basic.delta:.1e}")
    print(f"  advanced composition: eps = {advanced.epsilon:8.2f}, delta = {advanced.delta:.1e}")
    print(f"  RDP accountant      : eps = {rdp_spend.epsilon:8.2f}, delta = {rdp_spend.delta:.1e}")

    amplified = amplify_by_subsampling(EPSILON, DELTA, BATCH, DATASET_SIZE)
    print(
        f"\nwith subsampling amplification (q = {BATCH}/{DATASET_SIZE}): "
        f"per-step eps = {amplified.epsilon:.4f} — a future direction the "
        "paper's Section 7 points to."
    )


if __name__ == "__main__":
    main()
