"""Quickstart: Byzantine-resilient, differentially-private distributed SGD.

Reproduces the paper's core experiment in miniature: train logistic
regression on the phishing task with a parameter server, 11 workers of
which 5 are Byzantine, MDA aggregation, and (optionally) local DP
noise — then watch the two defences collide.

Run:  python examples/quickstart.py
"""

from repro import phishing_environment, train


def main() -> None:
    model, train_set, test_set = phishing_environment()
    print(f"task: {train_set.name}, d = {model.dimension} parameters")
    print(f"train/test: {train_set.num_points} / {test_set.num_points} points\n")

    cells = [
        ("honest baseline (averaging)", dict(gar="average", f=0)),
        ("MDA vs 'A Little Is Enough'", dict(gar="mda", f=5, attack="little")),
        (
            "MDA vs ALIE + DP (eps=0.2)",
            dict(gar="mda", f=5, attack="little", epsilon=0.2),
        ),
    ]
    for label, kwargs in cells:
        result = train(
            model=model,
            train_dataset=train_set,
            test_dataset=test_set,
            num_steps=400,
            batch_size=50,
            seed=1,
            **kwargs,
        )
        accuracy = result.history.max_accuracy
        print(f"{label:<32} best test accuracy: {accuracy:.3f}")
        if result.privacy is not None:
            print(f"{'':<32} privacy: {result.privacy.summary()}")

    print(
        "\nTakeaway (the paper's title question): each defence works alone, "
        "but at this batch size they do not add up."
    )


if __name__ == "__main__":
    main()
