"""Feasibility explorer: can YOUR configuration combine DP and
Byzantine resilience?

Walks the closed-form conditions of Table 1 / Propositions 1-3 for a
few model sizes and answers, per GAR: the minimum batch size, the
maximum tolerable Byzantine fraction, and the weakest privacy budget
that keeps the VN-ratio condition satisfiable.

Run:  python examples/feasibility_explorer.py
"""

from repro.core.feasibility import (
    master_condition_can_hold,
    mda_max_byzantine_fraction,
    min_batch_size_for_gar,
    sqrt_d_batch_rule,
)
from repro.core.tradeoff import min_epsilon_for_gar, tradeoff_summary
from repro.gars import get_gar

MODELS = [
    ("paper's logistic regression", 69),
    ("small CNN", 100_000),
    ("ResNet-50", 25_600_000),
]
N, F = 11, 5
EPSILON, DELTA = 0.2, 1e-6
BATCH = 50


def main() -> None:
    gar = get_gar("mda", N, F)
    print(
        f"GAR = MDA (n={N}, f={F}, k_F = {gar.k_f():.3f}); "
        f"budget eps={EPSILON}, delta={DELTA}\n"
    )
    header = (
        f"{'model':<30}{'d':>12}{'feasible@b=50':>15}"
        f"{'min batch':>12}{'max f/n':>10}{'min eps':>9}"
    )
    print(header)
    print("-" * len(header))
    for label, dimension in MODELS:
        feasible = master_condition_can_hold(gar.k_f(), dimension, BATCH, EPSILON, DELTA)
        min_batch = min_batch_size_for_gar(gar, dimension, EPSILON, DELTA)
        max_fraction = mda_max_byzantine_fraction(dimension, BATCH, EPSILON, DELTA)
        min_epsilon = min_epsilon_for_gar(gar, dimension, BATCH, DELTA)
        min_eps_text = f"{min_epsilon:.2f}" if min_epsilon != float("inf") else "none<1"
        print(
            f"{label:<30}{dimension:>12,}{str(feasible):>15}"
            f"{min_batch:>12,.0f}{max_fraction:>10.1e}{min_eps_text:>9}"
        )

    print(
        f"\nRule of thumb (Section 3): the batch must grow like sqrt(d); "
        f"for ResNet-50 that is b > {sqrt_d_batch_rule(25_600_000):,.0f}."
    )

    print("\nFull trade-off report for the paper's configuration:")
    for key, value in tradeoff_summary(gar, 69, BATCH, EPSILON, DELTA).items():
        print(f"  {key:<18}: {value}")


if __name__ == "__main__":
    main()
