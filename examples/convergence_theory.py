"""Theorem 1 hands-on: watch the error rate become linear in d.

Runs the strongly-convex mean-estimation task with the oracle GAR
(the lower-bound construction) for a few model sizes, with and without
DP noise, and compares the measured training error to the theorem's
closed-form upper and lower bounds.

Run:  python examples/convergence_theory.py  (takes ~30 seconds)
"""

import numpy as np

from repro import train
from repro.core.convergence import theorem1_bounds
from repro.data.synthetic import make_gaussian_mean_dataset
from repro.models.quadratic import MeanEstimationModel
from repro.optim.schedules import theorem1_schedule

T, BATCH = 300, 150
EPSILON, DELTA, G_MAX, SIGMA = 0.9, 1e-6, 2.0, 1.0
SEEDS = (1, 2, 3, 4, 5)


def measure(dimension: int, epsilon: float | None) -> float:
    model = MeanEstimationModel(dimension)
    errors = []
    for seed in SEEDS:
        mean = np.zeros(dimension)
        mean[0] = 0.1
        dataset = make_gaussian_mean_dataset(dimension, 20_000, SIGMA, mean, seed)
        result = train(
            model=model,
            train_dataset=dataset,
            num_steps=T,
            n=11,
            f=5,
            num_byzantine=0,
            gar="oracle",
            batch_size=BATCH,
            g_max=G_MAX,
            epsilon=epsilon,
            delta=DELTA,
            learning_rate=theorem1_schedule(model.STRONG_CONVEXITY, 0.0),
            momentum=0.0,
            seed=seed,
        )
        optimum = model.optimum(dataset.features)
        errors.append(0.5 * float(np.sum((result.final_parameters - optimum) ** 2)))
    return float(np.mean(errors))


def main() -> None:
    print(
        f"Mean estimation, oracle GAR, T={T}, b={BATCH}: "
        "E[Q(w)] - Q* vs Theorem 1 bounds\n"
    )
    header = f"{'d':>6}{'measured (DP)':>16}{'lower':>11}{'upper':>11}{'measured (no DP)':>18}"
    print(header)
    print("-" * len(header))
    for dimension in (8, 32, 128):
        with_dp = measure(dimension, EPSILON)
        without = measure(dimension, None)
        bounds = theorem1_bounds(
            T=T, dimension=dimension, batch_size=BATCH, epsilon=EPSILON,
            delta=DELTA, g_max=G_MAX, sigma=SIGMA,
        )
        print(
            f"{dimension:>6}{with_dp:>16.2e}{bounds.lower:>11.2e}"
            f"{bounds.upper:>11.2e}{without:>18.2e}"
        )
    print(
        "\nWith DP the error grows linearly in d (Theta(d log(1/delta) / "
        "(T b^2 eps^2))); without DP it is d-independent — Theorem 1."
    )


if __name__ == "__main__":
    main()
