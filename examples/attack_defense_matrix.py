"""Attack/defence matrix: every GAR against every attack.

Exercises the full substrate the paper builds on: five valid GARs at
the paper's (n=11, f=5) against five gradient-space attacks, without
DP.  Prints the best test accuracy per cell — a quick map of which
defences break under which adversaries.

Run:  python examples/attack_defense_matrix.py  (takes ~1 minute)
"""

from repro import phishing_environment, train

GARS = ["average", "median", "trimmed-mean", "meamed", "phocas", "mda"]
ATTACKS = ["little", "empire", "signflip", "random", "large-norm"]
STEPS = 300


def main() -> None:
    model, train_set, test_set = phishing_environment()
    print(
        f"Best test accuracy over {STEPS} steps, n=11 workers, "
        "f=5 Byzantine, b=50, no DP\n"
    )
    header = f"{'GAR':<14}" + "".join(f"{attack:>12}" for attack in ATTACKS)
    print(header)
    print("-" * len(header))
    for gar in GARS:
        cells = []
        for attack in ATTACKS:
            result = train(
                model=model,
                train_dataset=train_set,
                test_dataset=test_set,
                num_steps=STEPS,
                gar=gar,
                f=5,
                attack=attack,
                batch_size=50,
                eval_every=50,
                seed=1,
            )
            cells.append(result.history.max_accuracy)
        print(f"{gar:<14}" + "".join(f"{value:>12.3f}" for value in cells))
    print(
        "\nAveraging (top row) collapses under the unbounded attacks "
        "(random, large-norm) — one worker controls the mean — while the "
        "robust GARs hold everywhere: without DP noise, Byzantine "
        "resilience works.  (Worker momentum keeps averaging afloat "
        "against the bounded in-distribution attacks at this scale.)"
    )


if __name__ == "__main__":
    main()
