"""Gradient leakage demo: why workers inject DP noise at all.

Plays the honest-but-curious parameter server of Fig. 1(b): intercept a
worker's single-example gradient and reconstruct the training sample
exactly (the Zhu et al. 2019 leak, in closed form for linear models) —
then watch the calibrated Gaussian noise destroy the reconstruction.

Run:  python examples/gradient_leakage.py
"""

import numpy as np

from repro.analysis.leakage import invert_linear_gradient, reconstruction_error
from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.privacy.clipping import clip_by_l2_norm
from repro.privacy.mechanisms import GaussianMechanism
from repro.rng import generator_from_seed

G_MAX = 1e-2


def main() -> None:
    dataset = make_phishing_dataset(seed=0)
    model = LogisticRegressionModel(dataset.num_features, loss_kind="mse")
    rng = generator_from_seed(7)
    parameters = 0.05 * rng.standard_normal(model.dimension)

    victim = 1234
    features = dataset.features[victim : victim + 1]
    labels = dataset.labels[victim : victim + 1]
    gradient = clip_by_l2_norm(model.gradient(parameters, features, labels), G_MAX)

    recovered = invert_linear_gradient(gradient)
    error = reconstruction_error(features[0], recovered)
    print("--- without DP noise ---")
    print(f"true sample (first 8 features):      {features[0][:8]}")
    print(f"recovered from gradient (first 8):   {np.round(recovered[:8], 6)}")
    print(f"relative reconstruction error:       {error:.2e}  (exact leak!)\n")

    print("--- with the paper's DP noise (eps=0.2, delta=1e-6, b=1) ---")
    mechanism = GaussianMechanism.for_clipped_gradients(0.2, 1e-6, G_MAX, 1)
    noisy = mechanism.privatize(gradient, rng)
    try:
        recovered_noisy = invert_linear_gradient(noisy)
        error_noisy = reconstruction_error(features[0], recovered_noisy)
        print(f"recovered from noisy gradient (8):   {np.round(recovered_noisy[:8], 3)}")
        print(f"relative reconstruction error:       {error_noisy:.2f}")
        print("(error >= 1 means worse than guessing the zero vector)")
    except Exception as error_:  # zero bias coordinate: nothing to invert
        print(f"inversion failed outright: {error_}")


if __name__ == "__main__":
    main()
