"""Watch Eq. (8) happen: live VN-ratio monitoring during training.

Builds two identical clusters — one clean, one with the paper's DP
noise — and prints the per-round variance-to-norm ratio of what the
GAR actually aggregates (the workers' momentum vectors) against MDA's
tolerance k_F(11, 5) = 0.424.  Three regimes appear:

* raw b = 50 gradients: ratio ~1.8, 4x over the threshold — which is
  why worker momentum (an asymptotically ~14x VN reduction) is needed
  at all;
* clean momentum vectors: ratio ~0.5 and falling toward the threshold
  as the buffer builds up (the reduction factor needs ~1/(1-m) rounds
  to mature) — the regime where MDA defeats the attacks in practice;
* DP momentum vectors: ratio ~5.7 — more than 10x the clean value and
  far back over the threshold — Eq. (8) in action, the certificate
  evaporates.

Run:  python examples/vn_ratio_monitor.py
"""

from repro.analysis.monitor import VNRatioMonitor
from repro.data.batching import BatchSampler
from repro.distributed.cluster import Cluster
from repro.distributed.server import ParameterServer
from repro.distributed.trainer import build_mechanism
from repro.distributed.worker import HonestWorker
from repro.experiments.runner import phishing_environment
from repro.gars import get_gar
from repro.optim.sgd import SGDOptimizer
from repro.rng import SeedTree

BATCH, EPSILON, DELTA, G_MAX = 50, 0.2, 1e-6, 1e-2
ROUNDS = 30


def build_cluster(model, train_set, epsilon, worker_momentum=0.99):
    seeds = SeedTree(1)
    mechanism = None
    if epsilon is not None:
        mechanism = build_mechanism(
            "gaussian", epsilon, DELTA, G_MAX, BATCH, model.dimension
        )
    workers = [
        HonestWorker(
            worker_id=index,
            model=model,
            sampler=BatchSampler(train_set, BATCH, seeds.generator("batch", index)),
            noise_rng=seeds.generator("noise", index),
            g_max=G_MAX,
            mechanism=mechanism,
            momentum=worker_momentum,
        )
        for index in range(11)
    ]
    server = ParameterServer(
        initial_parameters=model.initial_parameters(),
        gar=get_gar("mda", 11, 5),
        optimizer=SGDOptimizer(2.0, momentum=0.0),
    )
    return Cluster(server=server, honest_workers=workers)


def main() -> None:
    model, train_set, _ = phishing_environment()
    gar = get_gar("mda", 11, 5)
    print(f"MDA tolerance k_F(11, 5) = {gar.k_f():.3f}\n")

    cells = (
        ("raw gradients, clean", None, 0.0),
        ("momentum, clean", None, 0.99),
        (f"momentum, DP eps={EPSILON}", EPSILON, 0.99),
    )
    for label, epsilon, worker_momentum in cells:
        cluster = build_cluster(model, train_set, epsilon, worker_momentum)
        monitor = VNRatioMonitor(cluster)
        for _ in range(ROUNDS):
            monitor.observe(cluster.step())
        trajectory = monitor.trajectory
        print(f"[{label}]")
        print(f"  {trajectory.summary()}")
        sample = ", ".join(f"{r:.2f}" for r in trajectory.submitted_ratios[-8:])
        print(f"  late rounds' submitted ratios: {sample}\n")

    print(
        "Worker momentum cuts the clean ratio ~4x (heading toward the "
        "threshold as the buffer matures); the DP noise multiplies it "
        "back up by >10x — Eq. (8) live, matching Proposition 1's verdict "
        "that no eps < 1 makes b = 50 feasible."
    )


if __name__ == "__main__":
    main()
