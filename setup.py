"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot use PEP-517
editable installs; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
