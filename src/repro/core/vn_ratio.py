"""The variance-to-norm (VN) ratio — Eq. (2) and Eq. (8) of the paper.

The VN ratio of the honest gradient distribution ``G_t`` is

.. math::

    \\rho = \\frac{\\sqrt{E ||G_t - E G_t||^2}}{||E G_t||}

and the *VN ratio condition* ``rho <= k_F(n, f)`` is the only known
sufficient test for ``(alpha, f)``-Byzantine resilience of a
statistically-robust GAR.

When each worker adds DP noise ``y ~ N(0, s^2 I_d)``, the submitted
gradient's variance gains ``d s^2``; with the Gaussian calibration of
Section 2.3 this is exactly

.. math::

    d s^2 = \\frac{8 d G_{max}^2 \\log(1.25/\\delta)}{\\epsilon^2 b^2},

giving the noisy condition of Eq. (8).  This module computes all three
views: empirical (from sampled gradients), theoretical (from moments),
and the DP-augmented combination.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ResilienceError
from repro.typing import as_gradient_matrix

__all__ = [
    "vn_ratio_from_moments",
    "empirical_gradient_moments",
    "empirical_vn_ratio",
    "dp_noise_total_variance",
    "dp_vn_ratio_from_moments",
    "vn_condition_holds",
]


def vn_ratio_from_moments(variance: float, mean_norm: float) -> float:
    """``sqrt(variance) / mean_norm`` with input validation.

    ``variance`` is the *total* variance ``E ||G - E G||^2`` (the trace
    of the covariance), not per-coordinate.
    """
    if variance < 0:
        raise ResilienceError(f"variance must be >= 0, got {variance}")
    if mean_norm <= 0:
        raise ResilienceError(
            f"mean_norm must be positive (a zero true gradient makes the "
            f"VN ratio undefined), got {mean_norm}"
        )
    return math.sqrt(variance) / mean_norm


def empirical_gradient_moments(gradients) -> tuple[float, float]:
    """Estimate ``(E ||G - E G||^2, ||E G||)`` from sampled gradients.

    ``gradients`` is an ``(m, d)`` stack of i.i.d. draws from the
    honest gradient distribution.  The variance estimate is the
    unbiased (``ddof=1``) total variance when ``m > 1``; a single draw
    yields variance 0.
    """
    matrix = as_gradient_matrix(gradients)
    mean = matrix.mean(axis=0)
    if matrix.shape[0] > 1:
        centered = matrix - mean[None, :]
        variance = float(np.sum(centered**2) / (matrix.shape[0] - 1))
    else:
        variance = 0.0
    return variance, float(np.linalg.norm(mean))


def empirical_vn_ratio(gradients) -> float:
    """VN ratio estimated from an ``(m, d)`` sample of honest gradients."""
    variance, mean_norm = empirical_gradient_moments(gradients)
    return vn_ratio_from_moments(variance, mean_norm)


def dp_noise_total_variance(
    dimension: int, g_max: float, batch_size: int, epsilon: float, delta: float
) -> float:
    """The ``8 d G_max^2 log(1.25/delta) / (epsilon^2 b^2)`` term of Eq. (8)."""
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if g_max <= 0:
        raise ResilienceError(f"g_max must be positive, got {g_max}")
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")
    if epsilon <= 0:
        raise ResilienceError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ResilienceError(f"delta must be in (0, 1), got {delta}")
    return (
        8.0
        * dimension
        * g_max**2
        * math.log(1.25 / delta)
        / (epsilon**2 * batch_size**2)
    )


def dp_vn_ratio_from_moments(
    variance: float,
    mean_norm: float,
    dimension: int,
    g_max: float,
    batch_size: int,
    epsilon: float,
    delta: float,
) -> float:
    """Left-hand side of Eq. (8): the VN ratio after DP noise injection."""
    noise = dp_noise_total_variance(dimension, g_max, batch_size, epsilon, delta)
    return vn_ratio_from_moments(variance + noise, mean_norm)


def vn_condition_holds(ratio: float, k_f: float) -> bool:
    """Whether the (possibly noisy) VN ratio satisfies ``ratio <= k_F``."""
    if ratio < 0:
        raise ResilienceError(f"ratio must be >= 0, got {ratio}")
    return ratio <= k_f
