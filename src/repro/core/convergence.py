"""Theorem 1: convergence bounds under DP + Byzantine resilience.

For a strongly-convex cost (Assumptions 1-4), any ``(alpha, f)``-
resilient GAR driven with DP-noised gradients and the schedule
``gamma_t = 1 / (lambda (1 - sin alpha) t)`` satisfies

* **upper bound** (Eq. 12):

  .. math::

      E[Q(w_{T+1})] - Q^* \\le \\frac{1}{T+1}
      \\cdot \\frac{\\mu c}{2 \\lambda^2 (1 - \\sin\\alpha)^2}
      \\cdot \\left( \\frac{\\sigma^2}{b} + d s^2 + G_{max}^2 \\right)

* **lower bound** (Cramér-Rao, on the mean-estimation landscape):

  .. math::

      E[Q(\\hat w)] - Q^* \\ge
      \\left( \\frac{\\sigma^2}{b} + d s^2 \\right) \\frac{1}{2 T}

* **rate**: both are ``Theta(d log(1/delta) / (T b^2 eps^2))`` in
  ``(d, T, b, eps, delta)`` once ``s`` is substituted.

Without DP (``s = 0``) the same upper bound is ``O(1/T)`` and
*independent of d* — the contrast the paper's abstract highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ResilienceError

__all__ = [
    "gaussian_noise_sigma",
    "effective_gradient_second_moment",
    "theorem1_upper_bound",
    "theorem1_lower_bound",
    "theorem1_rate",
    "TheoremOneBounds",
    "theorem1_bounds",
]


def _validate_common(T: int, batch_size: int) -> None:
    if T < 1:
        raise ResilienceError(f"T must be >= 1, got {T}")
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")


def gaussian_noise_sigma(
    g_max: float, batch_size: int, epsilon: float, delta: float
) -> float:
    """The paper's ``s = 2 G_max sqrt(2 log(1.25/delta)) / (b epsilon)``."""
    if g_max <= 0:
        raise ResilienceError(f"g_max must be positive, got {g_max}")
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")
    if epsilon <= 0:
        raise ResilienceError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ResilienceError(f"delta must be in (0, 1), got {delta}")
    return 2.0 * g_max * math.sqrt(2.0 * math.log(1.25 / delta)) / (batch_size * epsilon)


def effective_gradient_second_moment(
    sigma: float,
    batch_size: int,
    dimension: int,
    noise_sigma: float,
    g_max: float,
) -> float:
    """``sigma^2/b + d s^2 + G_max^2`` — the moment bound of Eq. (11)."""
    if sigma < 0:
        raise ResilienceError(f"sigma must be >= 0, got {sigma}")
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if noise_sigma < 0:
        raise ResilienceError(f"noise_sigma must be >= 0, got {noise_sigma}")
    if g_max < 0:
        raise ResilienceError(f"g_max must be >= 0, got {g_max}")
    _validate_common(1, batch_size)
    return sigma**2 / batch_size + dimension * noise_sigma**2 + g_max**2


def theorem1_upper_bound(
    *,
    T: int,
    dimension: int,
    batch_size: int,
    sigma: float,
    g_max: float,
    noise_sigma: float = 0.0,
    strong_convexity: float = 1.0,
    lipschitz: float = 1.0,
    alpha: float = 0.0,
    moment_constant: float = 2.0,
) -> float:
    """Right-hand side of Eq. (12).

    ``noise_sigma`` is the per-coordinate DP noise std ``s`` (0 = no
    DP); ``moment_constant`` is the resilience definition's ``c`` (the
    absolute constant of Eq. (18)).  The default 2 is the smallest
    value for which this closed form provably dominates the
    Cramér-Rao lower bound for every ``(T, sigma, G_max)`` — with
    ``c = 1`` the two Theta-rate expressions can cross by the constant
    slop the paper absorbs into the asymptotic notation.
    """
    _validate_common(T, batch_size)
    if strong_convexity <= 0 or lipschitz <= 0 or moment_constant <= 0:
        raise ResilienceError(
            "strong_convexity, lipschitz and moment_constant must be positive"
        )
    if not 0 <= alpha < math.pi / 2:
        raise ResilienceError(f"alpha must be in [0, pi/2), got {alpha}")
    moment = effective_gradient_second_moment(
        sigma, batch_size, dimension, noise_sigma, g_max
    )
    prefactor = (lipschitz * moment_constant) / (
        2.0 * strong_convexity**2 * (1.0 - math.sin(alpha)) ** 2
    )
    return prefactor * moment / (T + 1)


def theorem1_lower_bound(
    *,
    T: int,
    dimension: int,
    batch_size: int,
    sigma: float,
    noise_sigma: float = 0.0,
) -> float:
    """Cramér-Rao lower bound: ``(sigma^2/b + d s^2) / (2 T)``."""
    _validate_common(T, batch_size)
    if sigma < 0 or noise_sigma < 0:
        raise ResilienceError("sigma and noise_sigma must be >= 0")
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    return (sigma**2 / batch_size + dimension * noise_sigma**2) / (2.0 * T)


def theorem1_rate(
    dimension: int, T: int, batch_size: int, epsilon: float, delta: float
) -> float:
    """The headline ``d log(1/delta) / (T b^2 eps^2)`` rate (up to constants)."""
    _validate_common(T, batch_size)
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if epsilon <= 0:
        raise ResilienceError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ResilienceError(f"delta must be in (0, 1), got {delta}")
    return dimension * math.log(1.0 / delta) / (T * batch_size**2 * epsilon**2)


@dataclass(frozen=True)
class TheoremOneBounds:
    """Upper and lower bounds plus the DP noise scale used."""

    upper: float
    lower: float
    noise_sigma: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ResilienceError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}; "
                "the constants are inconsistent"
            )

    @property
    def width(self) -> float:
        """Multiplicative gap between the two bounds."""
        if self.lower == 0:
            return math.inf
        return self.upper / self.lower


def theorem1_bounds(
    *,
    T: int,
    dimension: int,
    batch_size: int,
    epsilon: float | None,
    delta: float,
    g_max: float,
    sigma: float,
    strong_convexity: float = 1.0,
    lipschitz: float = 1.0,
    alpha: float = 0.0,
    moment_constant: float = 2.0,
) -> TheoremOneBounds:
    """Convenience wrapper computing both bounds for one configuration.

    ``epsilon=None`` computes the DP-free bounds (``s = 0``).
    """
    if epsilon is None:
        noise_sigma = 0.0
    else:
        noise_sigma = gaussian_noise_sigma(g_max, batch_size, epsilon, delta)
    upper = theorem1_upper_bound(
        T=T,
        dimension=dimension,
        batch_size=batch_size,
        sigma=sigma,
        g_max=g_max,
        noise_sigma=noise_sigma,
        strong_convexity=strong_convexity,
        lipschitz=lipschitz,
        alpha=alpha,
        moment_constant=moment_constant,
    )
    lower = theorem1_lower_bound(
        T=T,
        dimension=dimension,
        batch_size=batch_size,
        sigma=sigma,
        noise_sigma=noise_sigma,
    )
    return TheoremOneBounds(upper=upper, lower=lower, noise_sigma=noise_sigma)
