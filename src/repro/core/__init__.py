"""Core contribution: the paper's DP-vs-Byzantine-resilience analysis.

* :mod:`repro.core.vn_ratio` — Eq. (2) and its DP-augmented form Eq. (8);
* :mod:`repro.core.resilience` — ``(alpha, f)`` certification;
* :mod:`repro.core.feasibility` — Propositions 1-3 / Table 1;
* :mod:`repro.core.convergence` — Theorem 1 upper/lower bounds;
* :mod:`repro.core.tradeoff` — solving the feasibility inequality for
  each knob (epsilon, batch size, f).
"""

from repro.core.convergence import (
    TheoremOneBounds,
    effective_gradient_second_moment,
    gaussian_noise_sigma,
    theorem1_bounds,
    theorem1_lower_bound,
    theorem1_rate,
    theorem1_upper_bound,
)
from repro.core.feasibility import (
    bulyan_min_batch_size,
    krum_min_batch_size,
    master_condition_can_hold,
    max_dimension_for_gar,
    mda_max_byzantine_fraction,
    meamed_min_batch_size,
    median_min_batch_size,
    min_batch_size_for_gar,
    phocas_max_byzantine_fraction,
    privacy_constant,
    sqrt_d_batch_rule,
    trimmed_mean_max_byzantine_fraction,
)
from repro.core.resilience import (
    ResilienceCertificate,
    angle_condition_holds,
    certify_vn_condition,
    estimate_alpha,
)
from repro.core.tradeoff import (
    max_tolerable_byzantine,
    min_epsilon_for_gar,
    tradeoff_summary,
)
from repro.core.vn_ratio import (
    dp_noise_total_variance,
    dp_vn_ratio_from_moments,
    empirical_gradient_moments,
    empirical_vn_ratio,
    vn_condition_holds,
    vn_ratio_from_moments,
)

__all__ = [
    "ResilienceCertificate",
    "TheoremOneBounds",
    "angle_condition_holds",
    "bulyan_min_batch_size",
    "certify_vn_condition",
    "dp_noise_total_variance",
    "dp_vn_ratio_from_moments",
    "effective_gradient_second_moment",
    "empirical_gradient_moments",
    "empirical_vn_ratio",
    "estimate_alpha",
    "gaussian_noise_sigma",
    "krum_min_batch_size",
    "master_condition_can_hold",
    "max_dimension_for_gar",
    "max_tolerable_byzantine",
    "mda_max_byzantine_fraction",
    "meamed_min_batch_size",
    "median_min_batch_size",
    "min_batch_size_for_gar",
    "min_epsilon_for_gar",
    "phocas_max_byzantine_fraction",
    "privacy_constant",
    "sqrt_d_batch_rule",
    "theorem1_bounds",
    "theorem1_lower_bound",
    "theorem1_rate",
    "theorem1_upper_bound",
    "tradeoff_summary",
    "trimmed_mean_max_byzantine_fraction",
    "vn_condition_holds",
    "vn_ratio_from_moments",
]
