"""Feasibility of combining DP with Byzantine resilience — Table 1.

Propositions 1-3 of the paper derive, per GAR, a *necessary* condition
for the DP-augmented VN ratio condition (Eq. 8) to hold.  All of them
flow from one master inequality (Eq. 13 in Appendix A): since the DP
noise alone contributes ``8 d G_max^2 log(1.25/delta) / (eps^2 b^2)``
variance and ``||E G_t|| <= G_max``, the VN condition *cannot* hold
whenever

.. math::

    k_F(n, f) < \\frac{\\sqrt{8 d}}{C b},
    \\qquad C = \\frac{\\epsilon}{\\sqrt{\\log(1.25/\\delta)}}.

Per-GAR closed forms (Table 1):

* MDA (Prop. 1):       ``f/n <= C b / (8 sqrt(d) + C b)``
* Krum/Bulyan (Prop. 2):  needs ``C b > sqrt(16 d (n + f^2))`` i.e.
  ``b in Omega(sqrt(n d))``
* Median (Prop. 2):    needs ``C b > sqrt(4 d (n + 1))``
* Meamed (Prop. 2):    needs ``C b > sqrt(40 d (n + 1))``
* Trimmed Mean (Prop. 3): ``f/n <= C^2 b^2 / (16 d + 2 C^2 b^2)``
* Phocas (Prop. 3):    ``f/n <= C^2 b^2 / (64 d + 2 C^2 b^2)``

This module implements the master inequality exactly (for any GAR) and
the closed forms, which tests cross-validate against each other.
"""

from __future__ import annotations

import math

from repro.exceptions import ResilienceError
from repro.gars import constants as gar_constants
from repro.gars.base import GAR

__all__ = [
    "privacy_constant",
    "master_condition_can_hold",
    "min_batch_size_for_gar",
    "max_dimension_for_gar",
    "mda_max_byzantine_fraction",
    "trimmed_mean_max_byzantine_fraction",
    "phocas_max_byzantine_fraction",
    "krum_min_batch_size",
    "bulyan_min_batch_size",
    "median_min_batch_size",
    "meamed_min_batch_size",
    "sqrt_d_batch_rule",
]


def _validate_budget(epsilon: float, delta: float) -> None:
    if not 0 < epsilon < 1:
        raise ResilienceError(
            f"the paper's analysis assumes epsilon in (0, 1), got {epsilon}"
        )
    if not 0 < delta < 1:
        raise ResilienceError(
            f"the paper's analysis assumes delta in (0, 1), got {delta}"
        )


def _validate_d_b(dimension: int, batch_size: int | float) -> None:
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")


def privacy_constant(epsilon: float, delta: float) -> float:
    """``C = epsilon / sqrt(log(1.25/delta))`` from the propositions.

    Since ``(epsilon, delta) in (0, 1)^2``, ``C`` is small — which is
    precisely why the conditions below bite.
    """
    _validate_budget(epsilon, delta)
    return epsilon / math.sqrt(math.log(1.25 / delta))


def master_condition_can_hold(
    k_f: float, dimension: int, batch_size: int, epsilon: float, delta: float
) -> bool:
    """Whether Eq. (8) *can* hold for a GAR with constant ``k_f``.

    Implements the contrapositive of Eq. (13): the noisy VN condition
    is impossible whenever ``k_f < sqrt(8 d) / (C b)``; it *can* hold
    (for a sufficiently concentrated honest distribution with gradients
    near the ``G_max`` bound) exactly when ``k_f >= sqrt(8 d) / (C b)``.
    """
    if k_f < 0:
        raise ResilienceError(f"k_f must be >= 0, got {k_f}")
    _validate_d_b(dimension, batch_size)
    if math.isinf(k_f):
        return True
    constant = privacy_constant(epsilon, delta)
    return k_f >= math.sqrt(8.0 * dimension) / (constant * batch_size)


def min_batch_size_for_gar(
    gar: GAR, dimension: int, epsilon: float, delta: float
) -> float:
    """Smallest (real-valued) batch size for which Eq. (8) can hold.

    Solves the master inequality for ``b``:
    ``b >= sqrt(8 d) / (C k_F(n, f))``.  Returns 1.0 when the GAR's
    ``k_F`` is infinite (no constraint).
    """
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    k_f = gar.k_f()
    if math.isinf(k_f):
        return 1.0
    if k_f <= 0:
        return math.inf
    constant = privacy_constant(epsilon, delta)
    return math.sqrt(8.0 * dimension) / (constant * k_f)


def max_dimension_for_gar(
    gar: GAR, batch_size: int, epsilon: float, delta: float
) -> float:
    """Largest model size ``d`` for which Eq. (8) can hold.

    Solves the master inequality for ``d``:
    ``d <= (C b k_F)^2 / 8``.
    """
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")
    k_f = gar.k_f()
    if math.isinf(k_f):
        return math.inf
    constant = privacy_constant(epsilon, delta)
    return (constant * batch_size * k_f) ** 2 / 8.0


def mda_max_byzantine_fraction(
    dimension: int, batch_size: int, epsilon: float, delta: float
) -> float:
    """Proposition 1: MDA needs ``f/n <= C b / (8 sqrt(d) + C b)``."""
    _validate_d_b(dimension, batch_size)
    constant = privacy_constant(epsilon, delta)
    product = constant * batch_size
    return product / (8.0 * math.sqrt(dimension) + product)


def trimmed_mean_max_byzantine_fraction(
    dimension: int, batch_size: int, epsilon: float, delta: float
) -> float:
    """Proposition 3: Trimmed Mean needs
    ``f/n <= C^2 b^2 / (16 d + 2 C^2 b^2)``."""
    _validate_d_b(dimension, batch_size)
    squared = (privacy_constant(epsilon, delta) * batch_size) ** 2
    return squared / (16.0 * dimension + 2.0 * squared)


def phocas_max_byzantine_fraction(
    dimension: int, batch_size: int, epsilon: float, delta: float
) -> float:
    """Proposition 3: Phocas needs ``f/n <= C^2 b^2 / (64 d + 2 C^2 b^2)``."""
    _validate_d_b(dimension, batch_size)
    squared = (privacy_constant(epsilon, delta) * batch_size) ** 2
    return squared / (64.0 * dimension + 2.0 * squared)


def krum_min_batch_size(
    dimension: int, n: int, f: int, epsilon: float, delta: float
) -> float:
    """Proposition 2's sufficient-failure threshold for Krum:

    the VN condition fails whenever
    ``sqrt(16 d (n + f^2)) > C b``, so
    ``b >= sqrt(16 d (n + f^2)) / C`` is necessary.

    Note this uses the proof's relaxation ``eta(n, f) > n + f^2`` and is
    therefore *looser* (smaller) than the exact
    :func:`min_batch_size_for_gar`; both are necessary conditions.
    """
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    gar_constants.require_krum_valid(n, f)
    constant = privacy_constant(epsilon, delta)
    return math.sqrt(16.0 * dimension * (n + f**2)) / constant


def bulyan_min_batch_size(
    dimension: int, n: int, f: int, epsilon: float, delta: float
) -> float:
    """Bulyan shares Krum's bound, with the ``n >= 4 f + 3`` precondition."""
    gar_constants.require_bulyan_valid(n, f)
    return krum_min_batch_size(dimension, n, f, epsilon, delta)


def median_min_batch_size(
    dimension: int, n: int, epsilon: float, delta: float
) -> float:
    """Proposition 2 for Median: ``b >= sqrt(4 d (n + 1)) / C`` is necessary."""
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if n < 1:
        raise ResilienceError(f"n must be >= 1, got {n}")
    constant = privacy_constant(epsilon, delta)
    return math.sqrt(4.0 * dimension * (n + 1)) / constant


def meamed_min_batch_size(
    dimension: int, n: int, epsilon: float, delta: float
) -> float:
    """Proposition 2 for Meamed: ``b >= sqrt(40 d (n + 1)) / C`` is necessary."""
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if n < 1:
        raise ResilienceError(f"n must be >= 1, got {n}")
    constant = privacy_constant(epsilon, delta)
    return math.sqrt(40.0 * dimension * (n + 1)) / constant


def sqrt_d_batch_rule(dimension: int) -> float:
    """The paper's headline illustration: ``b`` must grow like ``sqrt(d)``.

    For ResNet-50's ``d = 25.6e6`` this gives the "batch size
    ``b > 5000``" quoted in Section 3.
    """
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    return math.sqrt(dimension)
