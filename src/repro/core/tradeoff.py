"""Privacy/robustness trade-off solvers.

Inverts the master feasibility inequality of
:mod:`repro.core.feasibility` — ``k_F(n, f) >= sqrt(8 d) / (C b)`` with
``C = eps / sqrt(log(1.25/delta))`` — for each variable in turn, so a
practitioner can ask:

* "Given my model size and batch, what's the weakest privacy I must
  settle for?"  (:func:`min_epsilon_for_gar`)
* "Given my privacy target, how big must batches be?"
  (delegated to :func:`repro.core.feasibility.min_batch_size_for_gar`)
* "Given everything, how many Byzantine workers can I tolerate?"
  (:func:`max_tolerable_byzantine`)
"""

from __future__ import annotations

import math

from repro.core.feasibility import master_condition_can_hold, privacy_constant
from repro.exceptions import ResilienceError
from repro.gars.base import GAR

__all__ = [
    "min_epsilon_for_gar",
    "max_tolerable_byzantine",
    "tradeoff_summary",
]


def min_epsilon_for_gar(
    gar: GAR, dimension: int, batch_size: int, delta: float
) -> float:
    """Smallest per-step ``epsilon`` for which Eq. (8) can hold.

    Solves ``C >= sqrt(8 d) / (b k_F)`` for ``epsilon``.  Returns
    ``math.inf`` when the answer exceeds 1 — i.e. no valid Gaussian-
    mechanism budget exists at all (the mechanism needs
    ``epsilon < 1``), which is the paper's "do not add up" regime.
    """
    if dimension < 1:
        raise ResilienceError(f"dimension must be >= 1, got {dimension}")
    if batch_size < 1:
        raise ResilienceError(f"batch_size must be >= 1, got {batch_size}")
    if not 0 < delta < 1:
        raise ResilienceError(f"delta must be in (0, 1), got {delta}")
    k_f = gar.k_f()
    if math.isinf(k_f):
        return 0.0
    if k_f <= 0:
        return math.inf
    epsilon = math.sqrt(math.log(1.25 / delta)) * math.sqrt(8.0 * dimension) / (
        batch_size * k_f
    )
    return epsilon if epsilon < 1.0 else math.inf


def max_tolerable_byzantine(
    gar_class: type[GAR],
    n: int,
    dimension: int,
    batch_size: int,
    epsilon: float,
    delta: float,
) -> int:
    """Largest ``f`` for which ``gar_class(n, f)`` can satisfy Eq. (8).

    Scans ``f`` upward until either the GAR's own precondition breaks
    or the master feasibility inequality fails; returns the last ``f``
    that works (possibly 0).
    """
    if n < 1:
        raise ResilienceError(f"n must be >= 1, got {n}")
    best = -1
    for f in range(0, n):
        if not gar_class.supports(n, f):
            break
        gar = gar_class(n, f)
        if not master_condition_can_hold(gar.k_f(), dimension, batch_size, epsilon, delta):
            break
        best = f
    if best < 0:
        raise ResilienceError(
            f"{gar_class.name} cannot satisfy the noisy VN condition even "
            f"with f=0 for d={dimension}, b={batch_size}, eps={epsilon}, "
            f"delta={delta}"
        )
    return best


def tradeoff_summary(
    gar: GAR, dimension: int, batch_size: int, epsilon: float, delta: float
) -> dict:
    """One-stop report for a configuration.

    Returns a dict with the privacy constant ``C``, the GAR's ``k_F``,
    the master-inequality threshold, whether the condition can hold,
    and the minimum epsilon/batch fixes when it cannot.
    """
    from repro.core.feasibility import min_batch_size_for_gar  # local: avoid cycle

    constant = privacy_constant(epsilon, delta)
    k_f = gar.k_f()
    threshold = (
        0.0 if math.isinf(k_f) else math.sqrt(8.0 * dimension) / (constant * batch_size)
    )
    feasible = master_condition_can_hold(k_f, dimension, batch_size, epsilon, delta)
    return {
        "gar": gar.name,
        "n": gar.n,
        "f": gar.f,
        "dimension": dimension,
        "batch_size": batch_size,
        "epsilon": epsilon,
        "delta": delta,
        "privacy_constant": constant,
        "k_f": k_f,
        "required_k_f": threshold,
        "feasible": feasible,
        "min_batch_size": min_batch_size_for_gar(gar, dimension, epsilon, delta),
        "min_epsilon": min_epsilon_for_gar(gar, dimension, batch_size, delta),
    }
