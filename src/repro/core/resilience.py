"""``(alpha, f)``-Byzantine resilience certification.

Two complementary tools:

* :func:`certify_vn_condition` — the theoretical route: check the
  (noisy) VN ratio against the GAR's ``k_F(n, f)`` constant
  (Eq. 2 / Eq. 8) and report the margin.
* :func:`estimate_alpha` / :func:`angle_condition_holds` — the
  empirical route: given Monte-Carlo estimates of ``E[R_t]`` (the
  GAR's expected output) and the true gradient, measure the angle
  condition (1) of the resilience definition directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.vn_ratio import (
    dp_vn_ratio_from_moments,
    vn_ratio_from_moments,
)
from repro.exceptions import ResilienceError
from repro.gars.base import GAR
from repro.typing import Vector

__all__ = [
    "ResilienceCertificate",
    "certify_vn_condition",
    "estimate_alpha",
    "angle_condition_holds",
]


@dataclass(frozen=True)
class ResilienceCertificate:
    """Outcome of a VN-ratio resilience check.

    Attributes
    ----------
    satisfied:
        Whether ``vn_ratio <= k_f`` — i.e. whether the *sufficient*
        condition for ``(alpha, f)``-resilience holds.
    vn_ratio:
        The (noise-augmented, when DP is on) VN ratio.
    k_f:
        The GAR's tolerance constant.
    margin:
        ``k_f - vn_ratio``; negative when the condition fails.
    dp_enabled:
        Whether the DP noise term was included.
    """

    satisfied: bool
    vn_ratio: float
    k_f: float
    margin: float
    dp_enabled: bool

    def __str__(self) -> str:
        status = "SATISFIED" if self.satisfied else "VIOLATED"
        noise = "with DP noise" if self.dp_enabled else "without DP"
        return (
            f"VN condition {status} {noise}: ratio {self.vn_ratio:.4g} "
            f"vs k_F {self.k_f:.4g} (margin {self.margin:+.4g})"
        )


def certify_vn_condition(
    gar: GAR,
    variance: float,
    mean_norm: float,
    *,
    dimension: int | None = None,
    g_max: float | None = None,
    batch_size: int | None = None,
    epsilon: float | None = None,
    delta: float | None = None,
) -> ResilienceCertificate:
    """Check Eq. (2) — or Eq. (8) when the DP arguments are given.

    Parameters
    ----------
    gar:
        The aggregation rule (provides ``k_F(n, f)``).
    variance, mean_norm:
        The honest gradient distribution's total variance
        ``E||G - EG||^2`` and true-gradient norm ``||E G||``
        (e.g. from :func:`repro.core.vn_ratio.empirical_gradient_moments`).
    dimension, g_max, batch_size, epsilon, delta:
        Provide all five to include the DP noise term; provide none for
        the noise-free condition.
    """
    dp_arguments = (dimension, g_max, batch_size, epsilon, delta)
    provided = [argument is not None for argument in dp_arguments]
    if any(provided) and not all(provided):
        raise ResilienceError(
            "either provide all of (dimension, g_max, batch_size, epsilon, "
            "delta) for the DP-augmented check, or none of them"
        )
    dp_enabled = all(provided)
    if dp_enabled:
        ratio = dp_vn_ratio_from_moments(
            variance, mean_norm, dimension, g_max, batch_size, epsilon, delta
        )
    else:
        ratio = vn_ratio_from_moments(variance, mean_norm)
    k_f = gar.k_f()
    return ResilienceCertificate(
        satisfied=ratio <= k_f,
        vn_ratio=ratio,
        k_f=k_f,
        margin=k_f - ratio,
        dp_enabled=dp_enabled,
    )


def estimate_alpha(expected_output: Vector, true_gradient: Vector) -> float:
    """Smallest ``alpha`` for which condition (1) holds, in radians.

    Condition (1) requires
    ``<E[R_t], grad Q> >= (1 - sin alpha) ||grad Q||^2 > 0``.
    Solving for equality gives
    ``sin alpha = 1 - <E[R_t], grad Q> / ||grad Q||^2``.

    Raises
    ------
    ResilienceError
        If no ``alpha in [0, pi/2)`` works — the expected output points
        too far away from (or against) the true gradient.
    """
    expected_output = np.asarray(expected_output, dtype=np.float64)
    true_gradient = np.asarray(true_gradient, dtype=np.float64)
    norm_squared = float(np.dot(true_gradient, true_gradient))
    if norm_squared <= 0:
        raise ResilienceError("true gradient is zero; the angle condition is undefined")
    sine = 1.0 - float(np.dot(expected_output, true_gradient)) / norm_squared
    if sine >= 1.0:
        raise ResilienceError(
            f"no alpha in [0, pi/2) satisfies condition (1): required "
            f"sin(alpha) = {sine:.4g} >= 1"
        )
    return math.asin(max(sine, 0.0))


def angle_condition_holds(
    expected_output: Vector, true_gradient: Vector, alpha: float
) -> bool:
    """Check condition (1) of ``(alpha, f)``-resilience at a given ``alpha``."""
    if not 0 <= alpha < math.pi / 2:
        raise ResilienceError(f"alpha must be in [0, pi/2), got {alpha}")
    expected_output = np.asarray(expected_output, dtype=np.float64)
    true_gradient = np.asarray(true_gradient, dtype=np.float64)
    norm_squared = float(np.dot(true_gradient, true_gradient))
    if norm_squared <= 0:
        raise ResilienceError("true gradient is zero; the angle condition is undefined")
    inner = float(np.dot(expected_output, true_gradient))
    return inner >= (1.0 - math.sin(alpha)) * norm_squared and inner > 0
