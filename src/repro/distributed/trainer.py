"""High-level training entry point.

:func:`train` assembles the whole pipeline — data sharding, workers,
DP mechanism, attack, GAR, server — from plain keyword arguments,
runs the synchronous rounds, and returns a :class:`TrainingResult`
with the paper's metrics (per-step training loss over honest batches,
periodic test accuracy) plus an end-to-end privacy report.

Defaults reproduce the paper's experimental setup (Section 5.1):
n = 11 workers, f = 5 Byzantine, MDA, batch size 50, G_max = 1e-2,
learning rate 2, momentum 0.99, 1000 steps, delta = 1e-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks import ByzantineAttack, get_attack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.data.sharding import shard_by_label, shard_iid
from repro.distributed.cluster import Cluster
from repro.distributed.network import LossyNetwork, PerfectNetwork
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.gars import GAR, get_gar
from repro.gars.average import AverageGAR
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.optim.schedules import LearningRateSchedule
from repro.optim.sgd import SGDOptimizer
from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    PrivacySpend,
    RDPAccountant,
)
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism, NoiseMechanism
from repro.rng import SeedTree
from repro.typing import Vector

__all__ = ["train", "TrainingResult", "PrivacyReport", "build_mechanism"]

NOISE_KINDS = ("gaussian", "laplace")
MOMENTUM_PLACEMENTS = ("server", "worker")
DATA_DISTRIBUTIONS = ("shared", "iid-shards", "label-shards")


@dataclass(frozen=True)
class PrivacyReport:
    """End-to-end privacy accounting for one training run."""

    per_step: PrivacySpend
    noise_sigma: float
    basic: PrivacySpend
    advanced: PrivacySpend
    rdp: PrivacySpend | None

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"per-step ({self.per_step.epsilon:.3g}, {self.per_step.delta:.3g})-DP",
            f"basic total ({self.basic.epsilon:.3g}, {self.basic.delta:.3g})",
            f"advanced total ({self.advanced.epsilon:.3g}, {self.advanced.delta:.3g})",
        ]
        if self.rdp is not None:
            parts.append(f"RDP total ({self.rdp.epsilon:.3g}, {self.rdp.delta:.3g})")
        return "; ".join(parts)


@dataclass
class TrainingResult:
    """Everything :func:`train` produces."""

    history: TrainingHistory
    final_parameters: Vector = field(repr=False)
    privacy: PrivacyReport | None
    config: dict = field(repr=False)

    @property
    def final_loss(self) -> float:
        """Training loss at the last step."""
        return self.history.final_loss

    @property
    def final_accuracy(self) -> float:
        """Test accuracy at the last evaluation (if any were recorded)."""
        return self.history.final_accuracy


def build_mechanism(
    noise_kind: str,
    epsilon: float,
    delta: float,
    g_max: float,
    batch_size: int,
    dimension: int,
) -> NoiseMechanism:
    """Construct the per-worker DP mechanism the paper's Section 2.3 defines."""
    if noise_kind == "gaussian":
        return GaussianMechanism.for_clipped_gradients(epsilon, delta, g_max, batch_size)
    if noise_kind == "laplace":
        return LaplaceMechanism.for_clipped_gradients(epsilon, g_max, batch_size, dimension)
    raise ConfigurationError(f"noise_kind must be one of {NOISE_KINDS}, got {noise_kind!r}")


def _resolve_gar(gar, n: int, f: int, gar_kwargs: dict | None) -> GAR:
    if isinstance(gar, GAR):
        if gar.n != n or gar.f != f:
            raise ConfigurationError(
                f"provided GAR is bound to (n={gar.n}, f={gar.f}) but the run "
                f"uses (n={n}, f={f})"
            )
        return gar
    kwargs = dict(gar_kwargs or {})
    if gar == AverageGAR.name and f > 0:
        # The experiments deliberately run the non-robust baseline.
        kwargs.setdefault("allow_byzantine", True)
    return get_gar(gar, n, f, **kwargs)


def _resolve_attack(attack, attack_kwargs: dict | None) -> ByzantineAttack | None:
    if attack is None:
        return None
    if isinstance(attack, ByzantineAttack):
        if attack_kwargs:
            raise ConfigurationError(
                "attack_kwargs only apply when the attack is given by name"
            )
        return attack
    return get_attack(attack, **(attack_kwargs or {}))


def train(
    *,
    model: Model,
    train_dataset: Dataset,
    test_dataset: Dataset | None = None,
    num_steps: int = 1000,
    n: int = 11,
    f: int = 5,
    num_byzantine: int | None = None,
    gar: str | GAR = "mda",
    gar_kwargs: dict | None = None,
    attack: str | ByzantineAttack | None = None,
    attack_kwargs: dict | None = None,
    batch_size: int = 50,
    g_max: float | None = 1e-2,
    epsilon: float | None = None,
    delta: float = 1e-6,
    noise_kind: str = "gaussian",
    learning_rate: float | LearningRateSchedule = 2.0,
    momentum: float = 0.99,
    momentum_at: str = "worker",
    nesterov: bool = False,
    clip_mode: str = "batch",
    drop_probability: float = 0.0,
    data_distribution: str = "shared",
    eval_every: int = 50,
    seed: int = 1,
    record_gradients: bool = False,
) -> TrainingResult:
    """Run one distributed training experiment end to end.

    Parameters mirror the paper's Section 5.1; see the module docstring
    for the defaults.  Key semantics:

    * ``f`` is the GAR's declared tolerance; ``num_byzantine`` is how
      many workers actually attack (default: ``f`` when an attack is
      given, else 0).  The paper's averaging runs correspond to
      ``gar="average"``, ``attack=None``.
    * ``epsilon=None`` disables DP entirely; otherwise every honest
      worker runs the ``noise_kind`` mechanism with budget
      ``(epsilon, delta)`` per step.
    * ``momentum_at`` places the momentum buffer at each ``"worker"``
      (the default — the distributed-momentum scheme of El-Mhamdi et
      al. 2021 [16], whose attacks the paper reuses; worker momentum is
      what lets MDA resist them in the no-DP columns of Figs. 2-4) or
      at the ``"server"`` (classical heavy-ball on the aggregate,
      provided as an ablation).
    * ``data_distribution`` controls worker data: ``"shared"`` (the
      paper's model — every worker samples the full training set),
      ``"iid-shards"`` (disjoint random shards) or ``"label-shards"``
      (pathological non-IID label-sorted shards — an extension beyond
      the paper's i.i.d. assumption).

    Returns
    -------
    TrainingResult
        Metrics history, final parameters, privacy report (``None``
        when DP is off) and an echo of the configuration.
    """
    if num_steps < 1:
        raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
    if eval_every < 1:
        raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
    if momentum_at not in MOMENTUM_PLACEMENTS:
        raise ConfigurationError(
            f"momentum_at must be one of {MOMENTUM_PLACEMENTS}, got {momentum_at!r}"
        )
    if num_byzantine is None:
        num_byzantine = f if attack is not None else 0
    if num_byzantine > f:
        raise ConfigurationError(
            f"num_byzantine ({num_byzantine}) cannot exceed the declared f ({f})"
        )
    num_honest = n - num_byzantine
    if num_honest < 1:
        raise ConfigurationError("need at least one honest worker")

    seeds = SeedTree(seed)
    resolved_gar = _resolve_gar(gar, n, f, gar_kwargs)
    resolved_attack = _resolve_attack(attack, attack_kwargs)
    if num_byzantine > 0 and resolved_attack is None:
        raise ConfigurationError("num_byzantine > 0 requires an attack")

    mechanism: NoiseMechanism | None = None
    if epsilon is not None:
        if g_max is None:
            raise ConfigurationError("DP requires g_max (Assumption 1)")
        mechanism = build_mechanism(
            noise_kind, epsilon, delta, g_max, batch_size, model.dimension
        )

    worker_momentum = momentum if momentum_at == "worker" else 0.0
    server_momentum = momentum if momentum_at == "server" else 0.0

    if data_distribution == "shared":
        worker_datasets = [train_dataset] * num_honest
    elif data_distribution == "iid-shards":
        worker_datasets = shard_iid(train_dataset, num_honest, seeds.generator("shards"))
    elif data_distribution == "label-shards":
        worker_datasets = shard_by_label(
            train_dataset, num_honest, seeds.generator("shards")
        )
    else:
        raise ConfigurationError(
            f"data_distribution must be one of {DATA_DISTRIBUTIONS}, "
            f"got {data_distribution!r}"
        )

    honest_workers = [
        HonestWorker(
            worker_id=index,
            model=model,
            sampler=BatchSampler(
                worker_datasets[index],
                batch_size,
                seeds.generator("worker", index, "batch"),
            ),
            noise_rng=seeds.generator("worker", index, "noise"),
            g_max=g_max,
            mechanism=mechanism,
            clip_mode=clip_mode,
            momentum=worker_momentum,
        )
        for index in range(num_honest)
    ]

    optimizer = SGDOptimizer(learning_rate, momentum=server_momentum, nesterov=nesterov)
    server = ParameterServer(
        initial_parameters=model.initial_parameters(seeds.generator("init")),
        gar=resolved_gar,
        optimizer=optimizer,
        record_received=record_gradients,
    )
    if drop_probability > 0.0:
        network = LossyNetwork(drop_probability, seeds.generator("network"))
    else:
        network = PerfectNetwork()
    cluster = Cluster(
        server=server,
        honest_workers=honest_workers,
        num_byzantine=num_byzantine,
        attack=resolved_attack,
        attack_rng=seeds.generator("attack") if resolved_attack is not None else None,
        network=network,
    )

    history = TrainingHistory()
    if test_dataset is not None:
        _try_record_accuracy(history, model, cluster.parameters, test_dataset, step=0)

    for _ in range(num_steps):
        parameters_before = cluster.parameters
        cluster.step()
        losses = [
            model.loss(parameters_before, *worker.last_batch)
            for worker in honest_workers
            if worker.last_batch is not None
        ]
        history.record_loss(cluster.step_count, float(np.mean(losses)))
        if test_dataset is not None and cluster.step_count % eval_every == 0:
            _try_record_accuracy(
                history, model, cluster.parameters, test_dataset, step=cluster.step_count
            )

    privacy = _privacy_report(mechanism, epsilon, delta, num_steps)
    config = {
        "num_steps": num_steps,
        "n": n,
        "f": f,
        "num_byzantine": num_byzantine,
        "gar": resolved_gar.name,
        "attack": resolved_attack.name if resolved_attack is not None else None,
        "batch_size": batch_size,
        "g_max": g_max,
        "epsilon": epsilon,
        "delta": delta,
        "noise_kind": noise_kind if epsilon is not None else None,
        "momentum": momentum,
        "momentum_at": momentum_at,
        "clip_mode": clip_mode,
        "drop_probability": drop_probability,
        "data_distribution": data_distribution,
        "seed": seed,
        "model_dimension": model.dimension,
    }
    return TrainingResult(
        history=history,
        final_parameters=cluster.parameters,
        privacy=privacy,
        config=config,
    )


def _try_record_accuracy(
    history: TrainingHistory,
    model: Model,
    parameters: Vector,
    test_dataset: Dataset,
    step: int,
) -> None:
    try:
        accuracy = model.accuracy(parameters, test_dataset.features, test_dataset.labels)
    except NotImplementedError:
        return
    history.record_accuracy(step, accuracy)


def _privacy_report(
    mechanism: NoiseMechanism | None,
    epsilon: float | None,
    delta: float,
    num_steps: int,
) -> PrivacyReport | None:
    if mechanism is None or epsilon is None:
        return None
    per_step = PrivacySpend(epsilon=mechanism.epsilon, delta=mechanism.delta)
    basic = BasicCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    advanced = AdvancedCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    rdp: PrivacySpend | None = None
    if isinstance(mechanism, GaussianMechanism):
        accountant = RDPAccountant()
        accountant.step_gaussian(mechanism.noise_multiplier, num_steps)
        rdp = accountant.get_privacy_spent(delta)
        sigma = mechanism.sigma
    else:
        sigma = float(np.sqrt(mechanism.per_coordinate_variance))
    return PrivacyReport(
        per_step=per_step, noise_sigma=sigma, basic=basic, advanced=advanced, rdp=rdp
    )
