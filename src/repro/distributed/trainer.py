"""High-level training entry point.

:func:`train` runs the whole pipeline — data sharding, workers, DP
mechanism, attack, GAR, server — from plain keyword arguments, and
returns a :class:`TrainingResult` with the paper's metrics (per-step
training loss over honest batches, periodic test accuracy) plus an
end-to-end privacy report.

Since the pipeline redesign it is a thin wrapper over
:class:`repro.pipeline.builder.Experiment`; the keyword surface and
results are unchanged (bit for bit), and the staged builder is the
place to go for anything this flat API cannot express.

Defaults reproduce the paper's experimental setup (Section 5.1):
n = 11 workers, f = 5 Byzantine, MDA, batch size 50, G_max = 1e-2,
learning rate 2, momentum 0.99, 1000 steps, delta = 1e-6.
"""

from __future__ import annotations

from repro.attacks import ByzantineAttack
from repro.data.datasets import Dataset
from repro.gars import GAR
from repro.models.base import Model
from repro.optim.schedules import LearningRateSchedule
from repro.pipeline.registry import MOMENTUM_PLACEMENTS, NOISE_KINDS, build_mechanism
from repro.pipeline.results import PrivacyReport, TrainingResult

__all__ = ["train", "TrainingResult", "PrivacyReport", "build_mechanism"]


def train(
    *,
    model: Model,
    train_dataset: Dataset,
    test_dataset: Dataset | None = None,
    num_steps: int = 1000,
    n: int = 11,
    f: int = 5,
    num_byzantine: int | None = None,
    gar: str | GAR = "mda",
    gar_kwargs: dict | None = None,
    attack: str | ByzantineAttack | None = None,
    attack_kwargs: dict | None = None,
    batch_size: int = 50,
    g_max: float | None = 1e-2,
    epsilon: float | None = None,
    delta: float = 1e-6,
    noise_kind: str = "gaussian",
    learning_rate: float | LearningRateSchedule = 2.0,
    momentum: float = 0.99,
    momentum_at: str = "worker",
    nesterov: bool = False,
    clip_mode: str = "batch",
    drop_probability: float = 0.0,
    data_distribution: str = "shared",
    eval_every: int = 50,
    seed: int = 1,
    record_gradients: bool = False,
    codec: str | dict | None = None,
    codec_kwargs: dict | None = None,
    callbacks=(),
    telemetry=None,
) -> TrainingResult:
    """Run one distributed training experiment end to end.

    Parameters mirror the paper's Section 5.1; see the module docstring
    for the defaults.  Key semantics:

    * ``f`` is the GAR's declared tolerance; ``num_byzantine`` is how
      many workers actually attack (default: ``f`` when an attack is
      given, else 0).  The paper's averaging runs correspond to
      ``gar="average"``, ``attack=None``.
    * ``epsilon=None`` disables DP entirely; otherwise every honest
      worker runs the ``noise_kind`` mechanism with budget
      ``(epsilon, delta)`` per step.
    * ``momentum_at`` places the momentum buffer at each ``"worker"``
      (the default — the distributed-momentum scheme of El-Mhamdi et
      al. 2021 [16], whose attacks the paper reuses; worker momentum is
      what lets MDA resist them in the no-DP columns of Figs. 2-4) or
      at the ``"server"`` (classical heavy-ball on the aggregate,
      provided as an ablation).
    * ``data_distribution`` controls worker data: ``"shared"`` (the
      paper's model — every worker samples the full training set),
      ``"iid-shards"`` (disjoint random shards) or ``"label-shards"``
      (pathological non-IID label-sorted shards — an extension beyond
      the paper's i.i.d. assumption).
    * ``telemetry`` enables the observability plane: pass a
      :class:`repro.telemetry.Telemetry` instance or a path (the run
      then writes a schema-versioned JSONL trace there).  Telemetry
      never draws randomness — results are bit-identical either way.
    * ``codec`` inserts a wire-compression codec (``"identity"``,
      ``"top-k"``, ``"sign"``, ``"qsgd"``, ``"discrete-gaussian"``)
      between worker submission and server aggregation; the result's
      ``bytes_on_wire`` then reports the exact encoded traffic.
    * ``gar``, ``attack`` and the other component arguments also accept
      ``{"name": ..., **kwargs}`` registry specs, and ``callbacks``
      (:class:`repro.pipeline.Callback` instances) hook into the
      training loop — see :class:`repro.pipeline.Experiment`.

    Returns
    -------
    TrainingResult
        Metrics history, final parameters, privacy report (``None``
        when DP is off) and an echo of the configuration.
    """
    from repro.pipeline.builder import Experiment

    experiment = Experiment(
        model=model,
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        num_steps=num_steps,
        n=n,
        f=f,
        num_byzantine=num_byzantine,
        gar=gar,
        gar_kwargs=gar_kwargs,
        attack=attack,
        attack_kwargs=attack_kwargs,
        batch_size=batch_size,
        g_max=g_max,
        epsilon=epsilon,
        delta=delta,
        noise_kind=noise_kind,
        learning_rate=learning_rate,
        momentum=momentum,
        momentum_at=momentum_at,
        nesterov=nesterov,
        clip_mode=clip_mode,
        drop_probability=drop_probability,
        data_distribution=data_distribution,
        eval_every=eval_every,
        seed=seed,
        record_gradients=record_gradients,
        codec=codec,
        codec_kwargs=codec_kwargs,
        callbacks=callbacks,
        telemetry=telemetry,
    )
    return experiment.run()
