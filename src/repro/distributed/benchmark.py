"""End-to-end training benchmark: fused engine vs the kept slow path.

Where :mod:`repro.gars.benchmark` times one aggregation kernel,
this module times *whole training rounds* — sampling, gradients,
clipping, DP noise, momentum, the attack, the network and the server
update — through two executions of identically-seeded experiments:

* the **engine** path: :class:`repro.distributed.engine.RoundEngine`
  via ``Experiment.run`` (fused blocks, blockwise RNG pre-draw,
  preallocated buffers, in-place updates);
* the **reference** path:
  :func:`repro.distributed.reference.reference_training_rounds`, the
  pre-fusion round loop kept verbatim.

Both paths must produce bit-identical losses and final parameters
(``outputs_identical`` is recorded per cell and the table flags any
mismatch), so the benchmark can never race ahead of correctness.
Repeats are *interleaved* — engine, reference, engine, reference … —
and each path reports its best repeat, which keeps the ratio honest on
noisy shared machines.

Front ends: ``python -m repro bench --training`` (writes
``BENCH_training.json``) and ``benchmarks/bench_training.py``.
``check_speedup_regressions`` powers the CI guard that fails when a
smoke cell's measured speedup regresses against the committed
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.phishing import make_phishing_dataset
from repro.distributed.reference import reference_training_rounds
from repro.gars.benchmark import save_benchmarks
from repro.metrics.history import TrainingHistory
from repro.models.logistic import LogisticRegressionModel
from repro.telemetry.timing import Stopwatch

__all__ = [
    "TELEMETRY_OVERHEAD_LIMIT",
    "TrainingBenchCase",
    "TrainingBenchResult",
    "check_speedup_regressions",
    "default_training_grid",
    "format_training_table",
    "run_training_benchmarks",
    "save_benchmarks",
    "smoke_training_grid",
]

#: Document format version for ``BENCH_training.json``.
SCHEMA = "repro.bench_training/1"

#: Absolute ceiling on a telemetry cell's enabled-overhead fraction —
#: the CI guard fails any run whose telemetry-on engine loses more than
#: this to its telemetry-off twin, independent of the baseline.
TELEMETRY_OVERHEAD_LIMIT = 0.03


@dataclass(frozen=True)
class TrainingBenchCase:
    """One training-throughput cell: a full experiment configuration.

    ``backend="multiprocess"`` cells measure the multiprocess cluster
    runtime instead of the fused engine: the *reference* side is then
    the fused in-process engine (the number printed next to it in the
    table) and the *engine* side is the multiprocess backend, so the
    cell's "speedup" reads as the multiprocess/in-process throughput
    ratio and the per-round IPC overhead is reported alongside.
    """

    name: str
    gar: str
    n: int
    f: int
    num_features: int  #: model features; the parameter dimension is +1
    batch_size: int
    rounds: int
    epsilon: float | None = None
    noise_kind: str = "gaussian"
    momentum: float = 0.99
    attack: str | None = "little"
    num_points: int = 2000
    seed: int = 1
    backend: str = "inprocess"
    num_shards: int | None = None
    #: ``True`` measures the telemetry plane itself: engine = fused
    #: engine with a live in-memory telemetry sink, reference = the same
    #: fused engine with telemetry off.  The cell's overhead fraction is
    #: what the disabled-overhead CI guard pins below 3 %.
    telemetry: bool = False
    #: Wire codec name: the cell then measures the codec-enabled fused
    #: engine (engine side) against the raw-wire fused engine
    #: (reference side), recording throughput × bytes-on-wire × final
    #: accuracy together so the compression trade-off is one row.
    codec: str | None = None
    codec_kwargs: tuple[tuple[str, object], ...] = ()

    @property
    def dimension(self) -> int:
        """Model parameter dimension ``d``."""
        return self.num_features + 1

    def build_experiment(self):
        """One fresh, fully-seeded experiment for this cell."""
        from repro.pipeline.builder import Experiment

        dataset = make_phishing_dataset(
            seed=0, num_points=self.num_points, num_features=self.num_features
        )
        return Experiment(
            model=LogisticRegressionModel(self.num_features),
            train_dataset=dataset,
            test_dataset=None,
            num_steps=self.rounds,
            n=self.n,
            f=self.f,
            gar=self.gar,
            attack=self.attack,
            batch_size=self.batch_size,
            g_max=1e-2,
            epsilon=self.epsilon,
            noise_kind=self.noise_kind,
            momentum=self.momentum,
            seed=self.seed,
            backend=self.backend,
            num_shards=self.num_shards,
            codec=self.codec,
            codec_kwargs=dict(self.codec_kwargs) or None,
        )


@dataclass(frozen=True)
class TrainingBenchResult:
    """Timings for one cell, in training rounds per second.

    For ``backend="multiprocess"`` cells the reference side is the
    fused in-process engine and the engine side is the multiprocess
    runtime; ``per_round_overhead_ms`` then reads as the wall-clock IPC
    cost each round pays for crossing process boundaries.
    """

    case: TrainingBenchCase
    reference_rounds_per_sec: float
    engine_rounds_per_sec: float
    outputs_identical: bool
    #: Fractional slowdown of telemetry-on over telemetry-off, for
    #: ``telemetry=True`` cells only (``None`` elsewhere).  Estimated
    #: as the *minimum over interleaved repeat pairs* of the on/off
    #: time ratio — the paired twin of best-of-N timing: machine-wide
    #: noise inflates both halves of a pair together, so the cleanest
    #: pair lower-bounds the true overhead while a real regression
    #: shows up in every pair.  Negative values are timing noise.
    telemetry_overhead_fraction: float | None = None
    #: Codec cells only: total exact encoded bytes over the timed run,
    #: the raw-wire/encoded reduction factor (raw = ``rounds * n * d *
    #: 8`` bytes), and the held-out accuracies of the codec run and of
    #: the raw reference it is traded against.
    bytes_on_wire: int | None = None
    wire_reduction: float | None = None
    final_accuracy: float | None = None
    reference_accuracy: float | None = None

    @property
    def speedup(self) -> float:
        return self.engine_rounds_per_sec / self.reference_rounds_per_sec

    @property
    def per_round_overhead_ms(self) -> float:
        """Per-round wall-clock cost of the engine path over the reference."""
        return (
            1.0 / self.engine_rounds_per_sec - 1.0 / self.reference_rounds_per_sec
        ) * 1e3

    def to_dict(self) -> dict:
        case = self.case
        return {
            "name": case.name,
            "gar": case.gar,
            "n": case.n,
            "f": case.f,
            "d": case.dimension,
            "batch_size": case.batch_size,
            "rounds": case.rounds,
            "epsilon": case.epsilon,
            "noise_kind": case.noise_kind if case.epsilon is not None else None,
            "momentum": case.momentum,
            "attack": case.attack,
            "backend": case.backend,
            "reference_rounds_per_sec": self.reference_rounds_per_sec,
            "engine_rounds_per_sec": self.engine_rounds_per_sec,
            "speedup": self.speedup,
            "ipc_overhead_ms": (
                self.per_round_overhead_ms
                if case.backend == "multiprocess"
                else None
            ),
            "telemetry_overhead_fraction": self.telemetry_overhead_fraction,
            "codec": case.codec,
            "bytes_on_wire": self.bytes_on_wire,
            "bytes_per_round": (
                self.bytes_on_wire / case.rounds
                if self.bytes_on_wire is not None
                else None
            ),
            "wire_reduction": self.wire_reduction,
            "final_accuracy": self.final_accuracy,
            "accuracy_delta": (
                self.final_accuracy - self.reference_accuracy
                if self.final_accuracy is not None
                and self.reference_accuracy is not None
                else None
            ),
            "outputs_identical": self.outputs_identical,
        }


def default_training_grid() -> list[TrainingBenchCase]:
    """GAR × DP × momentum × (n, d) cells.

    ``krum-dp-momentum`` is the headline paper-scale cell of the fused
    engine's acceptance target: n = 25 workers at the paper's ~45 %
    Byzantine fraction (f = 11), d = 100 parameters, Krum, the Gaussian
    mechanism and worker momentum 0.99.
    """
    return [
        TrainingBenchCase("krum-dp-momentum", "krum", 25, 11, 99, 50, 400, epsilon=0.5),
        TrainingBenchCase("krum-dp-momentum-b150", "krum", 25, 11, 99, 150, 300, epsilon=0.5),
        TrainingBenchCase("krum-nodp-momentum", "krum", 25, 11, 99, 50, 400),
        TrainingBenchCase("krum-dp-nomomentum", "krum", 25, 11, 99, 50, 400, epsilon=0.5, momentum=0.0),
        TrainingBenchCase("krum-paper-shape", "krum", 11, 4, 68, 50, 400, epsilon=0.5),
        TrainingBenchCase("median-dp-momentum", "median", 25, 11, 99, 50, 400, epsilon=0.5),
        TrainingBenchCase("mda-dp-momentum", "mda", 11, 5, 68, 50, 300, epsilon=0.5),
        TrainingBenchCase("geomedian-dp-momentum", "geometric-median", 25, 11, 99, 50, 300, epsilon=0.5),
        TrainingBenchCase("average-dp-momentum", "average", 25, 0, 99, 50, 400, epsilon=0.5, attack=None),
        TrainingBenchCase("krum-dp-laplace", "krum", 25, 11, 99, 50, 400, epsilon=0.5, noise_kind="laplace"),
        TrainingBenchCase("krum-dp-momentum-d1000", "krum", 25, 11, 999, 50, 150, epsilon=0.5),
        TrainingBenchCase("krum-dp-momentum-telemetry", "krum", 25, 11, 99, 50, 400, epsilon=0.5, telemetry=True),
        TrainingBenchCase("mp-krum-dp-momentum", "krum", 25, 11, 99, 50, 200, epsilon=0.5, backend="multiprocess"),
        TrainingBenchCase("mp-krum-dp-momentum-d1000", "krum", 25, 11, 999, 50, 100, epsilon=0.5, backend="multiprocess"),
        TrainingBenchCase("krum-dp-codec-identity", "krum", 25, 11, 99, 50, 200, epsilon=0.5, codec="identity"),
        TrainingBenchCase("krum-dp-codec-topk", "krum", 25, 11, 99, 50, 200, epsilon=0.5, codec="top-k"),
        TrainingBenchCase("krum-dp-codec-sign", "krum", 25, 11, 99, 50, 200, epsilon=0.5, codec="sign"),
        TrainingBenchCase("krum-dp-codec-dgauss", "krum", 25, 11, 99, 50, 200, epsilon=0.5, codec="discrete-gaussian"),
        TrainingBenchCase("average-dp-codec-qsgd", "average", 25, 0, 99, 50, 200, epsilon=0.5, attack=None, codec="qsgd"),
    ]


#: Cells the CI smoke job runs, by name.
_SMOKE_CELLS = (
    "krum-dp-momentum",
    "krum-nodp-momentum",
    "average-dp-momentum",
    "krum-dp-momentum-telemetry",
    "krum-dp-codec-identity",
    "krum-dp-codec-sign",
)


def smoke_training_grid() -> list[TrainingBenchCase]:
    """A seconds-scale subset for CI.

    Every smoke cell is the *exact* :func:`default_training_grid`
    member (same rounds, same configuration), so the regression guard's
    name join against the committed full-grid ``BENCH_training.json``
    compares like with like.
    """
    by_name = {case.name: case for case in default_training_grid()}
    return [by_name[name] for name in _SMOKE_CELLS]


def run_case(case: TrainingBenchCase, repeats: int = 3) -> TrainingBenchResult:
    """Time one cell, interleaving engine and reference repeats.

    Both timers cover exactly the round loop — cluster construction,
    data sharding and result packaging happen outside on *both* paths —
    so the guarded ratio compares the quantity the engine changes, not
    fixed per-run setup.
    """
    if case.telemetry:
        return _run_telemetry_case(case, repeats)
    if case.codec is not None:
        return _run_codec_case(case, repeats)
    if case.backend == "multiprocess":
        return _run_multiprocess_case(case, repeats)
    engine_best = float("inf")
    reference_best = float("inf")
    outputs_identical = True
    watch = Stopwatch()
    for repeat in range(max(1, repeats)):
        fused = case.build_experiment()
        fused_cluster = fused.build_cluster()
        fused_history = TrainingHistory()
        engine = fused_cluster.engine
        watch.restart()
        engine.run(case.rounds, history=fused_history)
        engine_best = min(engine_best, watch.elapsed_seconds())

        reference = case.build_experiment()
        cluster = reference.build_cluster()
        history = TrainingHistory()
        watch.restart()
        reference_training_rounds(cluster, reference.model, history, case.rounds)
        reference_best = min(reference_best, watch.elapsed_seconds())

        if repeat == 0:
            outputs_identical = bool(
                history.losses.tolist() == fused_history.losses.tolist()
                and cluster.parameters.tolist()
                == fused_cluster.parameters.tolist()
            )
    return TrainingBenchResult(
        case=case,
        reference_rounds_per_sec=case.rounds / reference_best,
        engine_rounds_per_sec=case.rounds / engine_best,
        outputs_identical=outputs_identical,
    )


def _run_telemetry_case(case: TrainingBenchCase, repeats: int) -> TrainingBenchResult:
    """Time the fused engine with telemetry on vs off.

    Reference = telemetry off, engine = telemetry on (a
    :class:`~repro.telemetry.Telemetry` over an in-memory sink, so the
    measured overhead is span bookkeeping, not file I/O).  Interleaved
    repeats like the other cells; the first repeat also asserts the
    bit-identity contract — telemetry must never change a number.
    """
    from repro.telemetry import MemorySink, Telemetry

    on_best = float("inf")
    off_best = float("inf")
    pair_overheads = []
    outputs_identical = True
    watch = Stopwatch()
    for repeat in range(max(1, repeats)):
        on = case.build_experiment()
        on_cluster = on.build_cluster()
        on_cluster.telemetry = Telemetry(sinks=[MemorySink()])
        on_history = TrainingHistory()
        watch.restart()
        on_cluster.engine.run(case.rounds, history=on_history)
        on_seconds = watch.elapsed_seconds()
        on_best = min(on_best, on_seconds)

        off = case.build_experiment()
        off_cluster = off.build_cluster()
        off_history = TrainingHistory()
        watch.restart()
        off_cluster.engine.run(case.rounds, history=off_history)
        off_seconds = watch.elapsed_seconds()
        off_best = min(off_best, off_seconds)
        pair_overheads.append(on_seconds / off_seconds - 1.0)

        if repeat == 0:
            outputs_identical = bool(
                on_history.losses.tolist() == off_history.losses.tolist()
                and on_cluster.parameters.tolist()
                == off_cluster.parameters.tolist()
            )
    return TrainingBenchResult(
        case=case,
        reference_rounds_per_sec=case.rounds / off_best,
        engine_rounds_per_sec=case.rounds / on_best,
        outputs_identical=outputs_identical,
        telemetry_overhead_fraction=min(pair_overheads),
    )


def _run_codec_case(case: TrainingBenchCase, repeats: int) -> TrainingBenchResult:
    """Time a codec cell against its raw-wire fused-engine twin.

    Reference = the identical cell with no codec; engine = the
    codec-enabled fused engine.  The speedup column then reads as the
    throughput cost of encoding, and the cell additionally records the
    exact bytes-on-wire total, the reduction factor over the raw wire
    (``rounds * n * d * 8`` bytes) and both runs' held-out accuracies.

    ``outputs_identical`` is the cell's correctness bit, with
    codec-dependent meaning: for the lossless identity codec it asserts
    bit-identity *against the raw reference* (the acceptance criterion
    of the compression pipeline); for lossy codecs it asserts
    *determinism* — a second identically-seeded codec run must
    reproduce the first bit for bit.
    """
    from dataclasses import replace

    raw_case = replace(case, codec=None, codec_kwargs=())
    test_set = make_phishing_dataset(
        seed=1, num_points=500, num_features=case.num_features
    )
    engine_best = float("inf")
    reference_best = float("inf")
    outputs_identical = True
    bytes_on_wire = None
    final_accuracy = None
    reference_accuracy = None
    watch = Stopwatch()
    for repeat in range(max(1, repeats)):
        coded = case.build_experiment()
        coded_cluster = coded.build_cluster()
        coded_history = TrainingHistory()
        watch.restart()
        coded_cluster.engine.run(case.rounds, history=coded_history)
        engine_best = min(engine_best, watch.elapsed_seconds())

        raw = raw_case.build_experiment()
        raw_cluster = raw.build_cluster()
        raw_history = TrainingHistory()
        watch.restart()
        raw_cluster.engine.run(case.rounds, history=raw_history)
        reference_best = min(reference_best, watch.elapsed_seconds())

        if repeat == 0:
            bytes_on_wire = coded_cluster.bytes_on_wire_total
            model = coded.model
            final_accuracy = model.accuracy(
                coded_cluster.parameters, test_set.features, test_set.labels
            )
            reference_accuracy = model.accuracy(
                raw_cluster.parameters, test_set.features, test_set.labels
            )
            if coded_cluster.codec.lossless:
                outputs_identical = bool(
                    coded_history.losses.tolist() == raw_history.losses.tolist()
                    and coded_cluster.parameters.tolist()
                    == raw_cluster.parameters.tolist()
                )
            else:
                rerun = case.build_experiment()
                rerun_cluster = rerun.build_cluster()
                rerun_history = TrainingHistory()
                rerun_cluster.engine.run(case.rounds, history=rerun_history)
                outputs_identical = bool(
                    rerun_history.losses.tolist() == coded_history.losses.tolist()
                    and rerun_cluster.parameters.tolist()
                    == coded_cluster.parameters.tolist()
                    and rerun_cluster.bytes_on_wire_total == bytes_on_wire
                )
    raw_bytes = case.rounds * case.n * case.dimension * 8
    return TrainingBenchResult(
        case=case,
        reference_rounds_per_sec=case.rounds / reference_best,
        engine_rounds_per_sec=case.rounds / engine_best,
        outputs_identical=outputs_identical,
        bytes_on_wire=bytes_on_wire,
        wire_reduction=raw_bytes / bytes_on_wire if bytes_on_wire else None,
        final_accuracy=final_accuracy,
        reference_accuracy=reference_accuracy,
    )


def _run_multiprocess_case(case: TrainingBenchCase, repeats: int) -> TrainingBenchResult:
    """Time a multiprocess cell against its fused in-process twin.

    Reference = the fused engine of the identical ``backend="inprocess"``
    case; engine = the multiprocess runtime stepped through
    ``TrainingLoop``.  Process startup and plane creation stay outside
    the timer on the multiprocess side (like cluster construction on
    the in-process side), so the gap between the two numbers is the
    steady-state per-round IPC cost, not fork latency.
    """
    from dataclasses import replace

    from repro.pipeline.loop import TrainingLoop

    fused_case = replace(case, backend="inprocess", num_shards=None)
    engine_best = float("inf")
    reference_best = float("inf")
    outputs_identical = True
    watch = Stopwatch()
    for repeat in range(max(1, repeats)):
        fused = fused_case.build_experiment()
        fused_cluster = fused.build_cluster()
        fused_history = TrainingHistory()
        watch.restart()
        fused_cluster.engine.run(case.rounds, history=fused_history)
        reference_best = min(reference_best, watch.elapsed_seconds())

        multiprocess = case.build_experiment()
        runtime = multiprocess.build_multiprocess_cluster()
        history = TrainingHistory()
        loop = TrainingLoop(cluster=runtime, model=multiprocess.model, history=history)
        with runtime:
            watch.restart()
            loop.run(case.rounds)
            engine_best = min(engine_best, watch.elapsed_seconds())
            final_parameters = runtime.parameters.tolist()
        multiprocess.reset()

        if repeat == 0:
            outputs_identical = bool(
                history.losses.tolist() == fused_history.losses.tolist()
                and final_parameters == fused_cluster.parameters.tolist()
            )
    return TrainingBenchResult(
        case=case,
        reference_rounds_per_sec=case.rounds / reference_best,
        engine_rounds_per_sec=case.rounds / engine_best,
        outputs_identical=outputs_identical,
    )


def run_training_benchmarks(
    cases: Sequence[TrainingBenchCase] | None = None,
    repeats: int = 3,
    verbose: bool = False,
) -> dict:
    """Run the grid and return the ``BENCH_training.json`` document."""
    if cases is None:
        cases = default_training_grid()
    results = []
    for case in cases:
        result = run_case(case, repeats=repeats)
        results.append(result)
        if verbose:
            flag = "" if result.outputs_identical else "  !! OUTPUT MISMATCH"
            print(
                f"  {case.name:<26} "
                f"{result.reference_rounds_per_sec:>8.0f} -> "
                f"{result.engine_rounds_per_sec:>8.0f} rounds/s "
                f"({result.speedup:.2f}x){flag}"
            )
    return {
        "schema": SCHEMA,
        "unit": "training_rounds_per_second",
        "repeats": repeats,
        "results": [result.to_dict() for result in results],
    }


def format_training_table(payload: dict) -> str:
    """Human-readable summary of a training benchmark document."""
    rows = [
        f"{'cell':<26}{'gar':>10}{'n':>4}{'f':>4}{'d':>6}{'b':>5}"
        f"{'dp':>9}{'mom':>6}{'bk':>4}{'ref r/s':>10}{'engine r/s':>12}"
        f"{'speedup':>9}{'ipc ms':>8}{'wire x':>8}"
    ]
    for entry in payload["results"]:
        dp = "-" if entry["epsilon"] is None else f"{entry['noise_kind'][:5]}"
        backend = "mp" if entry.get("backend") == "multiprocess" else "in"
        overhead = entry.get("ipc_overhead_ms")
        ipc = "-" if overhead is None else f"{overhead:.2f}"
        reduction = entry.get("wire_reduction")
        wire = "-" if reduction is None else f"{reduction:.1f}"
        flag = "" if entry.get("outputs_identical", True) else "  MISMATCH"
        rows.append(
            f"{entry['name']:<26}{entry['gar']:>10}{entry['n']:>4}{entry['f']:>4}"
            f"{entry['d']:>6}{entry['batch_size']:>5}{dp:>9}{entry['momentum']:>6}"
            f"{backend:>4}"
            f"{entry['reference_rounds_per_sec']:>10.0f}"
            f"{entry['engine_rounds_per_sec']:>12.0f}"
            f"{entry['speedup']:>8.2f}x{ipc:>8}{wire:>8}{flag}"
        )
    return "\n".join(rows)


def _result_key(entry: dict) -> tuple:
    """Cell identity for baseline matching, schema-agnostic.

    Training results carry a unique ``name``; kernel results are keyed
    by their ``(gar, n, f, d, stack)`` shape.
    """
    if "name" in entry:
        return ("name", entry["name"])
    return tuple(
        (field, entry.get(field)) for field in ("gar", "n", "f", "d", "stack")
    )


def check_speedup_regressions(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Compare measured speedups against a committed baseline document.

    Returns one message per regression: a cell present in both
    documents whose current speedup fell more than ``tolerance``
    (fractionally) below the baseline's, or whose outputs no longer
    match.  Cells present in only one document are ignored — grids may
    grow — and *absolute* rounds/sec are never compared, because they
    are machine-dependent while the engine/reference ratio is not.
    Works on both ``BENCH_training.json`` and ``BENCH_kernels.json``
    payloads; correctness drift is flagged via ``outputs_identical``
    (training cells, exact) or ``max_abs_diff`` (kernel cells, against
    a 1e-9 sanity bound — the committed diffs sit at rounding scale,
    ~1e-16, and the tier-1 golden/property suites own exactness).

    Telemetry cells additionally enforce an *absolute* bound: a
    ``telemetry_overhead_fraction`` above
    ``TELEMETRY_OVERHEAD_LIMIT`` (3 %) fails regardless of the
    baseline, pinning the plane's enabled-overhead contract in CI.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline_by_key = {
        _result_key(entry): entry for entry in baseline.get("results", [])
    }
    failures = []
    joined = 0
    for entry in current.get("results", []):
        reference = baseline_by_key.get(_result_key(entry))
        if reference is not None:
            joined += 1
        if not entry.get("outputs_identical", True):
            failures.append(
                f"{_result_key(entry)}: engine and reference outputs diverged"
            )
            continue
        if entry.get("max_abs_diff", 0.0) > 1e-9:
            failures.append(
                f"{_result_key(entry)}: kernel output drifted from the "
                f"reference by {entry['max_abs_diff']:.3g}"
            )
            continue
        overhead = entry.get("telemetry_overhead_fraction")
        if overhead is not None:
            # Telemetry cells compare on/off, not engine/reference:
            # their "speedup" is a noise-dominated ~1.0 ratio, so the
            # paired overhead estimate is the only guarded quantity.
            if overhead > TELEMETRY_OVERHEAD_LIMIT:
                failures.append(
                    f"{_result_key(entry)}: telemetry overhead "
                    f"{overhead:.1%} exceeds the "
                    f"{TELEMETRY_OVERHEAD_LIMIT:.0%} limit"
                )
            continue
        if reference is None:
            continue
        floor = reference["speedup"] * (1.0 - tolerance)
        if entry["speedup"] < floor:
            failures.append(
                f"{_result_key(entry)}: speedup {entry['speedup']:.2f}x fell "
                f"below {floor:.2f}x (baseline {reference['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    if current.get("results") and joined == 0:
        # A guard that joins zero cells guards nothing: wrong baseline
        # file, or every cell key drifted.  Fail loudly instead of
        # reporting a vacuous pass.
        failures.append(
            "no benchmark cell matched the baseline document — wrong "
            "baseline file or renamed cells?"
        )
    return failures
