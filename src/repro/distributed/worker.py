"""Workers: honest gradient computation with clipping and DP noise.

An honest worker's per-step pipeline (Sections 2.3 and 5.1):

1. sample a batch of size ``b`` from its local data;
2. compute the mini-batch gradient;
3. clip to L2 norm ``G_max`` (batch-level, the paper's experimental
   choice, or per-example);
4. add the DP mechanism's noise ("each worker adds a privacy noise only
   after clipping the original gradient");
5. optionally accumulate worker-side momentum over the (noisy, clipped)
   gradients and send the momentum vector — the "distributed momentum"
   scheme of El-Mhamdi et al. 2021 [16], which is what the paper's
   experimental setup (momentum 0.99) uses.  Applying momentum *after*
   the noise keeps the DP guarantee intact (it is post-processing of
   the privatised outputs) while dividing the variance-to-norm ratio
   seen by the GAR by roughly ``sqrt((1+m)/(1-m))`` (~14 for m = 0.99);
6. send.

Byzantine workers are driven by the cluster: the colluding attack
crafts one vector per step and every Byzantine worker submits it.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import BatchSampler
from repro.distributed.messages import WorkerSubmission
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.privacy.clipping import clip_by_l2_norm, clip_per_example
from repro.privacy.mechanisms import NoiseMechanism
from repro.typing import Vector

__all__ = ["HonestWorker", "CLIP_MODES"]

CLIP_MODES = ("batch", "per_example")


class HonestWorker:
    """An honest (non-Byzantine) worker.

    Parameters
    ----------
    worker_id:
        Identifier used in messages and seed derivation.
    model:
        The shared model (stateless; parameters come from the server).
    sampler:
        This worker's private batch sampler.
    noise_rng:
        Private stream for the DP mechanism's noise.
    g_max:
        Clipping norm ``G_max``; ``None`` disables clipping (only valid
        without DP, since calibration needs the bound).
    mechanism:
        DP noise mechanism; ``None`` disables noise injection.
    clip_mode:
        ``"batch"`` (clip the averaged gradient — the paper's setup) or
        ``"per_example"`` (clip each sample's gradient before
        averaging).
    momentum:
        Worker-side momentum coefficient (0 disables).  Applied last in
        the pipeline, on the clipped+noised gradient, so the DP
        guarantee is untouched (post-processing); the submitted vector
        is the momentum buffer, whose norm may reach
        ``G_max / (1 - momentum)``.
    """

    def __init__(
        self,
        worker_id: int,
        model: Model,
        sampler: BatchSampler,
        noise_rng: np.random.Generator,
        g_max: float | None = None,
        mechanism: NoiseMechanism | None = None,
        clip_mode: str = "batch",
        momentum: float = 0.0,
    ):
        if clip_mode not in CLIP_MODES:
            raise ConfigurationError(
                f"clip_mode must be one of {CLIP_MODES}, got {clip_mode!r}"
            )
        if g_max is not None and g_max <= 0:
            raise ConfigurationError(f"g_max must be positive, got {g_max}")
        if mechanism is not None and g_max is None:
            raise ConfigurationError(
                "a DP mechanism requires g_max: noise calibration needs the "
                "bounded-gradient assumption (Assumption 1)"
            )
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self._worker_id = int(worker_id)
        self._model = model
        self._sampler = sampler
        self._noise_rng = noise_rng
        self._g_max = g_max
        self._mechanism = mechanism
        self._clip_mode = clip_mode
        self._momentum = float(momentum)
        # Two velocity buffers: one over submitted (noisy) gradients —
        # what actually goes on the wire — and one over clean gradients,
        # so the omniscient attack's "clean" view stays meaningful.
        self._velocity_submitted: Vector | None = None
        self._velocity_clean: Vector | None = None
        self._last_batch: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def worker_id(self) -> int:
        """This worker's identifier."""
        return self._worker_id

    @property
    def last_batch(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The most recently sampled ``(features, labels)`` batch.

        The trainer uses it to compute the paper's "average loss over
        the training datapoints sampled by the honest workers".
        """
        return self._last_batch

    @property
    def uses_dp(self) -> bool:
        """Whether this worker injects DP noise."""
        return self._mechanism is not None

    def compute(self, parameters: Vector, step: int) -> WorkerSubmission:
        """Run the full per-step pipeline and return the submission."""
        del step  # the pipeline is step-independent; kept for symmetry
        features, labels = self._sampler.sample()
        self._last_batch = (features, labels)

        if self._clip_mode == "per_example" and self._g_max is not None:
            per_example = self._model.per_example_gradients(parameters, features, labels)
            gradient = clip_per_example(per_example, self._g_max).mean(axis=0)
        else:
            gradient = self._model.gradient(parameters, features, labels)
            if self._g_max is not None:
                gradient = clip_by_l2_norm(gradient, self._g_max)

        clean = np.array(gradient, dtype=np.float64, copy=True)
        if self._mechanism is not None:
            noisy = self._mechanism.privatize(clean, self._noise_rng)
        else:
            noisy = clean.copy()

        if self._momentum > 0.0:
            if self._velocity_submitted is None:
                self._velocity_submitted = np.zeros_like(noisy)
                self._velocity_clean = np.zeros_like(clean)
            self._velocity_submitted = self._momentum * self._velocity_submitted + noisy
            self._velocity_clean = self._momentum * self._velocity_clean + clean
            return WorkerSubmission(
                submitted=self._velocity_submitted.copy(),
                clean=self._velocity_clean.copy(),
            )
        return WorkerSubmission(submitted=noisy, clean=clean)

    def reset(self) -> None:
        """Clear momentum state and the cached batch."""
        self._velocity_submitted = None
        self._velocity_clean = None
        self._last_batch = None
