"""Workers: honest gradient computation with clipping and DP noise.

An honest worker's per-step pipeline (Sections 2.3 and 5.1):

1. sample a batch of size ``b`` from its local data;
2. compute the mini-batch gradient;
3. clip to L2 norm ``G_max`` (batch-level, the paper's experimental
   choice, or per-example);
4. add the DP mechanism's noise ("each worker adds a privacy noise only
   after clipping the original gradient");
5. optionally accumulate worker-side momentum over the (noisy, clipped)
   gradients and send the momentum vector — the "distributed momentum"
   scheme of El-Mhamdi et al. 2021 [16], which is what the paper's
   experimental setup (momentum 0.99) uses.  Applying momentum *after*
   the noise keeps the DP guarantee intact (it is post-processing of
   the privatised outputs) while dividing the variance-to-norm ratio
   seen by the GAR by roughly ``sqrt((1+m)/(1-m))`` (~14 for m = 0.99);
6. send.

Byzantine workers are driven by the cluster: the colluding attack
crafts one vector per step and every Byzantine worker submits it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.batching import BatchSampler
from repro.distributed.messages import WorkerSubmission
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.privacy.clipping import clip_by_l2_norm, clip_per_example
from repro.privacy.mechanisms import NoiseMechanism
from repro.typing import Matrix, Vector

__all__ = ["HonestWorker", "CLIP_MODES", "compute_cohort"]

CLIP_MODES = ("batch", "per_example")


class HonestWorker:
    """An honest (non-Byzantine) worker.

    Parameters
    ----------
    worker_id:
        Identifier used in messages and seed derivation.
    model:
        The shared model (stateless; parameters come from the server).
    sampler:
        This worker's private batch sampler.
    noise_rng:
        Private stream for the DP mechanism's noise.
    g_max:
        Clipping norm ``G_max``; ``None`` disables clipping (only valid
        without DP, since calibration needs the bound).
    mechanism:
        DP noise mechanism; ``None`` disables noise injection.
    clip_mode:
        ``"batch"`` (clip the averaged gradient — the paper's setup) or
        ``"per_example"`` (clip each sample's gradient before
        averaging).
    momentum:
        Worker-side momentum coefficient (0 disables).  Applied last in
        the pipeline, on the clipped+noised gradient, so the DP
        guarantee is untouched (post-processing); the submitted vector
        is the momentum buffer, whose norm may reach
        ``G_max / (1 - momentum)``.
    """

    def __init__(
        self,
        worker_id: int,
        model: Model,
        sampler: BatchSampler,
        noise_rng: np.random.Generator,
        g_max: float | None = None,
        mechanism: NoiseMechanism | None = None,
        clip_mode: str = "batch",
        momentum: float = 0.0,
    ):
        if clip_mode not in CLIP_MODES:
            raise ConfigurationError(
                f"clip_mode must be one of {CLIP_MODES}, got {clip_mode!r}"
            )
        if g_max is not None and g_max <= 0:
            raise ConfigurationError(f"g_max must be positive, got {g_max}")
        if mechanism is not None and g_max is None:
            raise ConfigurationError(
                "a DP mechanism requires g_max: noise calibration needs the "
                "bounded-gradient assumption (Assumption 1)"
            )
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self._worker_id = int(worker_id)
        self._model = model
        self._sampler = sampler
        self._noise_rng = noise_rng
        self._g_max = g_max
        self._mechanism = mechanism
        self._clip_mode = clip_mode
        self._momentum = float(momentum)
        # Two velocity buffers: one over submitted (noisy) gradients —
        # what actually goes on the wire — and one over clean gradients,
        # so the omniscient attack's "clean" view stays meaningful.
        self._velocity_submitted: Vector | None = None
        self._velocity_clean: Vector | None = None
        self._last_batch: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def worker_id(self) -> int:
        """This worker's identifier."""
        return self._worker_id

    @property
    def last_batch(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The most recently sampled ``(features, labels)`` batch.

        The trainer uses it to compute the paper's "average loss over
        the training datapoints sampled by the honest workers".
        """
        return self._last_batch

    @property
    def uses_dp(self) -> bool:
        """Whether this worker injects DP noise."""
        return self._mechanism is not None

    def compute(self, parameters: Vector, step: int) -> WorkerSubmission:
        """Run the full per-step pipeline and return the submission."""
        del step  # the pipeline is step-independent; kept for symmetry
        features, labels = self._sampler.sample()
        self._last_batch = (features, labels)
        return self._finish(parameters, features, labels)

    def _finish(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> WorkerSubmission:
        """Gradient + clip + noise + momentum for an already-sampled batch.

        Split out of :meth:`compute` so the cohort path
        (:func:`compute_cohort`) can fall back here without consuming
        the batch sampler's RNG stream twice.
        """
        if self._clip_mode == "per_example" and self._g_max is not None:
            per_example = self._model.per_example_gradients(parameters, features, labels)
            gradient = clip_per_example(per_example, self._g_max).mean(axis=0)
        else:
            gradient = self._model.gradient(parameters, features, labels)
            if self._g_max is not None:
                gradient = clip_by_l2_norm(gradient, self._g_max)

        # The model hands back a fresh array (clipping at most rescales
        # it), so owning it needs no copy — only a dtype guarantee.
        clean = np.asarray(gradient, dtype=np.float64)
        if self._mechanism is not None:
            noisy = self._mechanism.privatize(clean, self._noise_rng)
        else:
            # No noise: the wire vector *is* the clean gradient.  Both
            # submission fields share the one array; consumers stack or
            # copy before mutating.
            noisy = clean

        if self._momentum > 0.0:
            if self._velocity_submitted is None:
                self._velocity_submitted = np.zeros_like(noisy)
                self._velocity_clean = np.zeros_like(clean)
            # In-place accumulation: v <- m*v, v <- v + g — the same
            # elementwise operations as the allocating form, without the
            # two fresh buffers and two copies per round.  The returned
            # submission borrows the live buffers; they are stable until
            # this worker's next compute.
            self._velocity_submitted *= self._momentum
            self._velocity_submitted += noisy
            self._velocity_clean *= self._momentum
            self._velocity_clean += clean
            return WorkerSubmission(
                submitted=self._velocity_submitted,
                clean=self._velocity_clean,
            )
        return WorkerSubmission(submitted=noisy, clean=clean)

    def reset(self) -> None:
        """Clear momentum state and the cached batch."""
        self._velocity_submitted = None
        self._velocity_clean = None
        self._last_batch = None


def compute_cohort(
    workers: Sequence[HonestWorker], parameters: Vector, step: int
) -> tuple[Matrix, Matrix]:
    """Run one round of the whole honest cohort as stacked matrix ops.

    Returns ``(submitted, clean)`` as ``(W, d)`` matrices — the same
    rows that ``[w.compute(parameters, step) for w in workers]`` would
    produce, computed with the per-step pipeline vectorized across
    workers: one stacked gradient contraction
    (:meth:`Model.gradient_stack`), one batched clip, one batched
    momentum update.  Batch sampling and DP noise remain sequential per
    worker so every private RNG stream is consumed in the same order as
    the per-worker path.

    Numerically the fast path is equivalent to the per-worker path but
    not bit-identical: the stacked contractions reduce in a different
    order than per-worker BLAS calls, so results agree only to rounding
    (~1 ulp per step).  Which path runs is a pure function of the
    cohort's configuration (same models, clip modes, and batch shapes
    → fast path), so any fixed experiment configuration is internally
    deterministic — which is what the golden-trace harness pins down.

    Falls back to the per-worker pipeline when the cohort is
    heterogeneous (different models, clip modes, or batch shapes) or
    when any worker subclass overrides :meth:`HonestWorker.compute` /
    ``_finish`` (custom per-worker behaviour always wins over the fast
    path) — correctness never depends on the fast path.  This function
    lives in the worker module on purpose: it is the stacked twin of
    the per-worker pipeline and shares its internals.
    """
    workers = list(workers)
    if not workers:
        raise ConfigurationError("compute_cohort needs at least one worker")
    if any(
        type(worker).compute is not HonestWorker.compute
        or type(worker)._finish is not HonestWorker._finish
        for worker in workers
    ):
        submissions = [worker.compute(parameters, step) for worker in workers]
        return (
            np.stack([s.submitted for s in submissions]),
            np.stack([s.clean for s in submissions]),
        )
    del step  # the stock pipeline is step-independent
    # Sampling stays sequential per worker (private RNG streams), and the
    # sampled batches are cached for the loop's loss instrumentation.
    batches = []
    for worker in workers:
        features, labels = worker._sampler.sample()
        worker._last_batch = (features, labels)
        batches.append((np.asarray(features), np.asarray(labels)))

    model = workers[0]._model
    clip_mode = workers[0]._clip_mode
    uniform = (
        all(w._model is model for w in workers)
        and all(w._clip_mode == clip_mode for w in workers)
        and len({(f.shape, l.shape) for f, l in batches}) == 1
        and (
            clip_mode == "batch"
            or all(w._g_max is not None for w in workers)
        )
    )
    if not uniform:
        submissions = [
            worker._finish(parameters, *batch)
            for worker, batch in zip(workers, batches)
        ]
        return (
            np.stack([s.submitted for s in submissions]),
            np.stack([s.clean for s in submissions]),
        )

    features_stack = np.stack([features for features, _ in batches])
    labels_stack = np.stack([labels for _, labels in batches])
    if clip_mode == "per_example":
        # Per-example gradients still come from the model's per-worker
        # API, but the clip itself is one batched rescale.
        per_example = np.stack(
            [
                model.per_example_gradients(parameters, features, labels)
                for features, labels in batches
            ]
        )  # (W, b, d)
        norms = np.sqrt(np.einsum("wbd,wbd->wb", per_example, per_example))
        safe_norms = np.where(norms > 0.0, norms, 1.0)
        g_max = np.array([w._g_max for w in workers])
        scales = np.minimum(1.0, g_max[:, None] / safe_norms)
        clean = (per_example * scales[:, :, None]).mean(axis=1)
    else:
        clean = np.array(
            model.gradient_stack(parameters, features_stack, labels_stack),
            dtype=np.float64,
        )
        g_max = np.array(
            [np.inf if w._g_max is None else w._g_max for w in workers]
        )
        norms = np.sqrt(np.einsum("wd,wd->w", clean, clean))
        exceeds = norms > g_max  # all-zero rows have norm 0 <= g_max
        if exceeds.any():
            clean[exceeds] *= (g_max[exceeds] / norms[exceeds])[:, None]

    # DP noise per worker: each stream is private, so the draws stay
    # sequential, but each is already vectorized over the dimension.
    # When every worker injects noise the loop overwrites every row, so
    # seeding the matrix with a copy of ``clean`` would be pure waste.
    all_noised = all(w._mechanism is not None for w in workers)
    submitted = np.empty_like(clean) if all_noised else clean.copy()
    for index, worker in enumerate(workers):
        if worker._mechanism is not None:
            submitted[index] = worker._mechanism.privatize(
                clean[index], worker._noise_rng
            )

    momenta = np.array([w._momentum for w in workers])
    with_momentum = momenta > 0.0
    if with_momentum.any():
        dimension = clean.shape[1]
        # Masked in-place accumulation directly on each worker's buffer
        # (v <- m*v, v <- v + g: the same elementwise operations as the
        # stacked form) and row writes into the round matrices — no
        # stacked velocity copies, no full-matrix ``np.where``.
        for index, worker in enumerate(workers):
            if not with_momentum[index]:
                continue
            if worker._velocity_submitted is None:
                worker._velocity_submitted = np.zeros(dimension)
                worker._velocity_clean = np.zeros(dimension)
            worker._velocity_submitted *= worker._momentum
            worker._velocity_submitted += submitted[index]
            worker._velocity_clean *= worker._momentum
            worker._velocity_clean += clean[index]
            submitted[index] = worker._velocity_submitted
            clean[index] = worker._velocity_clean
    return submitted, clean
