"""The pre-fusion synchronous round loop, kept verbatim.

This module preserves the round execution path exactly as it ran
before the fused :class:`repro.distributed.engine.RoundEngine` landed:
per-round batch sampling and noise draws, a fresh ``(W, d)`` cohort
allocation every round, stacked-then-copied momentum buffers, a
defensive ``parameters`` copy per read, and an allocating optimizer
update.  It exists for one purpose — the end-to-end training benchmark
(``python -m repro bench --training``) times the engine against *this*
code, the same way the aggregation benchmark times the vectorized
kernels against :mod:`repro.gars.reference` — so its body should never
be "improved".  Numerically it is bit-identical to the fused engine
(the benchmark asserts the final parameters agree exactly).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import AttackContext
from repro.exceptions import ConfigurationError
from repro.gars.krum import KrumGAR, krum_scores
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.models.linear import LinearRegressionModel
from repro.models.logistic import LogisticRegressionModel
from repro.privacy.clipping import clip_by_l2_norm, clip_per_example
from repro.typing import Matrix, Vector

__all__ = ["reference_compute_cohort", "reference_training_rounds"]


def _reference_sigmoid(z: np.ndarray) -> np.ndarray:
    """Verbatim pre-fusion sigmoid (boolean-masked two-branch form)."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def _reference_gradient_stack(model, parameters, features_stack, labels_stack):
    """Pre-fusion stacked gradient: per-round augmentation, branchy
    sigmoid, no shared forward pass."""
    if isinstance(model, LogisticRegressionModel):
        parameters = model._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        augmented = model._augment_stack(features_stack)
        probabilities = _reference_sigmoid(augmented @ parameters)
        factor = model._residual_factor(probabilities, labels_stack)
        return np.einsum("wbd,wb->wd", augmented, factor) / labels_stack.shape[1]
    if isinstance(model, LinearRegressionModel):
        parameters = model._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        augmented = model._augment_stack(features_stack)
        residuals = augmented @ parameters - labels_stack
        return np.einsum("wbd,wb->wd", augmented, residuals) / labels_stack.shape[1]
    return model.gradient_stack(parameters, features_stack, labels_stack)


def _reference_loss_stack(model, parameters, features_stack, labels_stack):
    """Pre-fusion stacked loss: its own full forward pass."""
    if isinstance(model, LogisticRegressionModel):
        parameters = model._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        probabilities = _reference_sigmoid(
            model._augment_stack(features_stack) @ parameters
        )
        if model._loss_kind == "mse":
            return np.mean((probabilities - labels_stack) ** 2, axis=1)
        eps = 1e-12
        clipped = np.clip(probabilities, eps, 1.0 - eps)
        return -np.mean(
            labels_stack * np.log(clipped)
            + (1.0 - labels_stack) * np.log(1.0 - clipped),
            axis=1,
        )
    return model.loss_stack(parameters, features_stack, labels_stack)


def _reference_rank_by_score_then_value(scores, gradients):
    """Verbatim pre-fusion tie-ranking: every exact-tie run lexsorted,
    no identical-row shortcut, no winner-only selection."""
    scores = np.asarray(scores)
    order = np.argsort(scores, kind="stable")
    ranked = scores[order]
    ties = np.flatnonzero(ranked[1:] == ranked[:-1])
    if ties.size:
        run_starts = ties[np.r_[True, np.diff(ties) > 1]]
        for start in run_starts:
            stop = start + 1
            while stop < len(ranked) and ranked[stop] == ranked[start]:
                stop += 1
            block = order[start:stop]
            rows = gradients[block]
            order[start:stop] = block[np.lexsort(rows.T[::-1])]
    return order


def _reference_aggregate(gar, matrix: Matrix) -> Vector:
    """Pre-fusion aggregation: the wrapper's validations plus, for the
    Krum family, the full tie-ranking path."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if not np.all(np.isfinite(matrix)):
        raise ConfigurationError(f"{gar.name} received non-finite gradients")
    if isinstance(gar, KrumGAR):
        scores = krum_scores(matrix, gar.f)
        order = _reference_rank_by_score_then_value(scores, matrix)
        if gar.m == 1:
            return matrix[int(order[0])].copy()
        return matrix[order[: gar.m]].mean(axis=0)
    return gar._aggregate(matrix)


def _reference_finish(worker, parameters: Vector, features, labels):
    """Verbatim pre-fusion ``HonestWorker._finish``: gradient + clip +
    noise + momentum with the historical per-round copies."""
    if worker._clip_mode == "per_example" and worker._g_max is not None:
        per_example = worker._model.per_example_gradients(parameters, features, labels)
        gradient = clip_per_example(per_example, worker._g_max).mean(axis=0)
    else:
        gradient = worker._model.gradient(parameters, features, labels)
        if worker._g_max is not None:
            gradient = clip_by_l2_norm(gradient, worker._g_max)

    clean = np.array(gradient, dtype=np.float64, copy=True)
    if worker._mechanism is not None:
        noisy = worker._mechanism.privatize(clean, worker._noise_rng)
    else:
        noisy = clean.copy()

    if worker._momentum > 0.0:
        if worker._velocity_submitted is None:
            worker._velocity_submitted = np.zeros_like(noisy)
            worker._velocity_clean = np.zeros_like(clean)
        worker._velocity_submitted = worker._momentum * worker._velocity_submitted + noisy
        worker._velocity_clean = worker._momentum * worker._velocity_clean + clean
        return worker._velocity_submitted.copy(), worker._velocity_clean.copy()
    return noisy, clean


def reference_compute_cohort(
    workers: Sequence, parameters: Vector, step: int
) -> tuple[Matrix, Matrix]:
    """Verbatim pre-fusion ``compute_cohort``: stacked gradients with
    per-round allocations, full-matrix ``np.where`` momentum epilogue
    and per-worker velocity copies."""
    workers = list(workers)
    if not workers:
        raise ConfigurationError("reference_compute_cohort needs at least one worker")
    del step
    batches = []
    for worker in workers:
        features, labels = worker._sampler.sample()
        worker._last_batch = (features, labels)
        batches.append((np.asarray(features), np.asarray(labels)))

    model = workers[0]._model
    clip_mode = workers[0]._clip_mode
    uniform = (
        all(w._model is model for w in workers)
        and all(w._clip_mode == clip_mode for w in workers)
        and len({(f.shape, l.shape) for f, l in batches}) == 1
        and (
            clip_mode == "batch"
            or all(w._g_max is not None for w in workers)
        )
    )
    if not uniform:
        submissions = [
            _reference_finish(worker, parameters, *batch)
            for worker, batch in zip(workers, batches)
        ]
        return (
            np.stack([submitted for submitted, _ in submissions]),
            np.stack([clean for _, clean in submissions]),
        )

    features_stack = np.stack([features for features, _ in batches])
    labels_stack = np.stack([labels for _, labels in batches])
    if clip_mode == "per_example":
        per_example = np.stack(
            [
                model.per_example_gradients(parameters, features, labels)
                for features, labels in batches
            ]
        )
        norms = np.sqrt(np.einsum("wbd,wbd->wb", per_example, per_example))
        safe_norms = np.where(norms > 0.0, norms, 1.0)
        g_max = np.array([w._g_max for w in workers])
        scales = np.minimum(1.0, g_max[:, None] / safe_norms)
        clean = (per_example * scales[:, :, None]).mean(axis=1)
    else:
        clean = np.array(
            _reference_gradient_stack(model, parameters, features_stack, labels_stack),
            dtype=np.float64,
        )
        g_max = np.array(
            [np.inf if w._g_max is None else w._g_max for w in workers]
        )
        norms = np.sqrt(np.einsum("wd,wd->w", clean, clean))
        exceeds = norms > g_max
        if exceeds.any():
            clean[exceeds] *= (g_max[exceeds] / norms[exceeds])[:, None]

    submitted = clean.copy()
    for index, worker in enumerate(workers):
        if worker._mechanism is not None:
            submitted[index] = worker._mechanism.privatize(
                clean[index], worker._noise_rng
            )

    momenta = np.array([w._momentum for w in workers])
    with_momentum = momenta > 0.0
    if with_momentum.any():
        dimension = clean.shape[1]
        velocity_submitted = np.stack(
            [
                w._velocity_submitted
                if w._velocity_submitted is not None
                else np.zeros(dimension)
                for w in workers
            ]
        )
        velocity_clean = np.stack(
            [
                w._velocity_clean
                if w._velocity_clean is not None
                else np.zeros(dimension)
                for w in workers
            ]
        )
        velocity_submitted = momenta[:, None] * velocity_submitted + submitted
        velocity_clean = momenta[:, None] * velocity_clean + clean
        for index, worker in enumerate(workers):
            if with_momentum[index]:
                worker._velocity_submitted = velocity_submitted[index].copy()
                worker._velocity_clean = velocity_clean[index].copy()
        submitted = np.where(with_momentum[:, None], velocity_submitted, submitted)
        clean = np.where(with_momentum[:, None], velocity_clean, clean)
    return submitted, clean


def _reference_optimizer_step(optimizer, parameters: Vector, gradient: Vector) -> Vector:
    """Verbatim pre-fusion allocating heavy-ball update."""
    from repro.exceptions import TrainingError

    parameters = np.asarray(parameters, dtype=np.float64)
    gradient = np.asarray(gradient, dtype=np.float64)
    optimizer._step_count += 1
    rate = optimizer._schedule.rate(optimizer._step_count)
    if optimizer._velocity is None:
        optimizer._velocity = np.zeros_like(parameters)
    optimizer._velocity = optimizer._momentum * optimizer._velocity + gradient
    if optimizer._nesterov:
        direction = optimizer._momentum * optimizer._velocity + gradient
    else:
        direction = optimizer._velocity
    updated = parameters - rate * direction
    if not np.all(np.isfinite(updated)):
        raise TrainingError(
            f"parameters became non-finite at step {optimizer._step_count}; "
            "the training has diverged"
        )
    return updated


def reference_training_rounds(
    cluster,
    model: Model,
    history: TrainingHistory,
    num_rounds: int,
) -> None:
    """Run ``num_rounds`` synchronous rounds the pre-fusion way.

    Replicates the historical ``TrainingLoop.run`` round body exactly:
    a ``parameters`` copy per round, :func:`reference_compute_cohort`,
    fresh per-round instrumentation matrices, an allocating server
    update, and the honest-batch loss recorded through the same stacked
    pipeline.  Drives the *same* cluster components as the engine, so a
    benchmark can time both on identically seeded experiments and
    assert the outputs agree bit for bit.
    """
    if num_rounds < 1:
        raise ConfigurationError(f"num_rounds must be >= 1, got {num_rounds}")
    from repro.distributed.cluster import StepResult
    from repro.pipeline.callbacks import CallbackList

    server = cluster._server
    workers = cluster._honest_workers
    network = cluster._network
    # The historical loop scaffolding: an (empty) callback list whose
    # hooks fire every round, and a StepResult carrying the matrices.
    callbacks = CallbackList()
    state = None
    for _ in range(num_rounds):
        callbacks.should_stop(state)
        callbacks.on_step_start(state)
        cluster._step += 1
        step = cluster._step
        parameters = server.parameters
        submitted, clean = reference_compute_cohort(workers, parameters, step)
        byzantine = None
        if cluster._num_byzantine > 0:
            context = AttackContext(
                step=step,
                honest_submitted=submitted,
                honest_clean=clean,
                parameters=parameters,
                num_byzantine=cluster._num_byzantine,
                rng=cluster._attack_rng,
            )
            byzantine = np.asarray(cluster._attack.craft(context), dtype=np.float64)
            byzantine_block = np.tile(byzantine, (cluster._num_byzantine, 1))
            all_gradients = np.vstack([submitted, byzantine_block])
        else:
            all_gradients = submitted
        delivered = network.deliver(all_gradients, step)
        matrix = np.asarray(delivered, dtype=np.float64)
        if server._record_received:
            server._received_log.append(matrix.copy())
        aggregated = _reference_aggregate(server._gar, matrix)
        server._parameters = _reference_optimizer_step(
            server._optimizer, server._parameters, aggregated
        )
        server._step += 1
        result = StepResult(
            step=step,
            aggregated=aggregated,
            honest_submitted=submitted,
            honest_clean=clean,
            byzantine_gradient=byzantine,
        )
        # record_honest_loss, verbatim: gather the cached batches, check
        # their shapes are uniform, then one stacked loss pass.
        batches = [w.last_batch for w in workers if w.last_batch is not None]
        shapes = {
            (np.asarray(features).shape, np.asarray(labels).shape)
            for features, labels in batches
        }
        assert len(shapes) == 1
        losses = _reference_loss_stack(
            model,
            parameters,
            np.stack([features for features, _ in batches]),
            np.stack([labels for _, labels in batches]),
        )
        history.record_loss(step, float(np.mean(losses)))
        callbacks.on_step_end(state, result)
