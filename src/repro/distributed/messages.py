"""Message types exchanged between workers and the parameter server."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.typing import Vector

__all__ = ["GradientMessage", "WorkerSubmission"]


@dataclass(frozen=True)
class GradientMessage:
    """A gradient in flight from a worker to the server.

    ``byzantine`` is simulation-side instrumentation — the server never
    reads it (an honest-but-curious server has no way to know).
    """

    worker_id: int
    step: int
    gradient: Vector = field(repr=False)
    byzantine: bool = False

    def __post_init__(self) -> None:
        gradient = np.asarray(self.gradient, dtype=np.float64)
        if gradient.ndim != 1:
            raise ValueError(f"gradient must be 1-D, got shape {gradient.shape}")
        object.__setattr__(self, "gradient", gradient)


@dataclass(frozen=True)
class WorkerSubmission:
    """An honest worker's output for one step.

    Attributes
    ----------
    submitted:
        What goes on the wire (post-clipping, post-DP-noise).
    clean:
        The clipped gradient before DP noise — used for the omniscient
        attack view and for VN-ratio instrumentation; never visible to
        the server.

    Both fields may *borrow* worker-owned buffers (they alias each
    other when no DP noise is injected, and alias the live momentum
    buffers when worker momentum is on): read or copy them before the
    owning worker's next ``compute``.
    """

    submitted: Vector
    clean: Vector
