"""The honest-but-curious parameter server.

The server performs the protocol of Section 2.1 faithfully: gather
``n`` gradients, aggregate with the configured GAR, update the model
parameters with the optimizer, broadcast (implicitly — workers read
``parameters``).  *Curiosity* is modelled by an optional tap that
retains every received gradient, which the leakage analysis
(:mod:`repro.analysis.leakage`) then exploits — exactly the threat the
paper's DP noise is there to blunt.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gars.base import GAR
from repro.optim.sgd import SGDOptimizer
from repro.typing import Matrix, Vector

__all__ = ["ParameterServer"]


class ParameterServer:
    """Aggregates worker gradients and owns the model parameters."""

    def __init__(
        self,
        initial_parameters: Vector,
        gar: GAR,
        optimizer: SGDOptimizer,
        record_received: bool = False,
    ):
        initial_parameters = np.asarray(initial_parameters, dtype=np.float64)
        if initial_parameters.ndim != 1:
            raise ConfigurationError(
                f"initial_parameters must be 1-D, got shape {initial_parameters.shape}"
            )
        self._parameters = initial_parameters.copy()
        self._gar = gar
        self._optimizer = optimizer
        self._record_received = bool(record_received)
        self._received_log: list[Matrix] = []
        self._step = 0

    @property
    def parameters(self) -> Vector:
        """Current model parameters (a copy; workers cannot mutate them)."""
        return self._parameters.copy()

    @property
    def parameters_view(self) -> Vector:
        """The live parameter buffer, *without* the defensive copy.

        For the fused round engine's hot loop only: the array is
        mutated in place by every in-place server step, so callers must
        treat it as read-only and must not retain it across rounds.
        Everyone else should read :attr:`parameters`.
        """
        return self._parameters

    @property
    def gar(self) -> GAR:
        """The configured aggregation rule."""
        return self._gar

    @property
    def optimizer(self) -> SGDOptimizer:
        """The configured optimizer."""
        return self._optimizer

    @property
    def step_count(self) -> int:
        """Number of aggregation/update rounds performed."""
        return self._step

    @property
    def received_log(self) -> list[Matrix]:
        """Every gradient matrix the curious server has retained.

        Empty unless constructed with ``record_received=True``.
        """
        return list(self._received_log)

    def step(self, gradients: Matrix, update_scale: float = 1.0, *, in_place: bool = False) -> Vector:
        """One round: aggregate ``gradients`` and update the parameters.

        Returns the aggregated gradient (before the optimizer update),
        which instrumentation uses for VN-ratio and resilience checks.

        ``update_scale`` multiplies the aggregate fed to the optimizer
        (the returned aggregate is unscaled).  Asynchronous server
        policies use it for staleness-weighted damping; the default of
        1.0 takes a scale-free path, so synchronous training is
        bit-identical to the historical behaviour.

        ``in_place=True`` routes the optimizer update through
        :meth:`repro.optim.sgd.SGDOptimizer.step`'s ``out=`` path, so
        the round allocates no new parameter vector.  The update is
        bit-identical to the allocating path; previously handed-out
        :attr:`parameters` copies are unaffected, but
        :attr:`parameters_view` readers observe the mutation.
        """
        matrix = np.asarray(gradients, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self._gar.n:
            raise ConfigurationError(
                f"expected an ({self._gar.n}, d) gradient matrix, got shape {matrix.shape}"
            )
        if not 0.0 <= update_scale <= 1.0:
            raise ConfigurationError(
                f"update_scale must be in [0, 1], got {update_scale}"
            )
        if self._record_received:
            self._received_log.append(matrix.copy())
        aggregated = self._gar.aggregate(matrix)
        update = aggregated if update_scale == 1.0 else update_scale * aggregated
        if in_place:
            self._optimizer.step(self._parameters, update, out=self._parameters)
        else:
            self._parameters = self._optimizer.step(self._parameters, update)
        self._step += 1
        return aggregated

    def step_batch(self, gradient_stacks) -> np.ndarray:
        """Replay ``S`` pre-recorded rounds with one batched aggregation.

        ``gradient_stacks`` is an ``(S, n, d)`` stack of full rounds
        (e.g. recorded submissions being replayed for analysis, or a
        benchmark workload).  Aggregation is a single
        :meth:`repro.gars.base.GAR.aggregate_batch` call — valid
        because a GAR depends only on the round's gradients, never on
        the parameters — while the optimizer updates are applied
        sequentially, so the final parameters match ``S`` individual
        :meth:`step` calls on the same rounds.  Returns the ``(S, d)``
        aggregates.
        """
        stack = np.asarray(gradient_stacks, dtype=np.float64)
        if stack.ndim != 3 or stack.shape[1] != self._gar.n:
            raise ConfigurationError(
                f"expected an (S, {self._gar.n}, d) gradient stack, "
                f"got shape {stack.shape}"
            )
        if self._record_received:
            self._received_log.extend(matrix.copy() for matrix in stack)
        aggregates = self._gar.aggregate_batch(stack)
        for aggregated in aggregates:
            self._parameters = self._optimizer.step(self._parameters, aggregated)
        self._step += len(aggregates)
        return aggregates
