"""The chief process: multiprocess twin of :class:`repro.distributed.Cluster`.

:class:`MultiprocessCluster` exposes the in-process cluster's stepping
surface (``step`` / ``run`` / ``parameters`` / ``step_count`` …) while
executing the honest cohort in worker-shard processes
(:mod:`repro.distributed.runtime.shard`) over a shared-memory wire
plane (:mod:`repro.distributed.runtime.wire`).  The chief itself plays
the parameter server and the adversary: it owns the
:class:`~repro.distributed.server.ParameterServer`, the attack and its
RNG, and the network model, so the aggregation half of every round is
*literally the same code* as the in-process path — only the production
of the honest ``(H, d)`` matrices moves across process boundaries.

Round protocol (per :meth:`step`):

1. publish the current parameters into the plane;
2. send ``("round", step)`` to every live shard;
3. collect ``("done", shard, step)`` replies under ``round_timeout``,
   watching for dead processes while waiting;
4. copy the wire/clean/loss arrays out of the plane, zero the rows of
   departed workers, and run the unchanged attack → network → GAR →
   SGD tail.

Degraded semantics (crash/timeout/leave): a departed worker stops
existing from the protocol's point of view — its wire row is the zero
vector, exactly what the paper's model ("a non-received gradient is
zero") and the :class:`~repro.distributed.network.LossyNetwork` deliver
for a dropped message, applied one stage earlier because the message
was never produced.  Its clean row is zeroed too (the omniscient
adversary cannot observe a gradient that was never computed) and its
loss row leaves the honest-loss mean.  Departure is permanent and
deterministic given the departure round, so a crashed run's trace is
pinnable.  A timed-out shard is SIGKILLed before the round proceeds,
which guarantees it can never write into a later round.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.compression.base import GradientCodec
from repro.distributed.cluster import StepResult, _emit_round_metrics
from repro.distributed.network import PerfectNetwork
from repro.distributed.runtime.context import multiprocessing_context
from repro.distributed.runtime.shard import WorkerShardSpec, shard_main
from repro.distributed.runtime.wire import WirePlane
from repro.distributed.server import ParameterServer
from repro.exceptions import ConfigurationError, DegradedRunError, TrainingError
from repro.faults.apply import apply_wire_faults
from repro.faults.plan import ResolvedFaultPlan
from repro.typing import Vector

__all__ = ["MultiprocessCluster"]

#: How often the chief re-checks liveness while waiting on shard replies.
_POLL_SECONDS = 0.05


class MultiprocessCluster:
    """Run cluster rounds with the honest cohort in worker processes.

    Constructor mirrors :class:`repro.distributed.Cluster`, with the
    honest workers described by picklable :class:`WorkerShardSpec`\\ s
    (whose ``worker_ids`` must partition ``0..H-1`` contiguously)
    instead of live :class:`HonestWorker` objects.

    Use as a context manager (``with cluster: loop.run(...)``) or call
    :meth:`start` / :meth:`shutdown` explicitly; :meth:`step` starts
    the runtime lazily, and :meth:`shutdown` is idempotent and safe to
    call from ``finally`` blocks.
    """

    def __init__(
        self,
        server: ParameterServer,
        shard_specs: Sequence[WorkerShardSpec],
        num_byzantine: int = 0,
        attack: ByzantineAttack | None = None,
        attack_rng: np.random.Generator | None = None,
        network: PerfectNetwork | None = None,
        codec: GradientCodec | None = None,
        round_timeout: float = 30.0,
        join_timeout: float = 30.0,
        start_method: str | None = None,
        telemetry=None,
        faults: ResolvedFaultPlan | None = None,
    ):
        shard_specs = list(shard_specs)
        if not shard_specs:
            raise ConfigurationError("need at least one worker shard")
        expected = 0
        for spec in shard_specs:
            if spec.worker_ids[0] != expected:
                raise ConfigurationError(
                    "shard specs must partition worker ids 0..H-1 contiguously; "
                    f"shard {spec.shard_id} starts at {spec.worker_ids[0]}, "
                    f"expected {expected}"
                )
            expected = spec.worker_ids[-1] + 1
        num_honest = expected
        if num_byzantine < 0:
            raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "num_byzantine > 0 requires an attack (use ZeroGradientAttack "
                "for crash-style Byzantine workers)"
            )
        if attack is not None and attack_rng is None:
            raise ConfigurationError("an attack requires attack_rng")
        total = num_honest + num_byzantine
        if total != server.gar.n:
            raise ConfigurationError(
                f"server GAR expects n={server.gar.n} workers but the cluster "
                f"has {num_honest} honest + {num_byzantine} Byzantine = {total}"
            )
        if num_byzantine > server.gar.f:
            raise ConfigurationError(
                f"cluster has {num_byzantine} Byzantine workers but the GAR "
                f"only tolerates f={server.gar.f}"
            )
        if round_timeout <= 0:
            raise ConfigurationError(f"round_timeout must be > 0, got {round_timeout}")
        if join_timeout <= 0:
            raise ConfigurationError(f"join_timeout must be > 0, got {join_timeout}")
        if faults is not None:
            if faults.num_honest != num_honest:
                raise ConfigurationError(
                    f"fault plan resolved for {faults.num_honest} honest "
                    f"workers but the cluster has {num_honest}"
                )
            if faults.num_shards != len(shard_specs):
                raise ConfigurationError(
                    f"fault plan targets {faults.num_shards} shards but the "
                    f"cluster launches {len(shard_specs)}; configure the "
                    "experiment with num_shards matching the plan"
                )
            for spec in shard_specs:
                if tuple(faults.partition[spec.shard_id]) != tuple(spec.worker_ids):
                    raise ConfigurationError(
                        f"shard {spec.shard_id} owns workers {spec.worker_ids} "
                        f"but the fault plan's partition maps it to "
                        f"{faults.partition[spec.shard_id]}"
                    )

        self._server = server
        self._shard_specs = shard_specs
        self._num_honest = num_honest
        self._num_byzantine = int(num_byzantine)
        self._attack = attack
        self._attack_rng = attack_rng
        self._network = network if network is not None else PerfectNetwork()
        # The shards encode their own rows (each spec carries the codec);
        # the chief's copy encodes the Byzantine block and accounts bytes.
        self._codec = codec
        self._bytes_on_wire_total = 0
        self._round_timeout = float(round_timeout)
        self._join_timeout = float(join_timeout)
        self._start_method = start_method
        self._step = 0
        self._started = False
        self._closed = False
        self._plane: WirePlane | None = None
        self._processes: dict[int, object] = {}
        self._commands: dict[int, object] = {}
        self._results = None
        self._departed: dict[int, str] = {}
        self._dead_rows: list[int] = []
        self._last_honest_losses: np.ndarray | None = None
        self._faults = faults
        self._context = None
        # Full membership history: (step, shard_id, event, detail) rows.
        # Unlike ``departed`` (the *current* state, cleared on rejoin),
        # this log survives respawns, so a crash->rejoin run keeps its
        # complete fault narrative.
        self._membership_log: list[tuple[int, int, str, str]] = []
        # Chief-side telemetry source; when set, start() also creates
        # the shared shard->chief event queue the merge drains.
        self._telemetry = telemetry
        self._telemetry_queue = None

    # ------------------------------------------------------------------
    # cluster surface (mirrors Cluster)
    # ------------------------------------------------------------------

    @property
    def server(self) -> ParameterServer:
        """The chief-owned parameter server."""
        return self._server

    @property
    def honest_workers(self) -> list:
        """Always empty: honest workers live in shard processes.

        Present so :class:`~repro.pipeline.loop.TrainingLoop` can treat
        both cluster flavours uniformly; the loop reads
        :attr:`last_honest_losses` instead of worker batches here.
        """
        return []

    @property
    def parameters(self) -> Vector:
        """Current model parameters held by the server."""
        return self._server.parameters

    @property
    def n(self) -> int:
        """Total workers (honest + Byzantine)."""
        return self._num_honest + self._num_byzantine

    @property
    def num_honest(self) -> int:
        """Number of honest workers (including departed ones)."""
        return self._num_honest

    @property
    def num_byzantine(self) -> int:
        """Number of Byzantine workers actually attacking."""
        return self._num_byzantine

    @property
    def step_count(self) -> int:
        """Rounds completed so far."""
        return self._step

    @property
    def codec(self) -> GradientCodec | None:
        """The wire codec encoding submissions (or ``None``)."""
        return self._codec

    @property
    def bytes_on_wire_total(self) -> int:
        """Cumulative encoded bytes across all rounds (0 without a codec)."""
        return self._bytes_on_wire_total

    @property
    def last_honest_losses(self) -> np.ndarray | None:
        """Per-worker batch losses of the live rows of the last round.

        ``None`` before the first round or when every shard has
        departed.  The training loop averages this instead of re-scoring
        worker batches (which live in other processes).
        """
        return self._last_honest_losses

    @property
    def departed(self) -> dict[int, str]:
        """``shard_id -> reason`` for every *currently* departed shard.

        A shard respawned by the fault plane no longer appears here;
        :attr:`membership_log` keeps the full history.
        """
        return dict(self._departed)

    @property
    def membership_log(self) -> list[tuple[int, int, str, str]]:
        """``(step, shard_id, event, detail)`` membership history rows.

        ``event`` is ``"departed"`` or ``"respawned"``; entries survive
        rejoins, unlike :attr:`departed`.
        """
        return list(self._membership_log)

    @property
    def faults(self) -> ResolvedFaultPlan | None:
        """The resolved fault plan driving this run, or ``None``."""
        return self._faults

    @property
    def departed_workers(self) -> list[int]:
        """Worker ids whose rows are permanently zeroed (sorted)."""
        return list(self._dead_rows)

    @property
    def live_worker_count(self) -> int:
        """Honest workers still participating."""
        return self._num_honest - len(self._dead_rows)

    @property
    def telemetry(self):
        """The installed :class:`repro.telemetry.Telemetry` handle (or None)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, handle) -> None:
        if self._started and handle is not None and self._telemetry_queue is None:
            raise ConfigurationError(
                "telemetry must be installed before the runtime starts "
                "(shard processes are launched with the telemetry queue)"
            )
        self._telemetry = handle

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Create the wire plane, launch shard processes, await joins.

        Shards that fail to join within ``join_timeout`` (or die/error
        during startup) are departed; if *none* joins the runtime is
        torn down and a :class:`TrainingError` raised — a run where no
        honest worker ever existed is a configuration failure, not a
        degraded round.
        """
        if self._closed:
            raise TrainingError("cluster already shut down; build a new one")
        if self._started:
            return
        context = multiprocessing_context(self._start_method)
        self._context = context
        dimension = int(self._server.parameters_view.shape[0])
        self._plane = WirePlane.create(self._num_honest, dimension)
        self._results = context.Queue()
        if self._telemetry is not None:
            # One shared event queue for all shards: each shard's
            # QueueSink batches put their events in order, and the
            # chief's drain preserves per-source ordering — all the
            # merged trace's validation requires.
            self._telemetry_queue = context.Queue()
        try:
            for spec in self._shard_specs:
                if self._faults is not None:
                    # The plan owns the failure seam: translate this
                    # shard's first outage and slow events into spec
                    # fields (overriding any manually-set seam).
                    spec = replace(
                        spec, **self._faults.shard_spec_fields(spec.shard_id)
                    )
                self._launch(spec)
            self._await_joins()
        except BaseException:
            self._started = True  # so shutdown tears down the partial launch
            self.shutdown()
            raise
        self._started = True
        if len(self._departed) == len(self._shard_specs):
            reasons = "; ".join(
                f"shard {shard}: {reason}" for shard, reason in sorted(self._departed.items())
            )
            self.shutdown()
            raise TrainingError(f"no worker shard joined the runtime ({reasons})")

    def _launch(self, spec: WorkerShardSpec) -> None:
        """Spawn one shard process and register its queues."""
        commands = self._context.Queue()
        process = self._context.Process(
            target=shard_main,
            args=(
                spec,
                self._plane.spec,
                commands,
                self._results,
                self._telemetry_queue,
            ),
            daemon=True,
            name=f"repro-shard-{spec.shard_id}",
        )
        process.start()
        self._commands[spec.shard_id] = commands
        self._processes[spec.shard_id] = process

    def _await_joins(self) -> None:
        waiting = {spec.shard_id for spec in self._shard_specs}
        deadline = time.monotonic() + self._join_timeout
        while waiting:
            try:
                message = self._results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for shard_id in list(waiting):
                    process = self._processes[shard_id]
                    if not process.is_alive():
                        waiting.discard(shard_id)
                        self._depart(
                            shard_id,
                            f"exited before joining (code {process.exitcode})",
                        )
                if time.monotonic() >= deadline:
                    for shard_id in sorted(waiting):
                        self._depart(shard_id, "failed to join in time", kill=True)
                    return
                continue
            if message[0] == "join":
                waiting.discard(message[1])
            elif message[0] == "error":
                waiting.discard(message[1])
                self._depart(message[1], f"startup error: {message[2]}")

    def shutdown(self) -> None:
        """Stop shards, reap processes, release the wire plane.

        Idempotent; after shutdown the cluster cannot step again (the
        server keeps its final parameters, so results remain readable).
        """
        if self._closed:
            return
        self._closed = True
        if not self._started and self._plane is None:
            return
        for shard_id, commands in self._commands.items():
            if shard_id not in self._departed:
                try:
                    commands.put(("stop",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for process in self._processes.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        # Final merge: with every shard joined (or killed) the queue
        # feeder threads have flushed, so a single drain collects all
        # remaining shard events — including the shard.stop marks.
        self._drain_shard_events()
        if self._telemetry_queue is not None:
            self._telemetry_queue.close()
            self._telemetry_queue.cancel_join_thread()
            self._telemetry_queue = None
        for commands in self._commands.values():
            commands.close()
            commands.cancel_join_thread()
        if self._results is not None:
            self._results.close()
            self._results.cancel_join_thread()
            self._results = None
        if self._plane is not None:
            self._plane.close()
            self._plane = None
        self._commands.clear()
        self._processes.clear()

    def __enter__(self) -> "MultiprocessCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def leave(self, shard_id: int) -> None:
        """Gracefully retire a shard: stop it, then zero its rows forever.

        From the next round on the shard's workers behave like crashed
        ones (zero wire rows); the departure is recorded with reason
        ``"left"``.  Unknown or already-departed shards are rejected /
        ignored respectively.
        """
        if shard_id not in self._commands and not any(
            spec.shard_id == shard_id for spec in self._shard_specs
        ):
            raise ConfigurationError(f"unknown shard {shard_id}")
        if shard_id in self._departed:
            return
        if not self._started:
            self.start()
        commands = self._commands[shard_id]
        try:
            commands.put(("stop",))
        except Exception:  # pragma: no cover - queue already broken
            pass
        process = self._processes[shard_id]
        process.join(timeout=2.0)
        self._depart(shard_id, "left", kill=process.is_alive())

    def _depart(self, shard_id: int, reason: str, kill: bool = False) -> None:
        """Permanently remove a shard from the protocol."""
        if shard_id in self._departed:
            return
        self._departed[shard_id] = reason
        self._membership_log.append((self._step, shard_id, "departed", reason))
        spec = next(s for s in self._shard_specs if s.shard_id == shard_id)
        self._dead_rows = sorted(set(self._dead_rows) | set(spec.worker_ids))
        process = self._processes.get(shard_id)
        if process is not None and kill and process.is_alive():
            # SIGKILL, not terminate: a hung shard must never wake up and
            # write rows into a later round's wire matrix.
            process.kill()
            process.join(timeout=1.0)
        if self._telemetry is not None:
            # The legible final event for a shard that can no longer
            # speak for itself: id, round, reason, exit code.
            self._telemetry.warning(
                "shard.departed",
                f"shard {shard_id} departed at step {self._step}: {reason}",
                shard=shard_id,
                reason=reason,
                fail_step=self._step,
                exit_code=process.exitcode if process is not None else None,
                workers=list(spec.worker_ids),
            )
            self._telemetry.counter("shard.departed")

    def _respawn(self, shard_id: int) -> None:
        """Relaunch a departed shard for the fault plan's rejoin round.

        The fresh process rebuilds the shard's workers, fast-forwards
        their seed streams through rounds ``1..self._step - 1`` (see
        :func:`repro.distributed.runtime.shard._fast_forward`), and
        joins before this round's command is published.  On success the
        shard's rows rejoin the protocol; on failure the shard stays
        departed and the run degrades as usual.
        """
        assert self._faults is not None
        spec = next(s for s in self._shard_specs if s.shard_id == shard_id)
        fields = self._faults.shard_spec_fields(shard_id, start_round=self._step)
        old_commands = self._commands.pop(shard_id, None)
        if old_commands is not None:
            try:
                old_commands.close()
                old_commands.cancel_join_thread()
            except Exception:  # pragma: no cover - queue already broken
                pass
        old_process = self._processes.pop(shard_id, None)
        if old_process is not None and old_process.is_alive():  # pragma: no cover
            old_process.kill()
            old_process.join(timeout=1.0)
        self._launch(replace(spec, **fields))
        process = self._processes[shard_id]
        deadline = time.monotonic() + self._join_timeout
        joined = False
        failure = "failed to join in time"
        while time.monotonic() < deadline:
            try:
                message = self._results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if not process.is_alive():
                    failure = f"respawn died (code {process.exitcode})"
                    break
                continue
            if message[0] == "join" and message[1] == shard_id:
                joined = True
                break
            if message[0] == "error" and message[1] == shard_id:
                failure = f"respawn error: {message[2]}"
                break
            # Stray messages from other shards (none expected between
            # rounds) are dropped, matching _collect's join handling.
        if not joined:
            reason = f"respawn failed: {failure}"
            self._departed[shard_id] = reason
            self._membership_log.append((self._step, shard_id, "departed", reason))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            if self._telemetry is not None:
                self._telemetry.warning(
                    "shard.respawn_failed",
                    f"shard {shard_id} respawn at step {self._step} failed: "
                    f"{failure}",
                    shard=shard_id,
                    reason=failure,
                )
            return
        self._departed.pop(shard_id, None)
        self._dead_rows = sorted(set(self._dead_rows) - set(spec.worker_ids))
        self._membership_log.append(
            (self._step, shard_id, "respawned", f"pid {process.pid}")
        )
        if self._telemetry is not None:
            self._telemetry.mark(
                "shard.respawned",
                shard=shard_id,
                step=self._step,
                pid=process.pid,
                workers=list(spec.worker_ids),
            )
            self._telemetry.counter("shard.respawned")

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    def step(self, record: bool = True) -> StepResult:
        """Run one synchronous round and return its instrumentation.

        Identical contract to :meth:`repro.distributed.Cluster.step`;
        rounds whose shards all respond are bit-identical to it, and a
        dead/hung/departed shard degrades per the module docstring
        without ever blocking past ``round_timeout``.
        """
        if self._closed:
            raise TrainingError("cluster already shut down; build a new one")
        if not self._started:
            self.start()
        self._step += 1
        if self._faults is not None:
            for shard_id in self._faults.rejoining_shards(self._step):
                if shard_id in self._departed:
                    self._respawn(shard_id)
        # Inline-gated telemetry: unlike Cluster.step's duplicated twin,
        # the per-round cost here is dominated by IPC, so a handful of
        # `is not None` branches in one body is the clearer trade.
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.set_step(self._step)
            phase_started = time.perf_counter_ns()
        parameters = self._server.parameters
        np.copyto(self._plane.parameters, parameters)

        pending: set[int] = set()
        for spec in self._shard_specs:
            if spec.shard_id not in self._departed:
                self._commands[spec.shard_id].put(("round", self._step))
                pending.add(spec.shard_id)
        if telemetry is not None:
            now = time.perf_counter_ns()
            telemetry.span_ns("round.publish", now - phase_started)
            phase_started = now
        self._collect(pending)
        if telemetry is not None:
            now = time.perf_counter_ns()
            telemetry.span_ns("round.wait", now - phase_started)
            self._drain_shard_events()
            phase_started = time.perf_counter_ns()

        # Absent = really-dead shards plus (belt-and-braces) anyone the
        # fault plan says is down this round — in normal fault-plane
        # operation the two sets coincide, because the plan's outages
        # fire through the spec's failure seam.
        absent = set(self._dead_rows)
        if self._faults is not None:
            absent |= self._faults.absent_workers(self._step)
        if len(absent) >= self._num_honest:
            raise DegradedRunError(
                f"round {self._step}: every honest worker has departed; "
                "refusing to aggregate attack-only submissions"
            )
        dead_rows = sorted(absent)
        honest_submitted = np.array(self._plane.wire)
        honest_clean = np.array(self._plane.clean)
        losses = np.array(self._plane.losses)
        row_bytes = (
            np.array(self._plane.wire_bytes) if self._codec is not None else None
        )
        if dead_rows:
            honest_submitted[dead_rows] = 0.0
            honest_clean[dead_rows] = 0.0
            if row_bytes is not None:
                # A departed worker's message was never produced this
                # round — zero bytes (its plane row is stale from its
                # last live round).
                row_bytes[dead_rows] = 0.0
            live_rows = np.setdiff1d(
                np.arange(self._num_honest), np.asarray(dead_rows)
            )
            self._last_honest_losses = losses[live_rows] if live_rows.size else None
        else:
            self._last_honest_losses = losses
        if self._faults is not None:
            # Chief-side worker faults (drop_round / corrupt_payload):
            # the same helper, on the same already-encoded rows, as the
            # in-process and simulated backends — identical float ops.
            # (Absent rows are re-zeroed, a no-op; dropped workers keep
            # their loss and wire-bytes rows: the message was sent and
            # then lost.)
            zeroed, corrupted = apply_wire_faults(
                self._faults, self._step, honest_submitted, honest_clean
            )
            if telemetry is not None and (zeroed or corrupted):
                telemetry.counter(
                    "fault.injected",
                    len(zeroed) + len(corrupted),
                    zeroed=sorted(zeroed),
                    corrupted=sorted(corrupted),
                )
        bytes_on_wire: int | None = (
            int(row_bytes.sum()) if row_bytes is not None else None
        )
        if telemetry is not None:
            now = time.perf_counter_ns()
            telemetry.span_ns("round.copyout", now - phase_started)
            phase_started = now

        byzantine_gradient: Vector | None = None
        if self._num_byzantine > 0:
            assert self._attack is not None and self._attack_rng is not None
            context = AttackContext(
                step=self._step,
                honest_submitted=honest_submitted,
                honest_clean=honest_clean,
                parameters=parameters,
                num_byzantine=self._num_byzantine,
                rng=self._attack_rng,
            )
            byzantine_gradient = np.asarray(
                self._attack.craft(context), dtype=np.float64
            )
            if byzantine_gradient.shape != parameters.shape:
                raise ConfigurationError(
                    f"attack produced shape {byzantine_gradient.shape}, "
                    f"expected {parameters.shape}"
                )
            byzantine_block = np.tile(byzantine_gradient, (self._num_byzantine, 1))
            if self._codec is not None:
                byzantine_block, byzantine_bytes = self._codec.encode_block(
                    byzantine_block,
                    self._step,
                    range(self._num_honest, self._num_honest + self._num_byzantine),
                )
                bytes_on_wire += int(byzantine_bytes.sum())
            all_gradients = np.vstack([honest_submitted, byzantine_block])
        else:
            all_gradients = honest_submitted
        if telemetry is not None:
            now = time.perf_counter_ns()
            telemetry.span_ns("round.attack", now - phase_started)
            dropped_before = getattr(self._network, "dropped_total", None)
            phase_started = now

        delivered = self._network.deliver(all_gradients, self._step)
        if telemetry is not None:
            now = time.perf_counter_ns()
            telemetry.span_ns("round.network", now - phase_started)
            if dropped_before is not None:
                dropped = self._network.dropped_total - dropped_before
                if dropped:
                    telemetry.counter("network.dropped", dropped)
            phase_started = now
        aggregated = self._server.step(delivered)
        if telemetry is not None:
            telemetry.span_ns("round.server", time.perf_counter_ns() - phase_started)
            _emit_round_metrics(telemetry, delivered, aggregated, self._num_honest)
        if bytes_on_wire is not None:
            self._bytes_on_wire_total += bytes_on_wire
            if telemetry is not None:
                telemetry.counter("wire.bytes", bytes_on_wire)
        return StepResult(
            step=self._step,
            aggregated=aggregated,
            honest_submitted=honest_submitted if record else None,
            honest_clean=honest_clean if record else None,
            byzantine_gradient=byzantine_gradient,
            bytes_on_wire=bytes_on_wire,
        )

    def _drain_shard_events(self) -> None:
        """Merge every queued shard event into the chief's trace.

        Shard events keep their original ``src``/``seq``: drain order
        is causal per shard (one queue, FIFO feeders), which is exactly
        the ordering the trace schema validates.  A batch a shard
        flushed late simply merges on a later drain — or on the final
        drain in :meth:`shutdown`.
        """
        queue = self._telemetry_queue
        if queue is None or self._telemetry is None:
            return
        while True:
            try:
                batch = queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            for event in batch:
                self._telemetry.forward(event)

    def _collect(self, pending: set[int]) -> None:
        """Await ``("done", ...)`` replies; depart the dead and the late."""
        deadline = time.monotonic() + self._round_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                for shard_id in sorted(pending):
                    self._depart(shard_id, "round timed out", kill=True)
                pending.clear()
                return
            try:
                message = self._results.get(timeout=min(remaining, _POLL_SECONDS))
            except queue_module.Empty:
                # No reply in flight: a shard that is no longer alive can
                # never answer, so depart it now instead of burning the
                # whole round timeout.
                for shard_id in list(pending):
                    process = self._processes[shard_id]
                    if not process.is_alive():
                        pending.discard(shard_id)
                        self._depart(
                            shard_id, f"process died (code {process.exitcode})"
                        )
                continue
            kind = message[0]
            if kind == "done":
                _, shard_id, step = message
                if step == self._step:
                    pending.discard(shard_id)
            elif kind == "error":
                _, shard_id, reason = message
                pending.discard(shard_id)
                self._depart(shard_id, f"worker error: {reason}")
            # stray "join" messages (late joiner already departed) are dropped

    def run(self, num_steps: int) -> StepResult:
        """Run ``num_steps`` rounds; returns the last round's result."""
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        result: StepResult | None = None
        for _ in range(num_steps):
            result = self.step()
        assert result is not None
        return result
