"""Pinned multiprocessing start method.

Python's default start method differs by platform (``fork`` on Linux,
``spawn`` on macOS/Windows) and has changed across Python versions —
letting the platform default leak through makes process behaviour
silently environment-dependent.  Everything in this repository that
spawns processes (:func:`repro.pipeline.parallel.map_tasks`, the
multiprocess cluster runtime) goes through :func:`multiprocessing_context`,
which pins an explicit, documented choice:

* the ``REPRO_START_METHOD`` environment variable, when set, wins
  (validated against ``fork``/``spawn``/``forkserver`` and against the
  platform's supported methods);
* otherwise ``fork`` where available — child processes inherit the
  already-imported numpy and the already-built datasets for free, which
  keeps per-process startup in the low milliseconds;
* otherwise ``spawn`` (macOS/Windows).

The choice affects only startup cost, never results: every shard and
pool task rebuilds its state from a picklable spec and draws randomness
from path-addressed :class:`repro.rng.SeedTree` streams, so ``fork``
and ``spawn`` runs are bit-identical (the runtime test suite pins
this).
"""

from __future__ import annotations

import multiprocessing
import os

from repro.exceptions import ConfigurationError

__all__ = ["START_METHOD_ENV", "pinned_start_method", "multiprocessing_context"]

#: Environment variable overriding the pinned start method.
START_METHOD_ENV = "REPRO_START_METHOD"

_KNOWN_METHODS = ("fork", "spawn", "forkserver")


def pinned_start_method() -> str:
    """The start method every process-spawning path in repro uses."""
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV)
    if override:
        if override not in _KNOWN_METHODS:
            raise ConfigurationError(
                f"{START_METHOD_ENV} must be one of {_KNOWN_METHODS}, "
                f"got {override!r}"
            )
        if override not in available:
            raise ConfigurationError(
                f"{START_METHOD_ENV}={override!r} is not supported on this "
                f"platform (available: {tuple(available)})"
            )
        return override
    return "fork" if "fork" in available else "spawn"


def multiprocessing_context(method: str | None = None):
    """A :mod:`multiprocessing` context bound to the pinned start method.

    ``method`` overrides the pin (used by the start-method-independence
    tests); normal callers pass nothing.
    """
    return multiprocessing.get_context(method if method is not None else pinned_start_method())
