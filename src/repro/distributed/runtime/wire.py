"""Shared-memory wire plane between the chief and its worker processes.

One :class:`WirePlane` is one ``multiprocessing.shared_memory`` segment
laid out as five float64 arrays:

* ``parameters`` — the ``(d,)`` model parameters, written by the chief
  before each round and read (copied) by every worker process;
* ``wire`` — the ``(H, d)`` submitted-gradient matrix, one row per
  honest worker, written by the owning shard process each round;
* ``clean`` — the ``(H, d)`` pre-noise gradients (the omniscient
  attack's view and the VN-ratio instrumentation — never visible to a
  real server, exactly like the in-process cluster's ``honest_clean``);
* ``losses`` — the ``(H,)`` per-worker training losses of the sampled
  batches at the round's (pre-update) parameters;
* ``wire_bytes`` — the ``(H,)`` exact encoded byte counts of the
  round's wire messages when the run carries a codec (zeros
  otherwise).  Stored as float64 so the plane stays a single-dtype
  layout; byte counts are integers well below 2**53, so the values are
  exact.

Gradients therefore cross the process boundary as plain memory writes:
no per-round pickling, no sockets — the per-round IPC is a handful of
tiny queue tokens (see :mod:`repro.distributed.runtime.cluster`).

Lifecycle: the chief *creates* (and ultimately *unlinks*) the segment;
workers *attach* and only ever *close* their mapping.  Creation
registers the plane in a module-level table whose ``atexit`` hook
unlinks anything still live, so a run killed by SIGINT or a mid-round
exception cannot leak ``/dev/shm`` segments — the context-manager form
(``with WirePlane.create(...) as plane:``) is still the primary
cleanup path; the hook is the backstop.
"""

from __future__ import annotations

import atexit
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PlaneSpec", "WirePlane", "SEGMENT_PREFIX", "wire_segment_names"]

#: Prefix of every wire-plane shared-memory segment name.  Kept short:
#: POSIX shared-memory names are length-limited on some platforms.
SEGMENT_PREFIX = "rpwire"

_FLOAT = np.dtype(np.float64)

#: Planes created (owned) by this process and not yet closed; the
#: ``atexit`` hook drains it so abnormal exits leave no segments behind.
_ACTIVE_PLANES: set["WirePlane"] = set()
_ATEXIT_REGISTERED = False


def _cleanup_active_planes() -> None:
    """Unlink every still-open owned plane (the ``atexit`` backstop)."""
    for plane in list(_ACTIVE_PLANES):
        try:
            plane.close()
        except Exception:  # pragma: no cover - best-effort at interpreter exit
            pass


def _register_active(plane: "WirePlane") -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_cleanup_active_planes)
        _ATEXIT_REGISTERED = True
    _ACTIVE_PLANES.add(plane)


@contextmanager
def _untracked_shared_memory():
    """Suppress resource-tracker registration while attaching a segment.

    Every ``SharedMemory`` constructed in a process registers itself
    with a resource tracker — including pure attachments (until Python
    3.13's ``track=False``).  That is wrong for the worker side twice
    over: under ``spawn`` the child's own tracker would *unlink* the
    chief's segment when the child exits; under ``fork`` the child
    shares the chief's tracker, so a later child-side ``unregister``
    would strip the chief's one registration and lose the leak
    backstop.  Skipping registration on attach leaves exactly one
    registration alive — the creating chief's — which is what makes the
    tracker the second backstop behind :func:`_cleanup_active_planes`.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


def wire_segment_names() -> list[str]:
    """Names of wire-plane segments currently present in ``/dev/shm``.

    The leak-detection hook for tests and post-mortems; returns an
    empty list on platforms without a ``/dev/shm`` filesystem (where
    the same named segments exist but are not enumerable as files).
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.glob(f"{SEGMENT_PREFIX}-*"))


@dataclass(frozen=True)
class PlaneSpec:
    """Picklable identity of a wire plane: segment name plus layout.

    Worker processes receive this (not the plane object) and attach by
    name; the layout fields let both sides construct identical views.
    """

    session: str
    num_honest: int
    dimension: int

    @property
    def segment_name(self) -> str:
        """The shared-memory segment's global name."""
        return f"{SEGMENT_PREFIX}-{self.session}"

    @property
    def size_bytes(self) -> int:
        """Total segment size: params + wire + clean + losses + wire_bytes."""
        h, d = self.num_honest, self.dimension
        return _FLOAT.itemsize * (d + 2 * h * d + 2 * h)


class WirePlane:
    """A mapped wire-plane segment (chief side or worker side).

    Use :meth:`create` in the chief and :meth:`attach` in workers; both
    return context managers.  The exposed arrays are live views into
    shared memory — readers copy (``np.array(view)``) before retaining,
    and nobody may hold a view across :meth:`close`.
    """

    def __init__(self, spec: PlaneSpec, segment: shared_memory.SharedMemory, owner: bool):
        self._spec = spec
        self._segment = segment
        self._owner = bool(owner)
        h, d = spec.num_honest, spec.dimension
        item = _FLOAT.itemsize
        offset = 0
        self._parameters = np.ndarray((d,), dtype=_FLOAT, buffer=segment.buf, offset=offset)
        offset += d * item
        self._wire = np.ndarray((h, d), dtype=_FLOAT, buffer=segment.buf, offset=offset)
        offset += h * d * item
        self._clean = np.ndarray((h, d), dtype=_FLOAT, buffer=segment.buf, offset=offset)
        offset += h * d * item
        self._losses = np.ndarray((h,), dtype=_FLOAT, buffer=segment.buf, offset=offset)
        offset += h * item
        self._wire_bytes = np.ndarray(
            (h,), dtype=_FLOAT, buffer=segment.buf, offset=offset
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, num_honest: int, dimension: int, session: str | None = None) -> "WirePlane":
        """Create (and own) a zero-initialised plane for ``H`` workers."""
        if num_honest < 1:
            raise ConfigurationError(f"num_honest must be >= 1, got {num_honest}")
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        spec = PlaneSpec(
            session=session if session is not None else uuid.uuid4().hex[:12],
            num_honest=int(num_honest),
            dimension=int(dimension),
        )
        segment = shared_memory.SharedMemory(
            name=spec.segment_name, create=True, size=spec.size_bytes
        )
        plane = cls(spec, segment, owner=True)
        plane._wire[:] = 0.0
        plane._clean[:] = 0.0
        plane._losses[:] = 0.0
        plane._wire_bytes[:] = 0.0
        plane._parameters[:] = 0.0
        _register_active(plane)
        return plane

    @classmethod
    def attach(cls, spec: PlaneSpec) -> "WirePlane":
        """Attach to an existing plane (worker side; never unlinks)."""
        with _untracked_shared_memory():
            segment = shared_memory.SharedMemory(name=spec.segment_name)
        return cls(spec, segment, owner=False)

    # ------------------------------------------------------------------
    # shared views
    # ------------------------------------------------------------------

    @property
    def spec(self) -> PlaneSpec:
        """This plane's picklable identity (ship it to workers)."""
        return self._spec

    @property
    def parameters(self) -> np.ndarray:
        """Live ``(d,)`` parameter view (chief writes, workers copy)."""
        return self._parameters

    @property
    def wire(self) -> np.ndarray:
        """Live ``(H, d)`` submitted-gradient matrix view."""
        return self._wire

    @property
    def clean(self) -> np.ndarray:
        """Live ``(H, d)`` pre-noise gradient matrix view."""
        return self._clean

    @property
    def losses(self) -> np.ndarray:
        """Live ``(H,)`` per-worker batch-loss view."""
        return self._losses

    @property
    def wire_bytes(self) -> np.ndarray:
        """Live ``(H,)`` per-worker encoded-byte-count view."""
        return self._wire_bytes

    @property
    def closed(self) -> bool:
        """Whether this mapping has been released."""
        return self._segment is None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment.

        Idempotent.  After this, every view handed out by this object
        is dead — callers copy what they need beforehand.
        """
        if self._segment is None:
            return
        self._parameters = self._wire = self._clean = self._losses = None
        self._wire_bytes = None
        segment, self._segment = self._segment, None
        segment.close()
        if self._owner:
            try:
                segment.unlink()
            except FileNotFoundError:  # already gone (double cleanup)
                pass
            _ACTIVE_PLANES.discard(self)

    def __enter__(self) -> "WirePlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("owner" if self._owner else "attached")
        return (
            f"WirePlane({self._spec.segment_name!r}, H={self._spec.num_honest}, "
            f"d={self._spec.dimension}, {state})"
        )
