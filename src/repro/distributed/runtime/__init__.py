"""Multi-process cluster runtime.

Process-per-worker (or process-per-shard) execution of the paper's
synchronous protocol behind the exact in-process ``Cluster`` /
``TrainingLoop`` surface: a chief process owns the parameter server,
adversary and network; worker shards compute clipped+noised gradients
in their own processes and publish them through a shared-memory wire
plane.  Selected via ``Experiment(backend="multiprocess")`` and
bit-identical to the in-process engine (see the differential test
suite); crash/timeout of a worker degrades to the dropped-message
semantics instead of hanging the round.

Layout: :mod:`~repro.distributed.runtime.wire` (the shared-memory
plane), :mod:`~repro.distributed.runtime.shard` (worker-side process
loop), :mod:`~repro.distributed.runtime.cluster` (the chief),
:mod:`~repro.distributed.runtime.context` (pinned start method).
"""

from repro.distributed.runtime.cluster import MultiprocessCluster
from repro.distributed.runtime.context import (
    START_METHOD_ENV,
    multiprocessing_context,
    pinned_start_method,
)
from repro.distributed.runtime.shard import (
    CRASH_EXIT_CODE,
    FAIL_MODES,
    WorkerShardSpec,
    shard_main,
)
from repro.distributed.runtime.wire import (
    SEGMENT_PREFIX,
    PlaneSpec,
    WirePlane,
    wire_segment_names,
)

__all__ = [
    "BACKENDS",
    "CRASH_EXIT_CODE",
    "FAIL_MODES",
    "MultiprocessCluster",
    "PlaneSpec",
    "SEGMENT_PREFIX",
    "START_METHOD_ENV",
    "WirePlane",
    "WorkerShardSpec",
    "multiprocessing_context",
    "pinned_start_method",
    "shard_main",
    "wire_segment_names",
]

#: Execution backends selectable on :class:`repro.pipeline.Experiment`.
BACKENDS = ("inprocess", "multiprocess")
