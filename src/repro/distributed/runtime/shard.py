"""Worker-shard processes: the compute side of the multiprocess runtime.

A *shard* is one OS process owning a contiguous slice of the honest
cohort (one worker per process in the default process-per-worker
layout).  Each round it copies the parameters from the wire plane, runs
the exact in-process cohort pipeline (:func:`compute_cohort` — batch
sampling, stacked gradient, clip, DP noise, momentum) on its own
workers, scores their sampled batches at the pre-update parameters, and
writes its rows of the wire/clean/loss arrays.

Bit-identity with the in-process engine rests on two facts:

* seed streams are *path-addressed* (:class:`repro.rng.SeedTree`), so a
  shard rebuilding ``("worker", i, "batch")`` / ``("worker", i,
  "noise")`` from the root seed draws exactly the in-process streams,
  in the same order, regardless of which process consumes them;
* the stacked cohort kernels are row-stable: every per-worker quantity
  (batch gradient, clip rescale, noise add, momentum update, batch
  loss) is computed by per-row reductions whose float evaluation order
  does not depend on how many rows are stacked, so a shard computing
  rows ``[a, b)`` reproduces rows ``[a, b)`` of the full-cohort stack
  bit for bit.  The differential suite (in-process vs multiprocess,
  per-round) is the empirical arbiter of this property.

Control flow is two tiny queues per shard — commands in (``("round",
step)`` / ``("stop",)``), results out (``("join", ...)``, ``("done",
...)``, ``("error", ...)``) — while all numerical payloads travel
through shared memory.

The spec carries an optional *failure-injection seam* (``fail_step`` /
``fail_mode``) used by the crash-resilience tests: real mid-round
crashes are inherently racy to stage from outside, whereas an injected
``os._exit`` (or hang) at a pinned round makes the degraded trace
deterministic and therefore pinnable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compression.base import GradientCodec
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.runtime.wire import PlaneSpec, WirePlane
from repro.distributed.worker import CLIP_MODES, HonestWorker, compute_cohort
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.privacy.mechanisms import NoiseMechanism
from repro.rng import SeedTree

__all__ = ["WorkerShardSpec", "shard_main", "FAIL_MODES", "CRASH_EXIT_CODE"]

#: Supported failure-injection modes: ``"die"`` exits the process
#: abruptly (no message, no rows written); ``"hang"`` blocks until the
#: chief's round timeout kills it.
FAIL_MODES = ("die", "hang")

#: Exit code of a ``"die"``-injected shard, distinguishable from a
#: normal exit (0) and a SIGKILL (-9) in test assertions.
CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class WorkerShardSpec:
    """Picklable recipe for one shard process's slice of the cohort.

    ``worker_ids`` are *global* honest indices (also the shard's row
    indices in the wire plane) and must be contiguous and ascending.
    ``root_seed`` is the experiment's root seed: the shard derives its
    workers' private streams from a fresh :class:`SeedTree` by path, so
    they match the chief-side in-process streams exactly.

    ``fail_step``/``fail_mode`` are the failure-injection seam: at round
    ``fail_step`` the shard fails *before* writing anything (``0``
    means before even joining).  Production specs leave them at
    ``None``.
    """

    shard_id: int
    worker_ids: tuple[int, ...]
    model: Model
    datasets: tuple[Dataset, ...]
    batch_size: int
    root_seed: int
    g_max: float | None = None
    mechanism: NoiseMechanism | None = None
    clip_mode: str = "batch"
    momentum: float = 0.0
    #: Wire codec (picklable: its state is one root seed).  The shard
    #: encodes its own rows before writing them to the plane, so the
    #: chief — and the observing adversary — only ever see what
    #: actually crossed the wire.
    codec: GradientCodec | None = None
    fail_step: int | None = None
    fail_mode: str = "die"
    #: Respawn support: a shard spawned with ``start_step > 0`` fast
    #: forwards its workers' seed streams through the missed rounds
    #: ``1..start_step`` (one ``compute_cohort`` pass per round — the
    #: draws are value-independent, so zero parameters suffice) and
    #: resets momentum, so its first served round is bit-identical to a
    #: shard that lived through the outage in-process.
    start_step: int = 0
    #: ``(step, factor)`` pairs from the fault plan's ``slow`` events:
    #: the shard sleeps ``0.01 * factor`` seconds at those rounds before
    #: writing its rows.  Wall-clock only — never touches the numbers.
    slow_steps: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.worker_ids:
            raise ConfigurationError("a shard needs at least one worker")
        ids = list(self.worker_ids)
        if ids != list(range(ids[0], ids[0] + len(ids))):
            raise ConfigurationError(
                f"shard worker_ids must be contiguous and ascending, got {ids}"
            )
        if len(self.datasets) != len(ids):
            raise ConfigurationError(
                f"shard has {len(ids)} workers but {len(self.datasets)} datasets"
            )
        if self.clip_mode not in CLIP_MODES:
            raise ConfigurationError(
                f"clip_mode must be one of {CLIP_MODES}, got {self.clip_mode!r}"
            )
        if self.fail_step is not None and self.fail_step < 0:
            raise ConfigurationError(f"fail_step must be >= 0, got {self.fail_step}")
        if self.fail_mode not in FAIL_MODES:
            raise ConfigurationError(
                f"fail_mode must be one of {FAIL_MODES}, got {self.fail_mode!r}"
            )
        if self.start_step < 0:
            raise ConfigurationError(
                f"start_step must be >= 0, got {self.start_step}"
            )
        for step, factor in self.slow_steps:
            if step < 1 or factor <= 0 or not np.isfinite(factor):
                raise ConfigurationError(
                    f"invalid slow event (step={step}, factor={factor})"
                )

    @property
    def rows(self) -> slice:
        """This shard's row range in the wire plane's ``(H, d)`` arrays."""
        return slice(self.worker_ids[0], self.worker_ids[-1] + 1)

    def build_workers(self) -> list[HonestWorker]:
        """Reconstruct this shard's workers with their exact seed streams."""
        seeds = SeedTree(self.root_seed)
        return [
            HonestWorker(
                worker_id=worker_id,
                model=self.model,
                sampler=BatchSampler(
                    self.datasets[local],
                    self.batch_size,
                    seeds.generator("worker", worker_id, "batch"),
                ),
                noise_rng=seeds.generator("worker", worker_id, "noise"),
                g_max=self.g_max,
                mechanism=self.mechanism,
                clip_mode=self.clip_mode,
                momentum=self.momentum,
            )
            for local, worker_id in enumerate(self.worker_ids)
        ]


def _inject_failure(spec: WorkerShardSpec) -> None:
    """Fire the spec's failure seam (never returns for ``"die"``)."""
    if spec.fail_mode == "die":
        # Abrupt death: no queue message, no row writes, skip all
        # cleanup — the closest deterministic stand-in for a SIGKILL.
        os._exit(CRASH_EXIT_CODE)
    while True:  # "hang": outlive any round timeout until the chief kills us
        time.sleep(3600.0)


def shard_main(
    spec: WorkerShardSpec,
    plane_spec: PlaneSpec,
    commands,
    results,
    telemetry_queue=None,
) -> None:
    """Entry point of one shard process.

    Attaches the wire plane, rebuilds the shard's workers, announces
    itself with ``("join", shard_id, pid)``, then serves rounds until a
    ``("stop",)`` command.  Any exception is reported as ``("error",
    shard_id, message)`` so the chief can depart the shard instead of
    timing out on it.  The plane attachment is closed on every exit
    path; the shard never unlinks the segment (the chief owns it).

    ``telemetry_queue`` (chief-created, one per run) enables the
    shard's telemetry source: span/counter events tagged
    ``src="shard:<id>"`` are batched through a
    :class:`~repro.telemetry.sinks.QueueSink` and flushed once per
    round *before* the ``("done", ...)`` reply, so the chief's drain
    after collecting the round usually sees them immediately — and
    always eventually, since per-source ordering is all the merged
    trace requires.  Telemetry never touches the workers' RNG streams.
    """
    telemetry = None
    if telemetry_queue is not None:
        from repro.telemetry import QueueSink, Telemetry

        # A respawned incarnation is a new process with a fresh event
        # counter: it gets its own src so the merged trace's per-source
        # seq ordering (validate_events) still holds after a rejoin.
        src = f"shard:{spec.shard_id}"
        if spec.start_step > 0:
            src = f"{src}.r{spec.start_step}"
        telemetry = Telemetry(sinks=[QueueSink(telemetry_queue)], src=src)
    try:
        with WirePlane.attach(plane_spec) as plane:
            if spec.fail_step == 0:
                _inject_failure(spec)
            workers = spec.build_workers()
            if spec.start_step > 0:
                _fast_forward(spec, workers, plane)
            rows = spec.rows
            if telemetry is not None:
                telemetry.mark(
                    "shard.start", pid=os.getpid(), workers=list(spec.worker_ids)
                )
                telemetry.flush()
            results.put(("join", spec.shard_id, os.getpid()))
            while True:
                command = commands.get()
                if command[0] == "stop":
                    break
                step = command[1]
                if spec.fail_step is not None and step >= spec.fail_step:
                    _inject_failure(spec)
                if telemetry is not None:
                    telemetry.set_step(step)
                    round_started = time.perf_counter_ns()
                # Copy the chief-published parameters out of shared
                # memory: float64 bits survive the round trip untouched.
                parameters = np.array(plane.parameters)
                submitted, clean = compute_cohort(workers, parameters, step)
                losses = _batch_losses(spec.model, parameters, workers)
                for slow_step, factor in spec.slow_steps:
                    if slow_step == step:
                        time.sleep(0.01 * factor)
                if spec.codec is not None:
                    # Same values, same (step, worker) ids as the
                    # in-process path — the codec's per-message streams
                    # make the shard's rows bit-identical to the
                    # chief-side whole-cohort encode.
                    submitted, row_bytes = spec.codec.encode_block(
                        submitted, step, spec.worker_ids
                    )
                    plane.wire_bytes[rows] = row_bytes
                plane.wire[rows] = submitted
                plane.clean[rows] = clean
                plane.losses[rows] = losses
                if telemetry is not None:
                    telemetry.span_ns(
                        "round.cohort", time.perf_counter_ns() - round_started
                    )
                    telemetry.counter("rounds")
                    telemetry.flush()
                results.put(("done", spec.shard_id, step))
            if telemetry is not None:
                telemetry.mark("shard.stop")
                telemetry.flush()
    except KeyboardInterrupt:  # pragma: no cover - chief tears us down
        pass
    except Exception as error:
        if telemetry is not None:
            try:
                telemetry.warning(
                    "shard.error", f"{type(error).__name__}: {error}"
                )
                telemetry.flush()
            except Exception:  # pragma: no cover - queue already torn down
                pass
        try:
            results.put(("error", spec.shard_id, f"{type(error).__name__}: {error}"))
        except Exception:  # pragma: no cover - queue already torn down
            pass


def _fast_forward(spec: WorkerShardSpec, workers, plane: WirePlane) -> None:
    """Replay the seed-stream consumption of rounds ``1..start_step``.

    ``compute_cohort`` draws exactly one batch per worker and one noise
    vector per DP worker per round, independent of any values, so one
    pass per missed round at zero parameters advances every stream to
    where the in-process run left it.  Momentum is then reset: a worker
    absent through the outage accumulated none (the in-process engine
    zeroes its buffers each absent round), and ``None`` buffers restart
    the ``v <- m*v + g`` recursion from the same all-zeros base.
    """
    zeros = np.zeros_like(np.asarray(plane.parameters))
    for step in range(1, spec.start_step + 1):
        compute_cohort(workers, zeros, step)
    for worker in workers:
        worker.reset()


def _batch_losses(model: Model, parameters: np.ndarray, workers) -> np.ndarray:
    """Per-worker losses of the just-sampled batches (pre-update params).

    The stacked twin of the loop's honest-loss instrumentation
    (:func:`repro.pipeline.loop.record_honest_loss`): one
    ``loss_stack`` call over the shard's uniform batches.  Per-row
    stability makes the rows independent of the stack height, so the
    chief-side mean over all shards' rows equals the in-process mean
    bit for bit.
    """
    features = np.stack([worker.last_batch[0] for worker in workers])
    labels = np.stack([worker.last_batch[1] for worker in workers])
    return np.asarray(model.loss_stack(parameters, features, labels), dtype=np.float64)
