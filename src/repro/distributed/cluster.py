"""Synchronous cluster driver.

One :meth:`Cluster.step` is one synchronous round of the paper's
protocol (Fig. 1(b)):

1. every honest worker computes its (clipped, noised) gradient for the
   current parameters;
2. the colluding adversary observes the honest submissions and crafts
   *one* Byzantine gradient, submitted identically by all ``f``
   Byzantine workers (Section 5.1's attack setup);
3. the network delivers the ``n`` messages (dropped ones become zero);
4. the server aggregates with its GAR and updates the parameters.

The cluster also exposes per-round instrumentation (honest clean /
submitted matrices, the crafted vector, the aggregate) that the VN
ratio and resilience analyses consume.

This synchronous driver *is* Section 2.1's system model: "the training
is divided into sequential synchronous steps" and a non-received
gradient is zero.  When the protocol's timing is the object of study —
stragglers, staleness, partial participation — use the discrete-event
engine in :mod:`repro.simulation` instead: its
:class:`~repro.simulation.policies.SyncPolicy` at zero latency replays
this class bit-identically, while its buffered and asynchronous
policies relax the barrier the paper assumes away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.compression.base import GradientCodec
from repro.distributed.network import PerfectNetwork
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker, compute_cohort
from repro.exceptions import ConfigurationError, DegradedRunError
from repro.faults.apply import apply_wire_faults, reset_absent_momentum
from repro.faults.plan import ResolvedFaultPlan
from repro.typing import Matrix, Vector

__all__ = ["Cluster", "StepResult"]


def _emit_round_metrics(telemetry, delivered, aggregated, num_honest: int) -> None:
    """Round counters for an instrumented path (never on the null path).

    GAR-agnostic winner detection: the aggregate is compared against
    the delivered rows; a matching row means the GAR selected that
    worker's gradient verbatim (Krum, MDA, ...).  The Byzantine block
    is ``f`` *identical* rows, so a selected attack gradient matches
    several indices at once — the round counts as Byzantine-selected
    when every matching row sits past the honest block.  Averaging
    GARs match no row and emit no winner — correctly so.
    """
    telemetry.counter("rounds")
    matches = np.flatnonzero((delivered == aggregated).all(axis=1))
    if matches.size:
        byzantine = bool(matches[0] >= num_honest)
        if byzantine or matches[-1] < num_honest:
            telemetry.gauge("gar.winner_index", int(matches[0]))
            telemetry.counter("gar.winner_rounds")
            if byzantine:
                telemetry.counter("gar.byzantine_selected")


@dataclass(frozen=True)
class StepResult:
    """Instrumentation for one synchronous round.

    The matrix payloads are *opt-in*: rounds executed with
    ``record=False`` (the default training path) carry ``None`` for
    ``honest_submitted`` / ``honest_clean`` so the hot loop never
    allocates instrumentation it does not report.  Consumers that need
    the matrices (VN-ratio monitoring, resilience analyses, recorders)
    run with ``record=True`` — the historical default of
    :meth:`Cluster.step` — and see exactly the old payloads.
    """

    step: int
    aggregated: Vector = field(repr=False)
    honest_submitted: Matrix | None = field(repr=False, default=None)
    honest_clean: Matrix | None = field(repr=False, default=None)
    byzantine_gradient: Vector | None = field(repr=False, default=None)
    #: Exact encoded bytes this round's n messages occupied on the wire
    #: (``None`` when the run has no codec).  With a codec,
    #: ``honest_submitted`` holds the *encoded* wire matrix — what the
    #: adversary observed and the server aggregated — while
    #: ``honest_clean`` stays pre-noise, pre-encoding.
    bytes_on_wire: int | None = None

    @property
    def recorded(self) -> bool:
        """Whether this round carried its matrix payloads."""
        return self.honest_submitted is not None

    @property
    def num_honest(self) -> int:
        """Number of honest submissions this round."""
        if self.honest_submitted is None:
            raise ConfigurationError(
                "this round ran with record=False and carries no matrices"
            )
        return int(self.honest_submitted.shape[0])


class Cluster:
    """Wires workers, adversary, network and server into rounds."""

    def __init__(
        self,
        server: ParameterServer,
        honest_workers: Sequence[HonestWorker],
        num_byzantine: int = 0,
        attack: ByzantineAttack | None = None,
        attack_rng: np.random.Generator | None = None,
        network: PerfectNetwork | None = None,
        codec: GradientCodec | None = None,
        faults: ResolvedFaultPlan | None = None,
    ):
        honest_workers = list(honest_workers)
        if not honest_workers:
            raise ConfigurationError("need at least one honest worker")
        if num_byzantine < 0:
            raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "num_byzantine > 0 requires an attack (use ZeroGradientAttack "
                "for crash-style Byzantine workers)"
            )
        if attack is not None and attack_rng is None:
            raise ConfigurationError("an attack requires attack_rng")
        total = len(honest_workers) + num_byzantine
        if total != server.gar.n:
            raise ConfigurationError(
                f"server GAR expects n={server.gar.n} workers but the cluster "
                f"has {len(honest_workers)} honest + {num_byzantine} Byzantine = {total}"
            )
        if num_byzantine > server.gar.f:
            raise ConfigurationError(
                f"cluster has {num_byzantine} Byzantine workers but the GAR "
                f"only tolerates f={server.gar.f}"
            )
        self._server = server
        self._honest_workers = honest_workers
        self._num_byzantine = int(num_byzantine)
        self._attack = attack
        self._attack_rng = attack_rng
        self._network = network if network is not None else PerfectNetwork()
        self._codec = codec
        if faults is not None and faults.num_honest != len(honest_workers):
            raise ConfigurationError(
                f"fault plan resolved for {faults.num_honest} honest workers "
                f"but the cluster has {len(honest_workers)}"
            )
        # Fault plans target only honest workers; the Byzantine block is
        # adversary-controlled and out of the fault plane's scope.
        self._faults = faults
        self._bytes_on_wire_total = 0
        self._step = 0
        self._engine = None
        # Null telemetry by default: the hot path pays exactly one
        # attribute load + `is None` test per round (pinned by
        # tests/test_telemetry_integration.py's off-path guard).
        self._telemetry = None

    @property
    def server(self) -> ParameterServer:
        """The parameter server."""
        return self._server

    @property
    def honest_workers(self) -> list[HonestWorker]:
        """The honest workers (a copy of the list)."""
        return list(self._honest_workers)

    @property
    def parameters(self) -> Vector:
        """Current model parameters held by the server."""
        return self._server.parameters

    @property
    def n(self) -> int:
        """Total workers (honest + Byzantine)."""
        return len(self._honest_workers) + self._num_byzantine

    @property
    def num_honest(self) -> int:
        """Number of honest workers."""
        return len(self._honest_workers)

    @property
    def num_byzantine(self) -> int:
        """Number of Byzantine workers actually attacking."""
        return self._num_byzantine

    @property
    def step_count(self) -> int:
        """Rounds completed so far."""
        return self._step

    @property
    def codec(self) -> GradientCodec | None:
        """The wire codec encoding submissions (or ``None``)."""
        return self._codec

    @property
    def bytes_on_wire_total(self) -> int:
        """Cumulative encoded bytes across all rounds (0 without a codec)."""
        return self._bytes_on_wire_total

    def _encode_honest(self, honest_submitted: Matrix) -> tuple[Matrix, np.ndarray]:
        """Encode the honest block under worker ids ``0..H-1``.

        Returns the encoded matrix and *per-row* byte counts: under a
        fault plan, rows of absent workers never reached the wire, so
        their bytes are zeroed before the round total is summed —
        matching the multiprocess chief, which zeroes the dead shards'
        ``wire_bytes`` rows.
        """
        return self._codec.encode_block(
            honest_submitted, self._step, range(len(self._honest_workers))
        )

    def _encode_byzantine(self, byzantine_block: Matrix) -> tuple[Matrix, int]:
        """Encode the Byzantine copies under worker ids ``H..n-1``.

        Each of the ``f`` identical submissions is encoded as its own
        message — stochastic codecs give every copy its own stream, so
        the server may receive *distinct* quantizations of one crafted
        gradient, exactly as on a real wire.
        """
        num_honest = len(self._honest_workers)
        encoded, row_bytes = self._codec.encode_block(
            byzantine_block,
            self._step,
            range(num_honest, num_honest + self._num_byzantine),
        )
        return encoded, int(row_bytes.sum())

    @property
    def faults(self) -> ResolvedFaultPlan | None:
        """The resolved fault plan driving this cluster (or ``None``)."""
        return self._faults

    def _apply_faults(
        self, submitted, clean, row_bytes=None, telemetry=None
    ) -> tuple[int, ...]:
        """Apply this round's scheduled faults, in place.

        Zeroes absent/dropped rows, scales corrupted rows, clears the
        momentum of absent workers, and zeroes absent rows' wire bytes
        (a dead worker sent nothing).  Publishes ``last_live_workers``
        so the loop excludes absent workers from the honest loss mean —
        the exact rows the multiprocess chief drops from the plane's
        loss vector.  Raises :class:`DegradedRunError` when the plan
        leaves no honest worker live.
        """
        resolved = self._faults
        live = resolved.live_workers(self._step)
        if not live:
            raise DegradedRunError(
                f"round {self._step}: every honest worker has departed under "
                "the fault plan; refusing to aggregate attack-only submissions"
            )
        zeroed, corrupted = apply_wire_faults(resolved, self._step, submitted, clean)
        absent = reset_absent_momentum(resolved, self._step, self._honest_workers)
        if row_bytes is not None:
            for worker in sorted(absent):
                row_bytes[worker] = 0
        self.last_live_workers = live
        if telemetry is not None and (zeroed or corrupted):
            telemetry.counter(
                "fault.injected",
                len(zeroed) + len(corrupted),
                zeroed=sorted(zeroed),
                corrupted=sorted(corrupted),
            )
        return live

    @property
    def engine(self):
        """This cluster's fused :class:`repro.distributed.engine.RoundEngine`.

        Built lazily and cached; the engine executes blocks of rounds
        bit-identically to :meth:`step` (see its module docstring for
        eligibility and the fallback contract).
        """
        if self._engine is None:
            from repro.distributed.engine import RoundEngine

            self._engine = RoundEngine(self)
        return self._engine

    @property
    def telemetry(self):
        """The installed :class:`repro.telemetry.Telemetry` handle (or None)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, handle) -> None:
        self._telemetry = handle

    def step(self, record: bool = True) -> StepResult:
        """Run one synchronous round and return its instrumentation.

        ``record=False`` omits the honest matrix payloads from the
        result (the round itself is unchanged); loops whose callbacks
        never read them use it to skip the retained allocations.
        """
        if self._telemetry is not None:
            return self._instrumented_step(record)
        self._step += 1
        parameters = self._server.parameters

        # The whole honest cohort in stacked matrix ops (vectorized
        # gradient + clip + momentum; per-worker RNG streams preserved).
        honest_submitted, honest_clean = compute_cohort(
            self._honest_workers, parameters, self._step
        )

        honest_row_bytes: np.ndarray | None = None
        if self._codec is not None:
            # The adversary observes what actually crossed the wire, so
            # encoding happens before the attack crafts its gradient.
            honest_submitted, honest_row_bytes = self._encode_honest(honest_submitted)

        if self._faults is not None:
            # Faults land after the codec and before the attack: the
            # adversary observes exactly what survived the wire.
            self._apply_faults(honest_submitted, honest_clean, honest_row_bytes)

        bytes_on_wire: int | None = None
        if honest_row_bytes is not None:
            bytes_on_wire = int(honest_row_bytes.sum())

        byzantine_gradient: Vector | None = None
        if self._num_byzantine > 0:
            assert self._attack is not None and self._attack_rng is not None
            context = AttackContext(
                step=self._step,
                honest_submitted=honest_submitted,
                honest_clean=honest_clean,
                parameters=parameters,
                num_byzantine=self._num_byzantine,
                rng=self._attack_rng,
            )
            byzantine_gradient = np.asarray(
                self._attack.craft(context), dtype=np.float64
            )
            if byzantine_gradient.shape != parameters.shape:
                raise ConfigurationError(
                    f"attack produced shape {byzantine_gradient.shape}, "
                    f"expected {parameters.shape}"
                )
            byzantine_block = np.tile(byzantine_gradient, (self._num_byzantine, 1))
            if self._codec is not None:
                byzantine_block, byzantine_bytes = self._encode_byzantine(
                    byzantine_block
                )
                bytes_on_wire += byzantine_bytes
            all_gradients = np.vstack([honest_submitted, byzantine_block])
        else:
            all_gradients = honest_submitted

        delivered = self._network.deliver(all_gradients, self._step)
        aggregated = self._server.step(delivered)
        if bytes_on_wire is not None:
            self._bytes_on_wire_total += bytes_on_wire
        return StepResult(
            step=self._step,
            aggregated=aggregated,
            honest_submitted=honest_submitted if record else None,
            honest_clean=honest_clean if record else None,
            byzantine_gradient=byzantine_gradient,
            bytes_on_wire=bytes_on_wire,
        )

    def _instrumented_step(self, record: bool = True) -> StepResult:
        """:meth:`step` with telemetry spans — a deliberate duplicate.

        The null path must stay free of span plumbing (no wrapper
        callables, no per-phase branches), so this twin mirrors
        :meth:`step`'s body exactly and adds the observation points.
        Any behavioural change to :meth:`step` must be made here too;
        the differential and golden-trace tests pin the equivalence.
        Telemetry only *observes* — no RNG stream is ever touched.
        """
        telemetry = self._telemetry
        self._step += 1
        telemetry.set_step(self._step)
        parameters = self._server.parameters

        started = time.perf_counter_ns()
        honest_submitted, honest_clean = compute_cohort(
            self._honest_workers, parameters, self._step
        )
        telemetry.span_ns("round.cohort", time.perf_counter_ns() - started)

        honest_row_bytes: np.ndarray | None = None
        if self._codec is not None:
            started = time.perf_counter_ns()
            honest_submitted, honest_row_bytes = self._encode_honest(honest_submitted)
            telemetry.span_ns("round.codec", time.perf_counter_ns() - started)

        if self._faults is not None:
            self._apply_faults(
                honest_submitted, honest_clean, honest_row_bytes, telemetry
            )

        bytes_on_wire: int | None = None
        if honest_row_bytes is not None:
            bytes_on_wire = int(honest_row_bytes.sum())

        byzantine_gradient: Vector | None = None
        if self._num_byzantine > 0:
            assert self._attack is not None and self._attack_rng is not None
            started = time.perf_counter_ns()
            context = AttackContext(
                step=self._step,
                honest_submitted=honest_submitted,
                honest_clean=honest_clean,
                parameters=parameters,
                num_byzantine=self._num_byzantine,
                rng=self._attack_rng,
            )
            byzantine_gradient = np.asarray(
                self._attack.craft(context), dtype=np.float64
            )
            if byzantine_gradient.shape != parameters.shape:
                raise ConfigurationError(
                    f"attack produced shape {byzantine_gradient.shape}, "
                    f"expected {parameters.shape}"
                )
            byzantine_block = np.tile(byzantine_gradient, (self._num_byzantine, 1))
            if self._codec is not None:
                byzantine_block, byzantine_bytes = self._encode_byzantine(
                    byzantine_block
                )
                bytes_on_wire += byzantine_bytes
            all_gradients = np.vstack([honest_submitted, byzantine_block])
            telemetry.span_ns("round.attack", time.perf_counter_ns() - started)
        else:
            all_gradients = honest_submitted

        dropped_before = getattr(self._network, "dropped_total", None)
        started = time.perf_counter_ns()
        delivered = self._network.deliver(all_gradients, self._step)
        telemetry.span_ns("round.network", time.perf_counter_ns() - started)
        if dropped_before is not None:
            dropped = self._network.dropped_total - dropped_before
            if dropped:
                telemetry.counter("network.dropped", dropped)

        started = time.perf_counter_ns()
        aggregated = self._server.step(delivered)
        telemetry.span_ns("round.server", time.perf_counter_ns() - started)
        _emit_round_metrics(telemetry, delivered, aggregated, len(self._honest_workers))
        if bytes_on_wire is not None:
            self._bytes_on_wire_total += bytes_on_wire
            telemetry.counter("wire.bytes", bytes_on_wire)
        return StepResult(
            step=self._step,
            aggregated=aggregated,
            honest_submitted=honest_submitted if record else None,
            honest_clean=honest_clean if record else None,
            byzantine_gradient=byzantine_gradient,
            bytes_on_wire=bytes_on_wire,
        )

    def run(self, num_steps: int) -> StepResult:
        """Run ``num_steps`` rounds; returns the last round's result."""
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        result: StepResult | None = None
        for _ in range(num_steps):
            result = self.step()
        assert result is not None
        return result
