"""The fused round engine: blocks of synchronous rounds, allocation-free.

The paper's experiments are thousands of *short* rounds (n ~ 25
workers, d ~ 100 parameters), a regime where wall-clock is dominated by
per-round Python and allocator overhead rather than FLOPs.
:class:`RoundEngine` executes the synchronous protocol of
:class:`repro.distributed.cluster.Cluster` in fused blocks of ``R``
rounds that remove that overhead without changing a single output bit:

* **blockwise RNG pre-draw** — each worker's batch indices
  (:meth:`repro.data.batching.BatchSampler.sample_index_block`) and DP
  noise (:meth:`repro.privacy.mechanisms.NoiseMechanism.sample_noise_block`)
  for the whole block are drawn up front.  This is sound because every
  worker owns private generator streams and NumPy ``Generator`` draws
  are consumed value-by-value, so a block draw reads the identical
  stream as the per-round draws (pinned by hypothesis properties and
  the golden traces);
* **preallocated round buffers** — one ``(n, d)`` wire matrix, one
  ``(W, b, p)`` batch gather target and persistent ``(W, d)`` momentum
  stacks are reused across every round of the run;
* **single-pass forward/backward** — the honest-batch training loss and
  the cohort gradients come from one
  :meth:`repro.models.base.Model.loss_and_gradient_stack` call;
* **in-place server updates** — the optimizer writes the parameter
  buffer through :meth:`repro.optim.sgd.SGDOptimizer.step`'s ``out=``
  path, and the loop reads :attr:`ParameterServer.parameters_view`
  instead of per-round defensive copies;
* **opt-in instrumentation** — :class:`StepResult` matrix payloads are
  produced only under ``record=True``; the default training path copies
  nothing it does not report.

Every elementary float operation happens in the same order as the
per-round path, so fused execution is *bit-identical* to
``Cluster.step`` — the golden-trace suite replays the committed traces
through the engine unmodified.  Configurations the fused pipeline does
not cover (per-example clipping, custom worker/sampler/mechanism
subclasses, heterogeneous cohorts) simply report
``supports_fused == False`` and the caller steps per round; correctness
never depends on the fast path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.attacks.base import AttackContext
from repro.data.batching import BatchSampler
from repro.distributed.cluster import Cluster, StepResult
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.optim.sgd import SGDOptimizer
from repro.privacy.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    NoiseMechanism,
)

__all__ = ["RoundEngine", "default_block_rounds"]

#: Target footprint of one block's pre-drawn RNG buffers (noise and
#: batch indices).  Blocks are sized so the pre-draw stays cache-warm
#: instead of ballooning on large-d configurations.
_BLOCK_BYTES = 8 << 20

#: Hard cap on rounds per block; past this the amortisation is flat.
_MAX_BLOCK_ROUNDS = 256


class _PhaseLap:
    """Accumulating per-phase lap timer for the instrumented block path.

    One instance per round (allocated only when telemetry is on);
    ``mark(name)`` charges the time since the previous mark to that
    phase's running total.  The engine emits one span per phase per
    *block*, so telemetry adds O(phases) events per block rather than
    per round — this is what keeps the enabled-path overhead inside the
    bench guard's 3% budget.
    """

    __slots__ = ("acc", "t")

    def __init__(self, acc: dict):
        self.acc = acc
        self.t = time.perf_counter_ns()

    def mark(self, name: str) -> None:
        now = time.perf_counter_ns()
        self.acc[name] = self.acc.get(name, 0) + (now - self.t)
        self.t = now


def default_block_rounds(
    num_workers: int, dimension: int, batch_size: int, num_noised: int
) -> int:
    """Rounds per fused block for a cohort of the given shape."""
    per_round = 8 * (num_noised * dimension + num_workers * batch_size)
    return int(np.clip(_BLOCK_BYTES // max(per_round, 1), 1, _MAX_BLOCK_ROUNDS))


class RoundEngine:
    """Fused executor for a :class:`~repro.distributed.cluster.Cluster`.

    Built lazily by :attr:`Cluster.engine`; holds the preallocated
    buffers and the cohort's static configuration.  :meth:`run`
    executes fused blocks; eligibility is a pure function of the
    cluster's configuration, exposed as :attr:`supports_fused` /
    :attr:`fused_unsupported_reason`.
    """

    def __init__(self, cluster):
        self._cluster = cluster
        self._workers = list(cluster._honest_workers)
        self._server = cluster._server
        self._network = cluster._network
        self._attack = cluster._attack
        self._attack_rng = cluster._attack_rng
        self._num_byzantine = cluster._num_byzantine
        self._codec = cluster._codec
        self._reason = self._probe()
        self._buffers_ready = False

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------

    def _probe(self) -> str | None:
        """Why the fused path cannot run, or ``None`` when it can."""
        if getattr(self._cluster, "_faults", None) is not None:
            # Fault plans zero rows and momentum per round; the fused
            # block pipeline has no per-round injection point.
            return "a fault plan is active (faults apply per round)"
        workers = self._workers
        for worker in workers:
            cls = type(worker)
            if cls.compute is not HonestWorker.compute or cls._finish is not HonestWorker._finish:
                return f"worker subclass {cls.__name__} overrides the pipeline"
            sampler = worker._sampler
            if not isinstance(sampler, BatchSampler) or (
                type(sampler).sample is not BatchSampler.sample
                or type(sampler).sample_indices is not BatchSampler.sample_indices
            ):
                return f"sampler {type(sampler).__name__} overrides sampling"
            mechanism = worker._mechanism
            if mechanism is not None:
                if not isinstance(mechanism, NoiseMechanism) or (
                    type(mechanism).privatize is not NoiseMechanism.privatize
                ):
                    return f"mechanism {type(mechanism).__name__} overrides privatize"
                reason = self._probe_mechanism(mechanism)
                if reason is not None:
                    return reason
            if worker._clip_mode != "batch":
                return "per-example clipping is not fused"
        # The blockwise pre-draw consumes each stream in one run, which
        # only reproduces the per-round interleaving when every consumed
        # stream is private.  A bit generator shared between any two
        # consumed roles (sampler/noise/attack, same worker or across
        # workers — even via distinct Generator wrappers) would be read
        # in a different order, so such cohorts step per round.
        # Never-consumed streams (the noise rng of a worker without a
        # mechanism) are exempt on both paths.
        consumed = [worker._sampler._rng for worker in workers]
        consumed += [
            worker._noise_rng for worker in workers if worker._mechanism is not None
        ]
        if self._attack_rng is not None:
            consumed.append(self._attack_rng)
        streams = {id(generator.bit_generator) for generator in consumed}
        if len(streams) != len(consumed):
            return "workers share RNG streams"
        if type(self._cluster).step is not Cluster.step:
            return f"cluster {type(self._cluster).__name__} overrides step"
        model = workers[0]._model
        if any(w._model is not model for w in workers):
            return "heterogeneous cohort models"
        reason = self._probe_model(model)
        if reason is not None:
            return reason
        # The in-place update path goes through ParameterServer.step's
        # in_place= branch and SGDOptimizer.step's out= branch; a
        # subclass overriding either would be bypassed (or silently
        # ignore out=), so such servers step per round.
        server = self._server
        if type(server).step is not ParameterServer.step:
            return f"server {type(server).__name__} overrides step"
        if type(server._optimizer).step is not SGDOptimizer.step:
            return (
                f"optimizer {type(server._optimizer).__name__} overrides step"
            )
        batch_size = workers[0]._sampler.batch_size
        if any(w._sampler.batch_size != batch_size for w in workers):
            return "heterogeneous batch sizes"
        first = workers[0]._sampler.dataset
        feature_shape = first.features.shape[1:]
        label_shape = first.labels.shape[1:]
        for worker in workers:
            dataset = worker._sampler.dataset
            if (
                dataset.features.shape[1:] != feature_shape
                or dataset.labels.shape[1:] != label_shape
                or dataset.features.dtype != first.features.dtype
                or dataset.labels.dtype != first.labels.dtype
            ):
                return "heterogeneous dataset shapes"
        return None

    @staticmethod
    def _probe_mechanism(mechanism) -> str | None:
        """Reject mechanisms whose inherited vectorized block draw would
        bypass an overridden ``sample_noise``.

        The generic :meth:`NoiseMechanism.sample_noise_block` performs
        the sequential draws itself, so it honours any ``sample_noise``
        override; the Gaussian/Laplace vectorized blocks are only
        equivalent to *their own* ``sample_noise``.  A subclass that
        overrides ``sample_noise_block`` itself owns the equivalence
        contract (documented on the method) and is accepted.
        """
        cls = type(mechanism)
        for family in (GaussianMechanism, LaplaceMechanism):
            if (
                cls.sample_noise_block is family.sample_noise_block
                and cls.sample_noise is not family.sample_noise
            ):
                return (
                    f"mechanism {cls.__name__} overrides sample_noise but "
                    "inherits the vectorized block draw"
                )
        return None

    @staticmethod
    def _probe_model(model) -> str | None:
        """Reject models whose inherited single-pass stack would bypass
        overridden ``gradient_stack`` / ``loss_stack`` methods.

        The base :meth:`Model.loss_and_gradient_stack` delegates to
        ``self.loss_stack`` / ``self.gradient_stack``, so it honours any
        override.  A model that inherits a *single-pass* implementation
        (linear, logistic) while overriding the two-pass methods — or
        the augmentation hooks the fused path substitutes — would train
        with the parent's formulas on the fused path only; those cohorts
        step per round instead.
        """

        def defining_class(name):
            for klass in type(model).__mro__:
                if name in vars(klass):
                    return klass
            return None

        owner = defining_class("loss_and_gradient_stack")
        if owner is Model:
            return None  # delegating implementation: overrides are honoured
        checked = ["gradient_stack", "loss_stack"]
        if model.supports_augmented_stack:
            checked += ["augment_features", "_augment_stack"]
        for name in checked:
            if defining_class(name) is not owner:
                return (
                    f"model {type(model).__name__} overrides {name} but "
                    f"inherits {owner.__name__}.loss_and_gradient_stack"
                )
        return None

    @property
    def supports_fused(self) -> bool:
        """Whether :meth:`run` may execute this cohort."""
        return self._reason is None

    @property
    def fused_unsupported_reason(self) -> str | None:
        """Human-readable reason the fused path is unavailable."""
        return self._reason

    @property
    def cohort_model(self) -> Model:
        """The model the cohort computes (and the engine records) with."""
        return self._workers[0]._model

    # ------------------------------------------------------------------
    # buffers
    # ------------------------------------------------------------------

    def _ensure_buffers(self) -> None:
        if self._buffers_ready:
            return
        workers = self._workers
        num_honest = len(workers)
        dimension = int(self._server.parameters_view.shape[0])
        batch_size = workers[0]._sampler.batch_size
        first = workers[0]._sampler.dataset
        n = num_honest + self._num_byzantine

        self._dimension = dimension
        self._batch_size = batch_size
        self._model = workers[0]._model
        self._all_gradients = np.zeros((n, dimension), dtype=np.float64)
        # Shared-dataset cohorts (the paper's "shared" distribution)
        # gather all workers' batches with one indexed take.  The take
        # runs with ``mode='clip'`` into preallocated buffers: sampler
        # indices are always in range, so clipping is value-identical,
        # and it selects take's unbuffered fast path (the default
        # ``mode='raise'`` with ``out=`` is ~3x slower) while keeping
        # the gather target cache-warm across rounds.
        self._shared_dataset = (
            first
            if all(w._sampler.dataset is first for w in workers)
            else None
        )
        # Linear-family models: append the bias column to each dataset
        # once, so no round re-concatenates it (the gathered rows are
        # bit-identical to augmenting the gathered raw rows).
        self._augmented = bool(self._model.supports_augmented_stack)
        if self._augmented:
            caches: dict[int, np.ndarray] = {}
            self._feature_sources = []
            for worker in workers:
                dataset = worker._sampler.dataset
                key = id(dataset)
                if key not in caches:
                    caches[key] = self._model.augment_features(dataset.features)
                self._feature_sources.append(caches[key])
            self._raw_feature_width = int(first.features.shape[1])
        else:
            self._feature_sources = [w._sampler.dataset.features for w in workers]
            self._raw_feature_width = None
        self._label_sources = [w._sampler.dataset.labels for w in workers]
        self._features_buf = np.empty(
            (num_honest, batch_size) + self._feature_sources[0].shape[1:],
            dtype=self._feature_sources[0].dtype,
        )
        self._labels_buf = np.empty(
            (num_honest, batch_size) + first.labels.shape[1:],
            dtype=first.labels.dtype,
        )
        self._have_batches = False
        self._g_max = np.array(
            [np.inf if w._g_max is None else w._g_max for w in workers]
        )
        self._momenta = np.array([w._momentum for w in workers])
        self._momentum_mask = self._momenta > 0.0
        self._any_momentum = bool(self._momentum_mask.any())
        self._all_momentum = bool(self._momentum_mask.all())
        self._noised_indices = [
            index for index, w in enumerate(workers) if w._mechanism is not None
        ]
        self._all_noised = len(self._noised_indices) == num_honest
        self._any_noised = bool(self._noised_indices)
        if self._any_momentum:
            self._velocity_submitted = np.zeros((num_honest, dimension))
            self._velocity_clean = np.zeros((num_honest, dimension))
            self._momenta_col = self._momenta[:, None]
        self._buffers_ready = True

    def _import_velocities(self) -> None:
        """Load the workers' live momentum buffers into the stacks."""
        for index, worker in enumerate(self._workers):
            if not self._momentum_mask[index]:
                continue
            if worker._velocity_submitted is None:
                self._velocity_submitted[index] = 0.0
                self._velocity_clean[index] = 0.0
            else:
                self._velocity_submitted[index] = worker._velocity_submitted
                self._velocity_clean[index] = worker._velocity_clean

    def _export_state(self) -> None:
        """Write engine-held per-worker state back onto the workers."""
        for index, worker in enumerate(self._workers):
            if self._any_momentum and self._momentum_mask[index]:
                worker._velocity_submitted = self._velocity_submitted[index].copy()
                worker._velocity_clean = self._velocity_clean[index].copy()
            if self._have_batches:
                # The gather buffers are reused next round, so the
                # workers get copies; on the augmented path the bias
                # column is sliced back off.
                features = self._features_buf[index]
                if self._augmented:
                    features = features[:, : self._raw_feature_width]
                worker._last_batch = (
                    features.copy(),
                    self._labels_buf[index].copy(),
                )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        num_rounds: int,
        *,
        model: Model | None = None,
        history: TrainingHistory | None = None,
        record: bool = False,
        block_size: int | None = None,
    ):
        """Execute ``num_rounds`` fused rounds; returns the last round's
        :class:`~repro.distributed.cluster.StepResult`.

        ``history`` enables per-round honest-batch loss recording (the
        same quantity, bit for bit, that
        :func:`repro.pipeline.loop.record_honest_loss` records on the
        per-round path).  The loss always comes from the cohort's own
        shared forward pass, so a ``model`` argument, when given, must
        be :attr:`cohort_model` — a different probe model would record
        a different loss than the caller asked for, which the engine
        refuses rather than silently substituting.  ``record=True``
        attaches copied
        ``honest_submitted`` / ``honest_clean`` matrices to the returned
        result; the default allocates no instrumentation.

        Worker-visible state (momentum buffers, ``last_batch``) is
        synchronised at the end of the run — and on divergence — so a
        fused run leaves the cluster exactly where the per-round path
        would have.
        """
        if self._reason is not None:
            raise ConfigurationError(
                f"fused execution unavailable: {self._reason}"
            )
        if num_rounds < 1:
            raise ConfigurationError(f"num_rounds must be >= 1, got {num_rounds}")
        if block_size is not None and block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        if model is not None and model is not self.cohort_model:
            raise ConfigurationError(
                "the fused engine records loss with the cohort's own model; "
                "pass model=None or the workers' model"
            )
        self._ensure_buffers()
        workers = self._workers
        # The fused path shares the cluster's telemetry handle; when it
        # is None (the default) every observation point below folds to a
        # single `is not None` test.
        telemetry = self._cluster._telemetry
        phase_acc: dict | None = {} if telemetry is not None else None
        if block_size is None:
            block_size = default_block_rounds(
                len(workers),
                self._dimension,
                self._batch_size,
                len(self._noised_indices),
            )
        if self._any_momentum:
            self._import_velocities()
        index_blocks = [None] * len(workers)
        noise_blocks = [None] * len(workers)
        result = None
        remaining = int(num_rounds)
        self._rounds_executed = 0
        # Loss recording is deferred per block: each round parks its
        # (W,) cohort losses and the whole block's means are computed
        # with one axis reduction — bit-identical to the per-round
        # ``float(np.mean(...))`` (same pairwise summation per
        # contiguous row), pinned by the property suite.
        pending_losses: list[tuple[int, np.ndarray]] = []

        def flush_losses() -> None:
            if not pending_losses:
                return
            means = np.stack([losses for _, losses in pending_losses]).mean(axis=1)
            for (step, _), mean in zip(pending_losses, means):
                history.record_loss(step, float(mean))
            pending_losses.clear()

        try:
            while remaining > 0:
                rounds = min(remaining, block_size)
                if telemetry is not None:
                    self._clip_hits = 0
                    self._winner_rounds = 0
                    self._byzantine_rounds = 0
                    self._dropped_before = getattr(
                        self._network, "dropped_total", None
                    )
                    self._wire_bytes_before = self._cluster._bytes_on_wire_total
                    predraw_started = time.perf_counter_ns()
                # Blockwise pre-draw: every worker's private streams are
                # consumed exactly as the per-round path would, just all
                # at once (see module docstring).
                for index, worker in enumerate(workers):
                    index_blocks[index] = worker._sampler.sample_index_block(rounds)
                    if worker._mechanism is not None:
                        noise_blocks[index] = worker._mechanism.sample_noise_block(
                            rounds, self._dimension, worker._noise_rng
                        )
                if self._shared_dataset is not None:
                    # (R, W, b): round r's whole-cohort gather is one
                    # fancy index with block_indices[r].
                    block_indices = np.stack(index_blocks, axis=1)
                else:
                    block_indices = None
                if self._all_noised:
                    # (R, W, d): round r's cohort noise is one slice, so
                    # the round loop adds it with a single ufunc call.
                    noise_stack = np.stack(noise_blocks, axis=1)
                else:
                    noise_stack = None
                if phase_acc is not None:
                    # The block pre-draw IS the round's sampling/noise
                    # RNG work, amortised: charge it to its own phase.
                    phase_acc["round.predraw"] = phase_acc.get(
                        "round.predraw", 0
                    ) + (time.perf_counter_ns() - predraw_started)
                for r in range(rounds):
                    is_last = remaining == rounds and r == rounds - 1
                    round_result = self._fused_round(
                        index_blocks,
                        block_indices,
                        noise_blocks,
                        noise_stack,
                        r,
                        pending_losses if history is not None else None,
                        record=record,
                        build_result=is_last,
                        phase_acc=phase_acc,
                    )
                    if round_result is not None:
                        result = round_result
                flush_losses()
                if telemetry is not None:
                    self._emit_block_telemetry(telemetry, rounds, phase_acc)
                remaining -= rounds
        finally:
            # Divergence can abort mid-block; worker-visible state and
            # the recorded losses are synchronised for exactly the
            # rounds that did run (matching the per-round path, which
            # never records the diverging round's loss).
            flush_losses()
            if self._rounds_executed > 0:
                self._export_state()
        return result

    def _emit_block_telemetry(self, telemetry, rounds: int, phase_acc: dict) -> None:
        """Flush one block's accumulated phases and counters as events.

        One span per phase per block (tagged with the rounds it
        covers), plus the counters the block accumulated inline.
        Emission happens *between* blocks, never inside the round loop.
        """
        telemetry.set_step(self._cluster._step)
        for name in sorted(phase_acc):
            telemetry.span_ns(name, phase_acc[name], rounds=rounds)
        phase_acc.clear()
        telemetry.counter("rounds", rounds)
        if self._clip_hits:
            telemetry.counter("clip.activations", self._clip_hits)
        if self._winner_rounds:
            telemetry.counter("gar.winner_rounds", self._winner_rounds)
        if self._byzantine_rounds:
            telemetry.counter("gar.byzantine_selected", self._byzantine_rounds)
        if self._dropped_before is not None:
            dropped = self._network.dropped_total - self._dropped_before
            if dropped:
                telemetry.counter("network.dropped", dropped)
        wire_bytes = self._cluster._bytes_on_wire_total - self._wire_bytes_before
        if wire_bytes:
            telemetry.counter("wire.bytes", wire_bytes)

    def _fused_round(
        self,
        index_blocks,
        block_indices,
        noise_blocks,
        noise_stack,
        r: int,
        pending_losses: list | None,
        record: bool,
        build_result: bool,
        phase_acc: dict | None = None,
    ):
        cluster = self._cluster
        workers = self._workers
        server = self._server
        num_honest = len(workers)
        cluster._step += 1
        self._rounds_executed += 1
        step = cluster._step
        parameters = server.parameters_view
        lap = _PhaseLap(phase_acc) if phase_acc is not None else None

        # Batch gather into the warm preallocated buffers: one indexed
        # take for the whole cohort on shared data, per-worker takes on
        # sharded data.  Sources carry the pre-appended bias column
        # when the model supports it; ``mode='clip'`` is exact for the
        # always-in-range sampler indices (see ``_ensure_buffers``).
        features = self._features_buf
        labels = self._labels_buf
        if block_indices is not None:
            round_indices = block_indices[r]
            np.take(
                self._feature_sources[0], round_indices, axis=0,
                out=features, mode="clip",
            )
            np.take(
                self._label_sources[0], round_indices, axis=0,
                out=labels, mode="clip",
            )
        else:
            for index in range(num_honest):
                np.take(
                    self._feature_sources[index], index_blocks[index][r], axis=0,
                    out=features[index], mode="clip",
                )
                np.take(
                    self._label_sources[index], index_blocks[index][r], axis=0,
                    out=labels[index], mode="clip",
                )
        self._have_batches = True
        if lap is not None:
            lap.mark("round.sample")

        # Forward/backward: one shared pass for the round's loss and
        # cohort gradients.
        if self._augmented:
            losses, gradients = self._model.loss_and_gradient_stack(
                parameters, features, labels, augmented=True
            )
        else:
            losses, gradients = self._model.loss_and_gradient_stack(
                parameters, features, labels
            )
        clean = np.asarray(gradients, dtype=np.float64)

        # Batched clip — the identical operations compute_cohort runs.
        norms = np.sqrt(np.einsum("wd,wd->w", clean, clean))
        exceeds = norms > self._g_max
        if exceeds.any():
            clean[exceeds] *= (self._g_max[exceeds] / norms[exceeds])[:, None]
            if lap is not None:
                self._clip_hits += int(np.count_nonzero(exceeds))
        if lap is not None:
            lap.mark("round.cohort")

        # DP noise from the pre-drawn block, written straight into the
        # wire matrix (rows without a mechanism carry the clean row).
        submitted = self._all_gradients[:num_honest]
        if noise_stack is not None:
            np.add(clean, noise_stack[r], out=submitted)
        else:
            submitted[:] = clean
            for index in self._noised_indices:
                np.add(clean[index], noise_blocks[index][r], out=submitted[index])
        if lap is not None:
            lap.mark("round.noise")

        # Momentum on the persistent stacks (v <- m v; v <- v + g).
        if self._any_momentum:
            self._velocity_submitted *= self._momenta_col
            self._velocity_submitted += submitted
            self._velocity_clean *= self._momenta_col
            self._velocity_clean += clean
            if self._all_momentum:
                submitted[:] = self._velocity_submitted
                clean[:] = self._velocity_clean
            else:
                mask = self._momentum_mask
                submitted[mask] = self._velocity_submitted[mask]
                clean[mask] = self._velocity_clean[mask]
            if lap is not None:
                lap.mark("round.momentum")

        # Wire codec: encode the honest block in place (identity's
        # block fast path returns the same object, so the no-codec and
        # identity rounds execute byte-identical buffer operations).
        round_bytes = None
        if self._codec is not None:
            encoded, row_bytes = self._codec.encode_block(
                submitted, step, range(num_honest)
            )
            if encoded is not submitted:
                submitted[:] = encoded
            round_bytes = int(row_bytes.sum())
            if lap is not None:
                lap.mark("round.codec")

        byzantine_gradient = None
        if self._num_byzantine > 0:
            # The context gets fresh per-round copies, exactly like the
            # per-round path: an attack may legally retain its context
            # across rounds (adaptive attacks), and handing it views of
            # the engine's reused buffers would silently rewrite what it
            # retained.  Two (W, d) copies per attacked round is noise
            # next to the craft itself.
            context = AttackContext(
                step=step,
                honest_submitted=submitted.copy(),
                honest_clean=clean.copy(),
                parameters=parameters.copy(),
                num_byzantine=self._num_byzantine,
                rng=self._attack_rng,
            )
            byzantine_gradient = np.asarray(
                self._attack.craft(context), dtype=np.float64
            )
            if byzantine_gradient.shape != parameters.shape:
                raise ConfigurationError(
                    f"attack produced shape {byzantine_gradient.shape}, "
                    f"expected {parameters.shape}"
                )
            self._all_gradients[num_honest:] = byzantine_gradient
            if self._codec is not None:
                byzantine_rows = self._all_gradients[num_honest:]
                encoded, row_bytes = self._codec.encode_block(
                    byzantine_rows,
                    step,
                    range(num_honest, num_honest + self._num_byzantine),
                )
                if encoded is not byzantine_rows:
                    byzantine_rows[:] = encoded
                round_bytes += int(row_bytes.sum())
            if lap is not None:
                lap.mark("round.attack")

        if round_bytes is not None:
            cluster._bytes_on_wire_total += round_bytes

        delivered = self._network.deliver(self._all_gradients, step)
        if lap is not None:
            lap.mark("round.network")
        aggregated = server.step(delivered, in_place=True)
        if lap is not None:
            lap.mark("round.server")
            # Same winner rule as _emit_round_metrics: all-honest or
            # all-Byzantine match sets count, mixed matches don't.
            matches = np.flatnonzero((delivered == aggregated).all(axis=1))
            if matches.size:
                if matches[0] >= num_honest:
                    self._winner_rounds += 1
                    self._byzantine_rounds += 1
                elif matches[-1] < num_honest:
                    self._winner_rounds += 1

        if pending_losses is not None:
            # Parked only after a successful server update, exactly as
            # the per-round path never records a diverging round.
            pending_losses.append((step, losses))

        if not build_result:
            return None
        return StepResult(
            step=step,
            aggregated=aggregated,
            honest_submitted=submitted.copy() if record else None,
            honest_clean=clean.copy() if record else None,
            byzantine_gradient=byzantine_gradient,
            bytes_on_wire=round_bytes,
        )
