"""Simulated lossy network between workers and the server.

Section 2.1: "the training is divided into sequential synchronous
steps, hence the parameter server considers any non-received gradient
to be 0."  The network model drops each worker->server message
independently with a fixed probability and replaces it by the zero
vector, which is both a realism knob and a mild availability attack
(a dropped honest gradient looks exactly like a zero-submitting
Byzantine worker to the GAR).

Drop decisions are *per-message* deterministic: the fate of the
message ``(step, worker)`` is a pure function of the network's root
seed, never of the order in which messages are queried.  This is what
lets the synchronous :class:`repro.distributed.cluster.Cluster` and
the event-driven :mod:`repro.simulation` engine replay the same
scenario with the same drops, even though the former queries a whole
round at once and the latter one arrival at a time.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedTree
from repro.typing import Matrix

__all__ = ["LossyNetwork", "Network", "PerfectNetwork"]


class Network(abc.ABC):
    """The transport contract every network model implements.

    One shared protocol instead of duck typing, so the cluster, the
    fused engine, the simulator and the wire-path codec stage all code
    against the same three members — and a future transport (latency
    models, reordering, per-link loss) slots in by subclassing.  The
    registry-driven conformance test walks every registered ``network``
    component and checks it against this contract.

    * :meth:`deliver` maps one round's stacked submissions (row ``w`` is
      worker ``w``'s message) to what the server receives; a message
      that does not arrive is the zero vector (Section 2.1).
    * :meth:`drops_message` is the per-message verdict, a pure function
      of ``(step, worker)`` and the network's own seed — never of query
      order — so the event-driven simulator asking one arrival at a
      time agrees with :meth:`deliver` zeroing a whole round at once.
    * :attr:`drop_probability` is the marginal per-message drop rate.
    """

    @abc.abstractmethod
    def deliver(self, gradients: Matrix, step: int) -> Matrix:
        """What the server receives for one round's submissions."""

    @abc.abstractmethod
    def drops_message(self, step: int, worker: int) -> bool:
        """Whether the message ``(step, worker)`` is dropped."""

    @property
    @abc.abstractmethod
    def drop_probability(self) -> float:
        """Marginal per-message drop probability."""


class PerfectNetwork(Network):
    """Delivers every gradient unchanged."""

    def deliver(self, gradients: Matrix, step: int) -> Matrix:
        """Return the gradients exactly as submitted."""
        del step
        return gradients

    def drops_message(self, step: int, worker: int) -> bool:
        """The perfect network never drops a message."""
        del step, worker
        return False

    @property
    def drop_probability(self) -> float:
        """Always zero for the perfect network."""
        return 0.0


class LossyNetwork(Network):
    """Drops each message independently with probability ``drop_probability``.

    Parameters
    ----------
    drop_probability:
        Per-message drop probability in ``[0, 1)``.
    rng:
        Legacy seeding surface: a generator whose *first draw* fixes the
        network's root seed.  The generator is consumed exactly once at
        construction, so two networks built from identically-seeded
        generators make identical per-message decisions.
    seed:
        Direct root seed; takes precedence over ``rng``.
    """

    def __init__(
        self,
        drop_probability: float,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        if seed is None:
            if rng is None:
                raise ConfigurationError("LossyNetwork needs rng or seed")
            seed = int(rng.integers(0, 2**63))
        self._drop_probability = float(drop_probability)
        # Per-message streams: the decision for (step, worker) comes from
        # its own SeedTree path, independent of query order.
        self._seeds = SeedTree(int(seed))
        self._dropped_total = 0

    @property
    def drop_probability(self) -> float:
        """Per-message drop probability."""
        return self._drop_probability

    @property
    def dropped_total(self) -> int:
        """Total messages dropped so far."""
        return self._dropped_total

    def _step_uniforms(self, step: int, count: int) -> np.ndarray:
        """The first ``count`` uniforms of step ``step``'s private stream.

        Message ``(step, worker)``'s fate is the ``worker``-th value of
        the per-step stream — a pure function of ``(seed, step, worker)``
        however it is queried — while the whole round costs a single
        generator construction on the synchronous hot path.
        """
        return self._seeds.generator("drop", step).random(count)

    def drops_message(self, step: int, worker: int) -> bool:
        """Whether the message ``(step, worker)`` is dropped.

        Deterministic in ``(root seed, step, worker)``; querying in any
        order — or twice — yields the same verdict, though each ``True``
        query increments :attr:`dropped_total`.
        """
        if self._drop_probability == 0.0:
            return False
        dropped = bool(
            self._step_uniforms(step, worker + 1)[worker] < self._drop_probability
        )
        if dropped:
            self._dropped_total += 1
        return dropped

    def deliver(self, gradients: Matrix, step: int) -> Matrix:
        """Zero out dropped rows; returns a new matrix when anything drops.

        Row ``w`` of ``gradients`` is the message from worker ``w``;
        its fate is exactly :meth:`drops_message` ``(step, w)``.
        """
        if self._drop_probability == 0.0:
            return gradients
        count = gradients.shape[0]
        dropped = self._step_uniforms(step, count) < self._drop_probability
        if not dropped.any():
            return gradients
        self._dropped_total += int(dropped.sum())
        delivered = gradients.copy()
        delivered[dropped] = 0.0
        return delivered
