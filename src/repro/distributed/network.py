"""Simulated lossy network between workers and the server.

Section 2.1: "the training is divided into sequential synchronous
steps, hence the parameter server considers any non-received gradient
to be 0."  The network model drops each worker->server message
independently with a fixed probability and replaces it by the zero
vector, which is both a realism knob and a mild availability attack
(a dropped honest gradient looks exactly like a zero-submitting
Byzantine worker to the GAR).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.typing import Matrix

__all__ = ["LossyNetwork", "PerfectNetwork"]


class PerfectNetwork:
    """Delivers every gradient unchanged."""

    def deliver(self, gradients: Matrix, step: int) -> Matrix:
        """Return the gradients exactly as submitted."""
        del step
        return gradients

    @property
    def drop_probability(self) -> float:
        """Always zero for the perfect network."""
        return 0.0


class LossyNetwork:
    """Drops each message independently with probability ``drop_probability``."""

    def __init__(self, drop_probability: float, rng: np.random.Generator):
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._drop_probability = float(drop_probability)
        self._rng = rng
        self._dropped_total = 0

    @property
    def drop_probability(self) -> float:
        """Per-message drop probability."""
        return self._drop_probability

    @property
    def dropped_total(self) -> int:
        """Total messages dropped so far."""
        return self._dropped_total

    def deliver(self, gradients: Matrix, step: int) -> Matrix:
        """Zero out dropped rows; returns a new matrix when anything drops."""
        del step
        if self._drop_probability == 0.0:
            return gradients
        dropped = self._rng.random(gradients.shape[0]) < self._drop_probability
        count = int(dropped.sum())
        if count == 0:
            return gradients
        self._dropped_total += count
        delivered = gradients.copy()
        delivered[dropped] = 0.0
        return delivered
