"""Distributed substrate: the simulated parameter-server deployment."""

from repro.distributed.cluster import Cluster, StepResult
from repro.distributed.engine import RoundEngine
from repro.distributed.messages import GradientMessage, WorkerSubmission
from repro.distributed.network import LossyNetwork, PerfectNetwork
from repro.distributed.runtime import MultiprocessCluster, WirePlane, WorkerShardSpec
from repro.distributed.server import ParameterServer
from repro.distributed.trainer import PrivacyReport, TrainingResult, build_mechanism, train
from repro.distributed.worker import HonestWorker, compute_cohort

__all__ = [
    "Cluster",
    "GradientMessage",
    "HonestWorker",
    "LossyNetwork",
    "MultiprocessCluster",
    "ParameterServer",
    "PerfectNetwork",
    "PrivacyReport",
    "RoundEngine",
    "StepResult",
    "TrainingResult",
    "WirePlane",
    "WorkerShardSpec",
    "WorkerSubmission",
    "build_mechanism",
    "compute_cohort",
    "train",
]
