"""repro — reproduction of "Differential Privacy and Byzantine Resilience
in SGD: Do They Add Up?" (Guerraoui, Gupta, Pinot, Rouault, Stephan;
PODC 2021).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: VN-ratio analysis
  (Eq. 2/8), feasibility conditions (Table 1, Propositions 1-3),
  Theorem 1 convergence bounds, trade-off solvers.
* Substrates — :mod:`repro.data`, :mod:`repro.models`,
  :mod:`repro.optim`, :mod:`repro.privacy`, :mod:`repro.gars`,
  :mod:`repro.attacks`, :mod:`repro.distributed`.
* :mod:`repro.pipeline` — the composable experiment API: a unified
  component registry (``build_component``/``register_component``), the
  staged :class:`Experiment` builder with training-loop callbacks
  (``AccuracyCallback``, ``EarlyStopping``, ``VNRatioCallback``, ...),
  and the parallel multi-seed executor behind
  ``run_config(..., max_workers=N)``.
* :mod:`repro.simulation` — the discrete-event asynchronous cluster
  simulator: virtual-clock engine, server policies (sync barrier /
  buffered semi-sync / async staleness-damped), per-worker latency
  models, and privacy-amplified partial participation, driven by
  :meth:`Experiment.simulate` or ``python -m repro simulate``.
* :mod:`repro.experiments` — configs and runners regenerating every
  table and figure; :mod:`repro.analysis` — leakage and variance
  extras; :mod:`repro.metrics` — histories and aggregation.
* :mod:`repro.faults` — the deterministic fault-injection and recovery
  plane: seed-deterministic :class:`FaultPlan` schedules (crash, hang,
  slow, drop, corrupt, rejoin) applied identically by every backend,
  shard respawn with seed-stream fast-forward in the multiprocess
  runtime, atomic training checkpoints with bit-identical resume, and
  campaign retry-with-backoff + quarantine
  (``Experiment(faults=...)``, ``repro run --faults``).
* :mod:`repro.telemetry` — the unified observability plane: structured
  tracing (schema-versioned JSONL), a typed metrics registry, and
  per-round phase profiling across the engine, the multiprocess
  runtime, the simulator, and campaigns.  Off by default and free when
  off; bit-identical when on (``Experiment(telemetry=...)``,
  ``--telemetry`` on the CLI, ``repro trace summarize`` to inspect).

Quickstart
----------
>>> from repro import phishing_environment, train
>>> model, train_set, test_set = phishing_environment()
>>> result = train(
...     model=model, train_dataset=train_set, test_dataset=test_set,
...     num_steps=100, gar="mda", attack="little", epsilon=0.2, seed=1,
... )  # doctest: +SKIP

The same run, spec-driven through the pipeline API:

>>> from repro import Experiment
>>> result = Experiment(
...     model=model, train_dataset=train_set, test_dataset=test_set,
...     num_steps=100, gar={"name": "mda"}, attack={"name": "little"},
...     epsilon=0.2, seed=1,
... ).run()  # doctest: +SKIP
"""

from repro.attacks import available_attacks, get_attack
from repro.campaign import (
    CampaignCell,
    ResultStore,
    ScenarioMatrix,
    cell_key,
    render_campaign_report,
    run_campaign,
)
from repro.core import (
    certify_vn_condition,
    empirical_vn_ratio,
    master_condition_can_hold,
    min_batch_size_for_gar,
    theorem1_bounds,
    theorem1_rate,
)
from repro.data import Dataset, make_phishing_dataset, train_test_split
from repro.distributed import Cluster, ParameterServer, RoundEngine, TrainingResult, train
from repro.exceptions import (
    AggregationError,
    ConfigurationError,
    DataError,
    DegradedRunError,
    PrivacyError,
    ReproError,
    ResilienceError,
    TrainingError,
)
from repro.experiments import ExperimentConfig, phishing_environment, run_config, run_grid
from repro.faults import (
    FaultEvent,
    FaultPlan,
    build_fault_plan,
    load_checkpoint,
    sample_fault_plan,
    save_checkpoint,
)
from repro.gars import available_gars, get_gar
from repro.models import LogisticRegressionModel, MeanEstimationModel
from repro.pipeline import (
    AccuracyCallback,
    Callback,
    CallbackList,
    EarlyStopping,
    Experiment,
    StepResultRecorder,
    TrainingJob,
    TrainingLoop,
    VNRatioCallback,
    available_components,
    build_component,
    component_families,
    register_component,
    run_jobs,
)
from repro.privacy import GaussianMechanism, LaplaceMechanism
from repro.rng import SeedTree
from repro.simulation import (
    AsyncStalenessPolicy,
    BufferedSemiSyncPolicy,
    ClusterSimulator,
    ConstantLatency,
    LognormalLatency,
    SimulationResult,
    StragglerLatency,
    SyncPolicy,
)
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Telemetry,
    TraceError,
    read_trace,
    summarize_trace,
    validate_events,
)

__version__ = "1.9.0"

__all__ = [
    "AccuracyCallback",
    "AggregationError",
    "AsyncStalenessPolicy",
    "BufferedSemiSyncPolicy",
    "Callback",
    "CallbackList",
    "CampaignCell",
    "Cluster",
    "ClusterSimulator",
    "ConfigurationError",
    "ConstantLatency",
    "DataError",
    "Dataset",
    "DegradedRunError",
    "EarlyStopping",
    "Experiment",
    "ExperimentConfig",
    "FaultEvent",
    "FaultPlan",
    "GaussianMechanism",
    "JsonlSink",
    "LaplaceMechanism",
    "LogisticRegressionModel",
    "LognormalLatency",
    "MeanEstimationModel",
    "MemorySink",
    "MetricsRegistry",
    "ParameterServer",
    "PrivacyError",
    "ReproError",
    "ResilienceError",
    "ResultStore",
    "RoundEngine",
    "ScenarioMatrix",
    "SeedTree",
    "SimulationResult",
    "StepResultRecorder",
    "StragglerLatency",
    "SyncPolicy",
    "Telemetry",
    "TraceError",
    "TrainingError",
    "TrainingJob",
    "TrainingLoop",
    "TrainingResult",
    "VNRatioCallback",
    "available_attacks",
    "available_components",
    "available_gars",
    "build_component",
    "build_fault_plan",
    "cell_key",
    "certify_vn_condition",
    "component_families",
    "empirical_vn_ratio",
    "get_attack",
    "get_gar",
    "load_checkpoint",
    "make_phishing_dataset",
    "master_condition_can_hold",
    "min_batch_size_for_gar",
    "phishing_environment",
    "read_trace",
    "register_component",
    "render_campaign_report",
    "run_campaign",
    "run_config",
    "run_grid",
    "run_jobs",
    "sample_fault_plan",
    "save_checkpoint",
    "summarize_trace",
    "theorem1_bounds",
    "theorem1_rate",
    "train",
    "train_test_split",
    "validate_events",
    "__version__",
]
