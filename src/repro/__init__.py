"""repro — reproduction of "Differential Privacy and Byzantine Resilience
in SGD: Do They Add Up?" (Guerraoui, Gupta, Pinot, Rouault, Stephan;
PODC 2021).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: VN-ratio analysis
  (Eq. 2/8), feasibility conditions (Table 1, Propositions 1-3),
  Theorem 1 convergence bounds, trade-off solvers.
* Substrates — :mod:`repro.data`, :mod:`repro.models`,
  :mod:`repro.optim`, :mod:`repro.privacy`, :mod:`repro.gars`,
  :mod:`repro.attacks`, :mod:`repro.distributed`.
* :mod:`repro.experiments` — configs and runners regenerating every
  table and figure; :mod:`repro.analysis` — leakage and variance
  extras; :mod:`repro.metrics` — histories and aggregation.

Quickstart
----------
>>> from repro import phishing_environment, train
>>> model, train_set, test_set = phishing_environment()
>>> result = train(
...     model=model, train_dataset=train_set, test_dataset=test_set,
...     num_steps=100, gar="mda", attack="little", epsilon=0.2, seed=1,
... )  # doctest: +SKIP
"""

from repro.attacks import available_attacks, get_attack
from repro.core import (
    certify_vn_condition,
    empirical_vn_ratio,
    master_condition_can_hold,
    min_batch_size_for_gar,
    theorem1_bounds,
    theorem1_rate,
)
from repro.data import Dataset, make_phishing_dataset, train_test_split
from repro.distributed import Cluster, ParameterServer, TrainingResult, train
from repro.exceptions import (
    AggregationError,
    ConfigurationError,
    DataError,
    PrivacyError,
    ReproError,
    ResilienceError,
    TrainingError,
)
from repro.experiments import ExperimentConfig, phishing_environment, run_config, run_grid
from repro.gars import available_gars, get_gar
from repro.models import LogisticRegressionModel, MeanEstimationModel
from repro.privacy import GaussianMechanism, LaplaceMechanism
from repro.rng import SeedTree

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "Cluster",
    "ConfigurationError",
    "DataError",
    "Dataset",
    "ExperimentConfig",
    "GaussianMechanism",
    "LaplaceMechanism",
    "LogisticRegressionModel",
    "MeanEstimationModel",
    "ParameterServer",
    "PrivacyError",
    "ReproError",
    "ResilienceError",
    "SeedTree",
    "TrainingError",
    "TrainingResult",
    "available_attacks",
    "available_gars",
    "certify_vn_condition",
    "empirical_vn_ratio",
    "get_attack",
    "get_gar",
    "make_phishing_dataset",
    "master_condition_can_hold",
    "min_batch_size_for_gar",
    "phishing_environment",
    "run_config",
    "run_grid",
    "theorem1_bounds",
    "theorem1_rate",
    "train",
    "train_test_split",
    "__version__",
]
