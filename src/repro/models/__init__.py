"""Model substrate: pure-numpy differentiable models.

Every model exposes batch loss, batch (mean) gradients and per-example
gradients for a flat parameter vector of dimension ``d`` — the quantity
the paper's analysis revolves around.
"""

from repro.models.base import Model
from repro.models.linear import LinearRegressionModel
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifierModel
from repro.models.quadratic import MeanEstimationModel
from repro.models.softmax import SoftmaxClassifierModel

__all__ = [
    "Model",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "MLPClassifierModel",
    "MeanEstimationModel",
    "SoftmaxClassifierModel",
]
