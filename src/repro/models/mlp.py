"""One-hidden-layer MLP binary classifier (non-convex extension).

The paper's general-setting results (Section 3) make no convexity
assumption; this model provides a small non-convex landscape so those
results can be exercised end-to-end.  Architecture:

``x -> tanh(W1 x + b1) -> sigmoid(w2 . h + b2)`` with MSE loss,
matching the paper's choice of squared error on sigmoid outputs.

Parameters are packed row-major as ``[W1 (h x in), b1 (h), w2 (h),
b2 (1)]`` so ``d = h * in + 2 h + 1``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.models.logistic import sigmoid
from repro.typing import Vector

__all__ = ["MLPClassifierModel"]


class MLPClassifierModel(Model):
    """Binary classifier: tanh hidden layer, sigmoid output, MSE loss."""

    name = "mlp"

    def __init__(self, num_features: int, hidden_units: int = 16):
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if hidden_units <= 0:
            raise ConfigurationError(f"hidden_units must be positive, got {hidden_units}")
        self._num_features = int(num_features)
        self._hidden = int(hidden_units)

    @property
    def dimension(self) -> int:
        return self._hidden * self._num_features + 2 * self._hidden + 1

    @property
    def num_features(self) -> int:
        """Raw input features."""
        return self._num_features

    @property
    def hidden_units(self) -> int:
        """Width of the hidden layer."""
        return self._hidden

    def initial_parameters(self, rng: np.random.Generator | None = None) -> Vector:
        """Glorot-style random initialisation (zeros would be a saddle)."""
        if rng is None:
            rng = np.random.default_rng(0)
        scale_1 = np.sqrt(2.0 / (self._num_features + self._hidden))
        weights_1 = scale_1 * rng.standard_normal((self._hidden, self._num_features))
        bias_1 = np.zeros(self._hidden)
        scale_2 = np.sqrt(2.0 / (self._hidden + 1))
        weights_2 = scale_2 * rng.standard_normal(self._hidden)
        bias_2 = np.zeros(1)
        return self._pack(weights_1, bias_1, weights_2, bias_2)

    def _pack(
        self,
        weights_1: np.ndarray,
        bias_1: np.ndarray,
        weights_2: np.ndarray,
        bias_2: np.ndarray,
    ) -> Vector:
        return np.concatenate(
            [weights_1.reshape(-1), bias_1, weights_2, np.atleast_1d(bias_2)]
        )

    def _unpack(self, parameters: Vector) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        parameters = self._check_parameters(parameters)
        h, n = self._hidden, self._num_features
        offset = 0
        weights_1 = parameters[offset : offset + h * n].reshape(h, n)
        offset += h * n
        bias_1 = parameters[offset : offset + h]
        offset += h
        weights_2 = parameters[offset : offset + h]
        offset += h
        bias_2 = float(parameters[offset])
        return weights_1, bias_1, weights_2, bias_2

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._num_features:
            raise ValueError(
                f"features must have shape (batch, {self._num_features}), "
                f"got {features.shape}"
            )
        return features

    def _forward(
        self, parameters: Vector, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray, float]]:
        """Returns (probabilities, hidden activations, unpacked params)."""
        unpacked = self._unpack(parameters)
        weights_1, bias_1, weights_2, bias_2 = unpacked
        features = self._check_features(features)
        hidden = np.tanh(features @ weights_1.T + bias_1[None, :])
        probabilities = sigmoid(hidden @ weights_2 + bias_2)
        return probabilities, hidden, unpacked

    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.float64)
        probabilities, _, _ = self._forward(parameters, features)
        return float(np.mean((probabilities - labels) ** 2))

    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.float64)
        features = self._check_features(features)
        probabilities, hidden, (weights_1, _, weights_2, _) = self._forward(
            parameters, features
        )
        batch = len(labels)
        # d(loss)/d(output logit) for MSE-on-sigmoid.
        delta_out = 2.0 * (probabilities - labels) * probabilities * (1.0 - probabilities)
        grad_w2 = delta_out[:, None] * hidden  # (batch, h)
        grad_b2 = delta_out[:, None]  # (batch, 1)
        delta_hidden = (delta_out[:, None] * weights_2[None, :]) * (1.0 - hidden**2)
        grad_w1 = delta_hidden[:, :, None] * features[:, None, :]  # (batch, h, in)
        grad_b1 = delta_hidden  # (batch, h)
        return np.concatenate(
            [grad_w1.reshape(batch, -1), grad_b1, grad_w2, grad_b2], axis=1
        )

    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        return self.per_example_gradients(parameters, features, labels).mean(axis=0)

    def predict(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        probabilities, _, _ = self._forward(parameters, features)
        return (probabilities >= 0.5).astype(np.float64)
