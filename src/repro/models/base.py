"""Abstract model interface.

A *model* here is a differentiable loss landscape over a flat parameter
vector ``w`` of dimension ``d``, evaluated on ``(features, labels)``
batches.  Workers never mutate models; models are stateless functions
of ``(w, batch)``, which keeps the distributed simulation free of
hidden shared state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.typing import Vector

__all__ = ["Model", "augment_stack_with_bias"]


def augment_stack_with_bias(
    features_stack: np.ndarray, num_features: int
) -> np.ndarray:
    """Append a constant-1 bias column to every batch of a ``(W, b, p)``
    stack, validating the feature count.

    Shared by the linear-family models' vectorized ``gradient_stack`` /
    ``loss_stack`` overrides (the stacked twin of their per-matrix
    ``_augment``).
    """
    features_stack = np.asarray(features_stack, dtype=np.float64)
    if features_stack.ndim != 3 or features_stack.shape[2] != num_features:
        raise ValueError(
            f"features_stack must have shape (W, b, {num_features}), "
            f"got {features_stack.shape}"
        )
    ones = np.ones(features_stack.shape[:2] + (1,))
    return np.concatenate([features_stack, ones], axis=2)


class Model(ABC):
    """Stateless differentiable model over a flat parameter vector."""

    #: Registry name, set by each subclass (e.g. ``"logistic"``).
    name: str = "abstract"

    #: Whether this model accepts *pre-augmented* feature stacks in
    #: :meth:`loss_and_gradient_stack` (``augmented=True``) together
    #: with an :meth:`augment_features` precompute.  The fused round
    #: engine uses this to append the bias column to a dataset once
    #: instead of re-concatenating it every round.  Only the
    #: linear-family models (whose augmentation is a constant bias
    #: column) opt in.
    supports_augmented_stack: bool = False

    def augment_features(self, features: np.ndarray) -> np.ndarray:
        """Precompute the model's augmented feature matrix.

        Only meaningful when :attr:`supports_augmented_stack` is true;
        rows of the result gathered into a ``(W, b, d)`` stack must be
        bit-identical to augmenting the gathered raw rows.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support pre-augmented stacks"
        )

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Number of trainable parameters ``d``."""

    @abstractmethod
    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean loss of ``parameters`` over the batch."""

    @abstractmethod
    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        """Mean gradient of the loss over the batch; shape ``(d,)``."""

    @abstractmethod
    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Per-example gradients; shape ``(batch_size, d)``.

        The mean over axis 0 equals :meth:`gradient` up to rounding.
        Needed for per-example clipping (the airtight route to the
        ``2 G_max / b`` sensitivity bound of Section 2.3).
        """

    def gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        """Mean gradient of each batch in a ``(W, b, ...)`` stack; ``(W, d)``.

        One call covers a whole worker cohort's round.  The base
        implementation loops over the stack; models with a closed-form
        batch gradient (linear, logistic) override it with a single
        einsum so the entire cohort is one matrix contraction.
        """
        return np.stack(
            [
                self.gradient(parameters, features, labels)
                for features, labels in zip(features_stack, labels_stack)
            ]
        )

    def loss_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        """Mean loss of each batch in a ``(W, b, ...)`` stack; ``(W,)``.

        Same contract as :meth:`gradient_stack` for the forward pass;
        the training loop uses it to score a whole honest cohort's
        sampled batches in one call.
        """
        return np.array(
            [
                self.loss(parameters, features, labels)
                for features, labels in zip(features_stack, labels_stack)
            ]
        )

    def loss_and_gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both :meth:`loss_stack` and :meth:`gradient_stack` in one pass.

        Returns ``(losses, gradients)`` with shapes ``(W,)`` and
        ``(W, d)``, exactly equal (bit for bit) to calling the two
        methods separately — the fused round engine uses this to score
        and differentiate a round's cohort batches without running the
        forward contraction twice.  Models with a shared forward pass
        (linear, logistic) override it to compute the augmented stack
        and the logits once; the base implementation simply delegates.
        """
        return (
            self.loss_stack(parameters, features_stack, labels_stack),
            self.gradient_stack(parameters, features_stack, labels_stack),
        )

    def initial_parameters(self, rng: np.random.Generator | None = None) -> Vector:
        """Starting parameter vector; zeros unless a model overrides it.

        Zero initialisation is what the paper's convex experiments use;
        non-convex models (the MLP) override this with a seeded random
        initialisation.
        """
        del rng  # deterministic default
        return np.zeros(self.dimension)

    def accuracy(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy, when the model defines predictions.

        Models that are not classifiers (e.g. mean estimation) raise
        ``NotImplementedError``.
        """
        predictions = self.predict(parameters, features)
        return float(np.mean(predictions == np.asarray(labels)))

    def predict(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        """Hard label predictions; classifiers override this."""
        raise NotImplementedError(f"{type(self).__name__} is not a classifier")

    def _check_parameters(self, parameters: Vector) -> Vector:
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.shape != (self.dimension,):
            raise ValueError(
                f"parameters must have shape ({self.dimension},), got {parameters.shape}"
            )
        return parameters
