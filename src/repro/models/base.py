"""Abstract model interface.

A *model* here is a differentiable loss landscape over a flat parameter
vector ``w`` of dimension ``d``, evaluated on ``(features, labels)``
batches.  Workers never mutate models; models are stateless functions
of ``(w, batch)``, which keeps the distributed simulation free of
hidden shared state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.typing import Vector

__all__ = ["Model"]


class Model(ABC):
    """Stateless differentiable model over a flat parameter vector."""

    #: Registry name, set by each subclass (e.g. ``"logistic"``).
    name: str = "abstract"

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Number of trainable parameters ``d``."""

    @abstractmethod
    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean loss of ``parameters`` over the batch."""

    @abstractmethod
    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        """Mean gradient of the loss over the batch; shape ``(d,)``."""

    @abstractmethod
    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Per-example gradients; shape ``(batch_size, d)``.

        The mean over axis 0 equals :meth:`gradient` up to rounding.
        Needed for per-example clipping (the airtight route to the
        ``2 G_max / b`` sensitivity bound of Section 2.3).
        """

    def initial_parameters(self, rng: np.random.Generator | None = None) -> Vector:
        """Starting parameter vector; zeros unless a model overrides it.

        Zero initialisation is what the paper's convex experiments use;
        non-convex models (the MLP) override this with a seeded random
        initialisation.
        """
        del rng  # deterministic default
        return np.zeros(self.dimension)

    def accuracy(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy, when the model defines predictions.

        Models that are not classifiers (e.g. mean estimation) raise
        ``NotImplementedError``.
        """
        predictions = self.predict(parameters, features)
        return float(np.mean(predictions == np.asarray(labels)))

    def predict(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        """Hard label predictions; classifiers override this."""
        raise NotImplementedError(f"{type(self).__name__} is not a classifier")

    def _check_parameters(self, parameters: Vector) -> Vector:
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.shape != (self.dimension,):
            raise ValueError(
                f"parameters must have shape ({self.dimension},), got {parameters.shape}"
            )
        return parameters
