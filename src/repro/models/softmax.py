"""Multiclass softmax (multinomial logistic) classifier.

An extension beyond the paper's binary task: the library supports
multiclass problems with the same worker/server/GAR plumbing.  The
parameter vector is the row-major flattening of a ``(num_classes,
num_features + 1)`` weight matrix, so ``d = num_classes *
(num_features + 1)`` — handy for experiments that need to scale ``d``
without changing the data (Theorem 1's *d*-dependence).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.typing import Vector

__all__ = ["SoftmaxClassifierModel"]


class SoftmaxClassifierModel(Model):
    """Softmax classifier with cross-entropy loss and a bias per class."""

    name = "softmax"

    def __init__(self, num_features: int, num_classes: int):
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        self._num_features = int(num_features)
        self._num_classes = int(num_classes)

    @property
    def dimension(self) -> int:
        return self._num_classes * (self._num_features + 1)

    @property
    def num_features(self) -> int:
        """Raw input features (excluding the bias column)."""
        return self._num_features

    @property
    def num_classes(self) -> int:
        """Number of output classes."""
        return self._num_classes

    def _augment(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._num_features:
            raise ValueError(
                f"features must have shape (batch, {self._num_features}), "
                f"got {features.shape}"
            )
        return np.hstack([features, np.ones((features.shape[0], 1))])

    def _weights(self, parameters: Vector) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        return parameters.reshape(self._num_classes, self._num_features + 1)

    def _probabilities(self, parameters: Vector, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        augmented = self._augment(features)
        logits = augmented @ self._weights(parameters).T
        logits -= logits.max(axis=1, keepdims=True)  # stability shift
        exp_logits = np.exp(logits)
        return exp_logits / exp_logits.sum(axis=1, keepdims=True), augmented

    def _check_labels(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        as_int = labels.astype(np.int64)
        if np.any(as_int != labels) or as_int.min(initial=0) < 0 or (
            as_int.size and as_int.max() >= self._num_classes
        ):
            raise ValueError(
                f"labels must be integers in [0, {self._num_classes}), "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        return as_int

    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        labels = self._check_labels(labels)
        probabilities, _ = self._probabilities(parameters, features)
        eps = 1e-12
        picked = np.clip(probabilities[np.arange(len(labels)), labels], eps, None)
        return float(-np.mean(np.log(picked)))

    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        labels = self._check_labels(labels)
        probabilities, augmented = self._probabilities(parameters, features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(len(labels)), labels] = 1.0
        delta = probabilities - one_hot  # (batch, classes)
        grad_matrix = delta.T @ augmented / len(labels)  # (classes, features+1)
        return grad_matrix.reshape(-1)

    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        labels = self._check_labels(labels)
        probabilities, augmented = self._probabilities(parameters, features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(len(labels)), labels] = 1.0
        delta = probabilities - one_hot  # (batch, classes)
        # Outer product per example: (batch, classes, features+1) flattened.
        grads = delta[:, :, None] * augmented[:, None, :]
        return grads.reshape(len(labels), self.dimension)

    def predict(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        probabilities, _ = self._probabilities(parameters, features)
        return probabilities.argmax(axis=1).astype(np.float64)
