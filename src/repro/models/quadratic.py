"""Mean-estimation model: ``Q(w) = 1/2 E ||w - x||^2``.

This is the strongly-convex cost function used in the proof of the
lower bound of Theorem 1.  Its properties are known in closed form,
which makes it the reference landscape for validating the theory
module:

* strongly convex with ``lambda = 1`` (Assumption 2);
* gradient Lipschitz with ``mu = 1`` (Assumption 3);
* per-sample gradient ``grad Q(w, x) = w - x`` so the stochastic
  gradient variance equals the data variance (Assumption 4 holds with
  ``sigma^2 = E ||x - x_bar||^2``);
* optimum ``w* = x_bar`` (the data mean), ``Q* = 1/2 E ||x_bar - x||^2``.

Data points are the dataset's feature vectors; labels are ignored.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.typing import Vector

__all__ = ["MeanEstimationModel"]


class MeanEstimationModel(Model):
    """Estimate the mean of a point cloud by minimising ``1/2 E||w - x||^2``."""

    name = "mean-estimation"

    # Closed-form landscape constants (see module docstring).
    STRONG_CONVEXITY = 1.0
    LIPSCHITZ = 1.0

    def __init__(self, dimension: int):
        if dimension <= 0:
            raise ConfigurationError(f"dimension must be positive, got {dimension}")
        self._dimension = int(dimension)

    @property
    def dimension(self) -> int:
        return self._dimension

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._dimension:
            raise ValueError(
                f"features must have shape (batch, {self._dimension}), got {features.shape}"
            )
        return features

    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        del labels  # unused: unsupervised estimation task
        parameters = self._check_parameters(parameters)
        features = self._check_features(features)
        return float(0.5 * np.mean(np.sum((parameters[None, :] - features) ** 2, axis=1)))

    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        del labels
        parameters = self._check_parameters(parameters)
        features = self._check_features(features)
        return parameters - features.mean(axis=0)

    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        del labels
        parameters = self._check_parameters(parameters)
        features = self._check_features(features)
        return parameters[None, :] - features

    def optimum(self, features: np.ndarray) -> Vector:
        """The empirical minimiser: the mean of the points."""
        return self._check_features(features).mean(axis=0)

    def optimal_loss(self, features: np.ndarray) -> float:
        """``Q*`` on the given empirical cloud."""
        features = self._check_features(features)
        mean = features.mean(axis=0)
        return float(0.5 * np.mean(np.sum((mean[None, :] - features) ** 2, axis=1)))
