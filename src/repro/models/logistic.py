"""Logistic regression with MSE or negative-log-likelihood loss.

The paper trains "a logistic regression model ... using the mean square
error as training loss" (Section 5.1).  That is: predictions are
``p = sigmoid(x . w)`` and the per-example loss is ``(p - y)^2`` with
labels ``y in {0, 1}``.  The model folds the bias in as a constant
``1`` feature, so 68 input features give ``d = 69`` parameters exactly
as in the paper.

The conventional cross-entropy (NLL) loss is also provided because it
makes the objective convex — useful for tests that need a convex
landscape with the same gradient plumbing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model, augment_stack_with_bias
from repro.typing import Vector

__all__ = ["LogisticRegressionModel", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Branch-free evaluation of the classic two-branch form: with
    ``e = exp(-|z|)``, positive inputs get ``1 / (1 + e)`` (identical to
    ``1 / (1 + exp(-z))`` since ``-|z| == -z`` there) and negative
    inputs get ``e / (1 + e)`` (identical to ``exp(z) / (1 + exp(z))``).
    Every element's value is bit-identical to the branchy original; the
    ``where`` select just avoids the four boolean gather/scatter passes
    on the hot path.
    """
    z = np.asarray(z, dtype=np.float64)
    exp_neg = np.exp(-np.abs(z))
    denominator = 1.0 + exp_neg
    return np.where(z >= 0, 1.0 / denominator, exp_neg / denominator)


class LogisticRegressionModel(Model):
    """Binary logistic regression over ``num_features`` inputs plus a bias.

    Parameters
    ----------
    num_features:
        Number of raw input features.  The parameter dimension is
        ``num_features + 1`` (bias folded in).
    loss_kind:
        ``"mse"`` (the paper's choice) or ``"nll"`` (cross-entropy).
    """

    name = "logistic"

    VALID_LOSSES = ("mse", "nll")

    def __init__(self, num_features: int, loss_kind: str = "mse"):
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if loss_kind not in self.VALID_LOSSES:
            raise ConfigurationError(
                f"loss_kind must be one of {self.VALID_LOSSES}, got {loss_kind!r}"
            )
        self._num_features = int(num_features)
        self._loss_kind = loss_kind

    @property
    def dimension(self) -> int:
        return self._num_features + 1

    @property
    def num_features(self) -> int:
        """Raw input features (excluding the bias column)."""
        return self._num_features

    @property
    def loss_kind(self) -> str:
        """The configured loss: ``"mse"`` or ``"nll"``."""
        return self._loss_kind

    def _augment(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._num_features:
            raise ValueError(
                f"features must have shape (batch, {self._num_features}), "
                f"got {features.shape}"
            )
        ones = np.ones((features.shape[0], 1))
        return np.hstack([features, ones])

    def _probabilities(self, parameters: Vector, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        parameters = self._check_parameters(parameters)
        augmented = self._augment(features)
        return sigmoid(augmented @ parameters), augmented

    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.float64)
        probabilities, _ = self._probabilities(parameters, features)
        if self._loss_kind == "mse":
            return float(np.mean((probabilities - labels) ** 2))
        # NLL with clamping to avoid log(0).
        eps = 1e-12
        clipped = np.clip(probabilities, eps, 1.0 - eps)
        return float(
            -np.mean(labels * np.log(clipped) + (1.0 - labels) * np.log(1.0 - clipped))
        )

    def _residual_factor(
        self, probabilities: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Per-example d(loss)/d(logit)."""
        if self._loss_kind == "mse":
            return 2.0 * (probabilities - labels) * probabilities * (1.0 - probabilities)
        return probabilities - labels

    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        labels = np.asarray(labels, dtype=np.float64)
        probabilities, augmented = self._probabilities(parameters, features)
        factor = self._residual_factor(probabilities, labels)
        return (augmented.T @ factor) / len(labels)

    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.float64)
        probabilities, augmented = self._probabilities(parameters, features)
        factor = self._residual_factor(probabilities, labels)
        return factor[:, None] * augmented

    def _augment_stack(self, features_stack: np.ndarray) -> np.ndarray:
        return augment_stack_with_bias(features_stack, self._num_features)

    def gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        augmented = self._augment_stack(features_stack)  # (W, b, d)
        probabilities = sigmoid(augmented @ parameters)  # (W, b)
        factor = self._residual_factor(probabilities, labels_stack)
        return np.einsum("wbd,wb->wd", augmented, factor) / labels_stack.shape[1]

    def loss_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        probabilities = sigmoid(self._augment_stack(features_stack) @ parameters)
        if self._loss_kind == "mse":
            return np.mean((probabilities - labels_stack) ** 2, axis=1)
        eps = 1e-12
        clipped = np.clip(probabilities, eps, 1.0 - eps)
        return -np.mean(
            labels_stack * np.log(clipped)
            + (1.0 - labels_stack) * np.log(1.0 - clipped),
            axis=1,
        )

    supports_augmented_stack = True

    def augment_features(self, features: np.ndarray) -> np.ndarray:
        """``(N, p) -> (N, p + 1)``: the bias column appended once.

        Rows gathered from the result are bit-identical to augmenting
        the gathered raw rows (the appended constant is exact); the
        whole-dataset precompute is just :meth:`_augment` applied once.
        """
        return self._augment(features)

    def loss_and_gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
        *,
        augmented: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        # Shared forward pass: augmenting and the (W, b, d) @ (d,)
        # contraction run once.  The loss and gradient formulas are the
        # verbatim bodies of loss_stack / gradient_stack, so the pair is
        # bit-identical to the two separate calls.  ``augmented=True``
        # takes a stack whose bias column is already present (gathered
        # from :meth:`augment_features`'s precompute — same values, the
        # per-round concatenation skipped).
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        if augmented:
            if features_stack.shape[2] != self.dimension:
                raise ValueError(
                    f"augmented stack must have {self.dimension} columns, "
                    f"got {features_stack.shape}"
                )
            augmented_stack = features_stack
        else:
            augmented_stack = self._augment_stack(features_stack)  # (W, b, d)
        probabilities = sigmoid(augmented_stack @ parameters)  # (W, b)
        if self._loss_kind == "mse":
            losses = np.mean((probabilities - labels_stack) ** 2, axis=1)
        else:
            eps = 1e-12
            clipped = np.clip(probabilities, eps, 1.0 - eps)
            losses = -np.mean(
                labels_stack * np.log(clipped)
                + (1.0 - labels_stack) * np.log(1.0 - clipped),
                axis=1,
            )
        factor = self._residual_factor(probabilities, labels_stack)
        gradients = np.einsum("wbd,wb->wd", augmented_stack, factor) / labels_stack.shape[1]
        return losses, gradients

    def predict(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        probabilities, _ = self._probabilities(parameters, features)
        return (probabilities >= 0.5).astype(np.float64)

    def predict_proba(self, parameters: Vector, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class per example."""
        probabilities, _ = self._probabilities(parameters, features)
        return probabilities
