"""Linear (least-squares) regression.

Loss per example is ``1/2 (x . w - y)^2`` with the bias folded in as a
constant feature.  Convex (though not strongly convex unless the
feature covariance is full-rank), globally Lipschitz gradient on
bounded data — a simple well-understood landscape for tests and for
convergence-rate sanity checks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model, augment_stack_with_bias
from repro.typing import Vector

__all__ = ["LinearRegressionModel"]


class LinearRegressionModel(Model):
    """Least-squares linear regression with a bias term."""

    name = "linear"

    def __init__(self, num_features: int):
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        self._num_features = int(num_features)

    @property
    def dimension(self) -> int:
        return self._num_features + 1

    @property
    def num_features(self) -> int:
        """Raw input features (excluding the bias column)."""
        return self._num_features

    def _augment(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._num_features:
            raise ValueError(
                f"features must have shape (batch, {self._num_features}), "
                f"got {features.shape}"
            )
        return np.hstack([features, np.ones((features.shape[0], 1))])

    def loss(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> float:
        parameters = self._check_parameters(parameters)
        labels = np.asarray(labels, dtype=np.float64)
        residuals = self._augment(features) @ parameters - labels
        return float(0.5 * np.mean(residuals**2))

    def gradient(self, parameters: Vector, features: np.ndarray, labels: np.ndarray) -> Vector:
        parameters = self._check_parameters(parameters)
        labels = np.asarray(labels, dtype=np.float64)
        augmented = self._augment(features)
        residuals = augmented @ parameters - labels
        return (augmented.T @ residuals) / len(labels)

    def per_example_gradients(
        self, parameters: Vector, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        labels = np.asarray(labels, dtype=np.float64)
        augmented = self._augment(features)
        residuals = augmented @ parameters - labels
        return residuals[:, None] * augmented

    def _augment_stack(self, features_stack: np.ndarray) -> np.ndarray:
        return augment_stack_with_bias(features_stack, self._num_features)

    def gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        augmented = self._augment_stack(features_stack)  # (W, b, d)
        residuals = augmented @ parameters - labels_stack  # (W, b)
        return np.einsum("wbd,wb->wd", augmented, residuals) / labels_stack.shape[1]

    def loss_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
    ) -> np.ndarray:
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        residuals = self._augment_stack(features_stack) @ parameters - labels_stack
        return 0.5 * np.mean(residuals**2, axis=1)

    supports_augmented_stack = True

    def augment_features(self, features: np.ndarray) -> np.ndarray:
        """``(N, p) -> (N, p + 1)``: the bias column appended once
        (:meth:`_augment` applied to the whole dataset)."""
        return self._augment(features)

    def loss_and_gradient_stack(
        self,
        parameters: Vector,
        features_stack: np.ndarray,
        labels_stack: np.ndarray,
        *,
        augmented: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        # Shared forward pass (augment + residuals computed once); the
        # loss and gradient expressions are the verbatim bodies of
        # loss_stack / gradient_stack, so the pair is bit-identical to
        # the two separate calls.  ``augmented=True``: see the logistic
        # twin.
        parameters = self._check_parameters(parameters)
        labels_stack = np.asarray(labels_stack, dtype=np.float64)
        if augmented:
            if features_stack.shape[2] != self.dimension:
                raise ValueError(
                    f"augmented stack must have {self.dimension} columns, "
                    f"got {features_stack.shape}"
                )
            augmented_stack = features_stack
        else:
            augmented_stack = self._augment_stack(features_stack)  # (W, b, d)
        residuals = augmented_stack @ parameters - labels_stack  # (W, b)
        losses = 0.5 * np.mean(residuals**2, axis=1)
        gradients = np.einsum("wbd,wb->wd", augmented_stack, residuals) / labels_stack.shape[1]
        return losses, gradients

    def solve_exact(self, features: np.ndarray, labels: np.ndarray) -> Vector:
        """Closed-form least-squares optimum (pseudo-inverse)."""
        augmented = self._augment(features)
        solution, *_ = np.linalg.lstsq(augmented, np.asarray(labels, dtype=np.float64), rcond=None)
        return solution
