"""Synthetic stand-in for the LIBSVM ``phishing`` dataset.

The paper trains logistic regression on ``phishing``: 11 055 points,
68 features (after LIBSVM's one-hot expansion of the original 30
website attributes), feature values in ``[0, 1]``, binary labels with a
roughly 55/45 split, and a linear-model test accuracy plateauing around
93 %.

This environment has no network access, so we generate a *calibrated
synthetic equivalent* (see DESIGN.md §2): the generator below matches
the real dataset's shape and difficulty, which is all the paper's
experiments depend on — the experiments measure how gradient variance
interacts with DP noise and Byzantine attacks, not any property unique
to phishing URLs.

Construction
------------
1. Draw a ground-truth weight vector ``w*`` with moderately sparse
   entries (many website attributes are irrelevant to phishing).
2. Draw ternary raw features in ``{-1, 0, 1}`` (the original dataset's
   attribute encoding) with feature-dependent frequencies, then map
   them to ``{0, 0.5, 1}`` so values live in ``[0, 1]`` like the scaled
   LIBSVM release.
3. Label each point by a Bernoulli draw with probability
   ``sigmoid(LOGIT_STD * z + LOGIT_OFFSET)`` where ``z`` is the
   standardised ground-truth score ``x_raw . w*``; ``LOGIT_STD``
   controls the Bayes error (tuned so logistic regression lands at
   about 93 % test accuracy) and ``LOGIT_OFFSET`` the ~55/45 class
   balance.
4. Flip a small fraction of labels uniformly at random (label noise
   present in any real scrape).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.rng import generator_from_seed

__all__ = [
    "PHISHING_NUM_POINTS",
    "PHISHING_NUM_FEATURES",
    "PHISHING_TRAIN_SIZE",
    "PHISHING_TEST_SIZE",
    "make_phishing_dataset",
]

# Shape constants of the real LIBSVM phishing dataset (paper §5.1).
PHISHING_NUM_POINTS = 11_055
PHISHING_NUM_FEATURES = 68
PHISHING_TRAIN_SIZE = 8_400
PHISHING_TEST_SIZE = 2_655

# Calibration constants (fixed by tests/test_phishing_calibration.py):
# chosen so that a logistic regression reaches ~93 % test accuracy and
# ~55/45 class balance, like the real dataset.  The ground-truth score
# is standardised before the logistic link, so _LOGIT_STD is directly
# the standard deviation of the true logits (larger = cleaner labels)
# and _LOGIT_OFFSET shifts the class balance.
_LOGIT_STD = 12.0
_LOGIT_OFFSET = 0.9
_LABEL_NOISE = 0.005
_RELEVANT_FRACTION = 0.45


def make_phishing_dataset(
    seed: int = 0,
    num_points: int = PHISHING_NUM_POINTS,
    num_features: int = PHISHING_NUM_FEATURES,
) -> Dataset:
    """Generate the synthetic phishing-like dataset.

    Parameters
    ----------
    seed:
        Root seed; the same seed always yields the identical dataset.
    num_points, num_features:
        Shape overrides, mainly for fast tests.  Defaults match the
        real dataset (11 055 x 68).

    Returns
    -------
    Dataset
        Features in ``{0, 0.5, 1}`` of shape ``(num_points,
        num_features)``; labels in ``{0.0, 1.0}``.
    """
    if num_points <= 0:
        raise DataError(f"num_points must be positive, got {num_points}")
    if num_features <= 0:
        raise DataError(f"num_features must be positive, got {num_features}")

    rng = generator_from_seed(seed)

    # Ground-truth weights: a sparse-ish signal over the attributes.
    relevant = rng.random(num_features) < _RELEVANT_FRACTION
    signs = rng.choice([-1.0, 1.0], size=num_features)
    magnitudes = rng.uniform(0.5, 1.5, size=num_features)
    true_weights = np.where(relevant, signs * magnitudes, 0.0)

    # Ternary raw attributes in {-1, 0, 1}, feature-dependent frequencies.
    probability_negative = rng.uniform(0.15, 0.45, size=num_features)
    probability_zero = rng.uniform(0.05, 0.25, size=num_features)
    uniform_draws = rng.random((num_points, num_features))
    raw = np.where(
        uniform_draws < probability_negative,
        -1.0,
        np.where(uniform_draws < probability_negative + probability_zero, 0.0, 1.0),
    )

    # Bernoulli labels from a logistic ground-truth model on the
    # standardised score (standardising keeps _LOGIT_STD and
    # _LOGIT_OFFSET meaningful whatever the sampled weights/frequencies).
    scores = raw @ true_weights
    score_std = float(scores.std())
    if score_std == 0.0:
        score_std = 1.0  # degenerate draw (e.g. all weights zero)
    standardised = (scores - float(scores.mean())) / score_std
    logits = _LOGIT_STD * standardised + _LOGIT_OFFSET
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.random(num_points) < probabilities).astype(np.float64)

    # Label noise.
    flip = rng.random(num_points) < _LABEL_NOISE
    labels = np.where(flip, 1.0 - labels, labels)

    # Map {-1, 0, 1} -> {0, 0.5, 1} like the scaled LIBSVM release.
    features = (raw + 1.0) / 2.0

    return Dataset(features=features, labels=labels, name="phishing-synthetic")
