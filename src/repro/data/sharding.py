"""Data sharding across workers.

The paper's model has every worker sampling i.i.d. from the same
distribution (Section 2.1).  Real federated deployments shard: each
worker owns a disjoint (possibly non-identically-distributed) slice.
This module provides both:

* :func:`shard_iid` — random disjoint shards, each distributionally
  identical (the closest realistic analogue of the paper's model);
* :func:`shard_by_label` — pathological label-sorted shards, the
  classic non-IID federated stressor.  Under label sharding the honest
  gradients themselves disagree, inflating the VN ratio *before* any
  DP noise — a useful extension experiment on top of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError

__all__ = ["shard_iid", "shard_by_label"]


def _validate(dataset: Dataset, num_shards: int) -> None:
    if num_shards < 1:
        raise DataError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > dataset.num_points:
        raise DataError(
            f"cannot cut {dataset.num_points} points into {num_shards} shards"
        )


def shard_iid(
    dataset: Dataset, num_shards: int, rng: np.random.Generator
) -> list[Dataset]:
    """Split into ``num_shards`` random, disjoint, near-equal shards."""
    _validate(dataset, num_shards)
    order = rng.permutation(dataset.num_points)
    pieces = np.array_split(order, num_shards)
    return [
        dataset.subset(piece, name=f"{dataset.name}-shard{index}")
        for index, piece in enumerate(pieces)
    ]


def shard_by_label(
    dataset: Dataset, num_shards: int, rng: np.random.Generator
) -> list[Dataset]:
    """Label-sorted shards: each worker sees a skewed class mixture.

    Points are sorted by label (ties broken randomly) and cut into
    contiguous slices, so shard 0 is dominated by the smallest label
    and the last shard by the largest — the standard worst-case
    federated split.
    """
    _validate(dataset, num_shards)
    jitter = rng.random(dataset.num_points)
    order = np.lexsort((jitter, dataset.labels))
    pieces = np.array_split(order, num_shards)
    return [
        dataset.subset(piece, name=f"{dataset.name}-labelshard{index}")
        for index, piece in enumerate(pieces)
    ]
