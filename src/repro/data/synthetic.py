"""Generic synthetic dataset generators.

Besides the phishing stand-in, the library needs:

* :func:`make_gaussian_mean_dataset` — the ``N(x_bar, (sigma^2/d) I_d)``
  sample cloud from Theorem 1's lower-bound construction, where the
  learning task is to estimate the mean ``x_bar`` by minimising
  ``Q(w) = 1/2 E ||w - x||^2``.
* :func:`make_linearly_separable_dataset` — a clean logistic-regression
  task for unit/integration tests with a known optimum.
* :func:`make_two_blobs_dataset` — two Gaussian blobs, a harder but
  still convex-friendly binary task.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.rng import generator_from_seed

__all__ = [
    "make_gaussian_mean_dataset",
    "make_linearly_separable_dataset",
    "make_two_blobs_dataset",
]


def make_gaussian_mean_dataset(
    dimension: int,
    num_points: int,
    sigma: float = 1.0,
    mean: np.ndarray | None = None,
    seed: int = 0,
) -> Dataset:
    """Sample ``num_points`` vectors from ``N(mean, (sigma^2/d) I_d)``.

    This is exactly the distribution ``D`` used in the proof of the
    lower bound of Theorem 1.  The per-coordinate variance is
    ``sigma^2 / d`` so that ``E ||x - mean||^2 = sigma^2`` regardless of
    the dimension — which is what makes the final error rate's *d*
    dependence attributable to the DP noise alone.

    The vectors are stored as features; labels are zeros (unused).
    """
    if dimension <= 0:
        raise DataError(f"dimension must be positive, got {dimension}")
    if num_points <= 0:
        raise DataError(f"num_points must be positive, got {num_points}")
    if sigma < 0:
        raise DataError(f"sigma must be non-negative, got {sigma}")
    rng = generator_from_seed(seed)
    if mean is None:
        mean = rng.uniform(-1.0, 1.0, size=dimension)
    else:
        mean = np.asarray(mean, dtype=np.float64)
        if mean.shape != (dimension,):
            raise DataError(
                f"mean must have shape ({dimension},), got {mean.shape}"
            )
    scale = sigma / np.sqrt(dimension)
    features = mean + scale * rng.standard_normal((num_points, dimension))
    return Dataset(
        features=features,
        labels=np.zeros(num_points),
        name=f"gaussian-mean-d{dimension}",
    )


def make_linearly_separable_dataset(
    num_points: int,
    num_features: int,
    margin: float = 0.5,
    seed: int = 0,
) -> Dataset:
    """A binary task separable by a random hyperplane with given margin.

    Points are drawn uniformly in ``[-1, 1]^num_features``; points whose
    (absolute, normalised) distance to the hyperplane is below
    ``margin / 2`` are resampled by pushing them away from the plane,
    guaranteeing a strictly positive margin.  Labels are in {0, 1}.
    """
    if num_points <= 0:
        raise DataError(f"num_points must be positive, got {num_points}")
    if num_features <= 0:
        raise DataError(f"num_features must be positive, got {num_features}")
    if margin < 0:
        raise DataError(f"margin must be non-negative, got {margin}")
    rng = generator_from_seed(seed)
    normal = rng.standard_normal(num_features)
    normal /= np.linalg.norm(normal)
    features = rng.uniform(-1.0, 1.0, size=(num_points, num_features))
    distances = features @ normal
    # Push points inside the margin band outward, preserving their side.
    side = np.where(distances >= 0.0, 1.0, -1.0)
    too_close = np.abs(distances) < margin / 2.0
    shift = (margin / 2.0 - np.abs(distances)) * too_close
    features = features + (side * shift)[:, None] * normal[None, :]
    labels = (features @ normal >= 0.0).astype(np.float64)
    return Dataset(features=features, labels=labels, name="linearly-separable")


def make_two_blobs_dataset(
    num_points: int,
    num_features: int,
    separation: float = 2.0,
    spread: float = 1.0,
    seed: int = 0,
) -> Dataset:
    """Two isotropic Gaussian blobs at ``+- separation/2`` along a random axis."""
    if num_points <= 1:
        raise DataError(f"num_points must exceed 1, got {num_points}")
    if num_features <= 0:
        raise DataError(f"num_features must be positive, got {num_features}")
    if separation < 0 or spread <= 0:
        raise DataError("separation must be >= 0 and spread must be > 0")
    rng = generator_from_seed(seed)
    axis = rng.standard_normal(num_features)
    axis /= np.linalg.norm(axis)
    labels = (rng.random(num_points) < 0.5).astype(np.float64)
    centers = (labels * 2.0 - 1.0)[:, None] * (separation / 2.0) * axis[None, :]
    features = centers + spread * rng.standard_normal((num_points, num_features))
    return Dataset(features=features, labels=labels, name="two-blobs")
