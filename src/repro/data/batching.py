"""Mini-batch sampling.

Each honest worker owns a :class:`BatchSampler` over the training set
and draws an i.i.d. batch per step, matching the paper's model where
every worker samples its batch from the same data distribution ``D``
(Section 2.1).  Sampling is with replacement across steps — successive
batches are independent, which is the assumption behind the i.i.d.
gradient model and behind the DP subsampling analysis.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError

__all__ = ["BatchSampler"]


class BatchSampler:
    """Draws uniform random mini-batches from a dataset.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of points per batch; must be in ``[1, len(dataset)]``.
    rng:
        Private random stream of the owning worker.
    replace_within_batch:
        If ``True``, a single batch may contain the same point twice
        (Poisson-style sampling); the default ``False`` samples each
        batch without replacement, like the paper's implementation.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        rng: np.random.Generator,
        replace_within_batch: bool = False,
    ):
        if batch_size < 1:
            raise DataError(f"batch_size must be >= 1, got {batch_size}")
        if not replace_within_batch and batch_size > dataset.num_points:
            raise DataError(
                f"batch_size {batch_size} exceeds dataset size {dataset.num_points} "
                "(use replace_within_batch=True to allow this)"
            )
        self._dataset = dataset
        self._batch_size = int(batch_size)
        self._rng = rng
        self._replace = bool(replace_within_batch)

    @property
    def batch_size(self) -> int:
        """Points per batch."""
        return self._batch_size

    @property
    def dataset(self) -> Dataset:
        """The dataset batches are drawn from."""
        return self._dataset

    def sample_indices(self) -> np.ndarray:
        """Draw one batch's ``(batch_size,)`` index vector."""
        return self._rng.choice(
            self._dataset.num_points, size=self._batch_size, replace=self._replace
        )

    def sample_index_block(self, rounds: int) -> np.ndarray:
        """Pre-draw ``rounds`` batches of indices as one ``(R, b)`` block.

        Row ``r`` is bit-identical to the ``r``-th sequential
        :meth:`sample_indices` call, and the sampler's generator ends in
        the same state either way — which is what lets the fused round
        engine pull all of a block's batch sampling out of the round
        loop (pinned by the hypothesis property suite).

        With-replacement sampling is a single vectorized draw (uniform
        ``choice`` is ``integers`` underneath, filled value-by-value in
        C order, so an ``(R, b)`` fill consumes the same stream as ``R``
        sequential ``(b,)`` fills).  Without replacement each round is
        its own partial-shuffle draw, so the block is assembled from the
        sequential draws themselves — trivially identical, and still
        hoisted out of the hot loop.
        """
        if rounds < 1:
            raise DataError(f"rounds must be >= 1, got {rounds}")
        if self._replace:
            return self._rng.choice(
                self._dataset.num_points,
                size=(rounds, self._batch_size),
                replace=True,
            )
        choice = self._rng.choice
        num_points = self._dataset.num_points
        batch_size = self._batch_size
        return np.stack(
            [choice(num_points, size=batch_size, replace=False) for _ in range(rounds)]
        )

    def sample(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw one batch; returns ``(features, labels)`` views."""
        indices = self.sample_indices()
        return self._dataset.features[indices], self._dataset.labels[indices]
