"""Dataset container and train/test splitting.

A :class:`Dataset` is an immutable pair of arrays ``(features, labels)``
with a human-readable name.  Features are always 2-D ``(num_points,
num_features)`` float64; labels are 1-D float64 (binary classification
uses values in ``{0.0, 1.0}``; regression-style tasks may use arbitrary
reals; the mean-estimation task of Theorem 1 stores the sample vectors
as features and ignores labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError

__all__ = ["Dataset", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An immutable supervised dataset.

    Attributes
    ----------
    features:
        Array of shape ``(num_points, num_features)``.
    labels:
        Array of shape ``(num_points,)``.
    name:
        Human-readable identifier, e.g. ``"phishing-synthetic"``.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = field(default="unnamed")

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.float64)
        if features.ndim != 2:
            raise DataError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {labels.shape}")
        if features.shape[0] != labels.shape[0]:
            raise DataError(
                "features and labels disagree on the number of points: "
                f"{features.shape[0]} vs {labels.shape[0]}"
            )
        if features.shape[0] == 0:
            raise DataError("dataset must contain at least one point")
        # Bypass frozen=True to store the normalised arrays.
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    @property
    def num_points(self) -> int:
        """Number of data points."""
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Number of raw input features (excludes any bias column a model adds)."""
        return int(self.features.shape[1])

    def __len__(self) -> int:
        return self.num_points

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (in order)."""
        indices = np.asarray(indices)
        if indices.ndim != 1:
            raise DataError(f"indices must be 1-D, got shape {indices.shape}")
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            name=name if name is not None else self.name,
        )

    def class_balance(self) -> dict[float, float]:
        """Return the fraction of points per distinct label value."""
        values, counts = np.unique(self.labels, return_counts=True)
        total = float(self.num_points)
        return {float(v): float(c) / total for v, c in zip(values, counts)}


def train_test_split(
    dataset: Dataset,
    train_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> tuple[Dataset, Dataset]:
    """Split ``dataset`` into train/test parts of ``train_size`` / remainder.

    The paper splits phishing's 11 055 points into 8 400 train and
    2 655 test points.

    Parameters
    ----------
    dataset:
        The dataset to split.
    train_size:
        Number of points in the training split; must satisfy
        ``0 < train_size < len(dataset)``.
    rng:
        Generator used for the permutation (ignored when ``shuffle`` is
        ``False``, in which case the first ``train_size`` points form
        the training split).
    shuffle:
        Whether to permute points before splitting.
    """
    total = dataset.num_points
    if not 0 < train_size < total:
        raise DataError(
            f"train_size must be in (0, {total}), got {train_size}"
        )
    if shuffle:
        order = rng.permutation(total)
    else:
        order = np.arange(total)
    train = dataset.subset(order[:train_size], name=f"{dataset.name}-train")
    test = dataset.subset(order[train_size:], name=f"{dataset.name}-test")
    return train, test
