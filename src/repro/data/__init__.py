"""Dataset substrate: containers, generators, splits and batch sampling.

The paper's experiments use the LIBSVM ``phishing`` dataset; this
package provides a calibrated synthetic stand-in (see
:mod:`repro.data.phishing` and DESIGN.md §2) plus the Gaussian
mean-estimation data used by Theorem 1's lower-bound construction.
"""

from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset, train_test_split
from repro.data.phishing import PHISHING_NUM_FEATURES, PHISHING_NUM_POINTS, make_phishing_dataset
from repro.data.sharding import shard_by_label, shard_iid
from repro.data.synthetic import (
    make_gaussian_mean_dataset,
    make_linearly_separable_dataset,
    make_two_blobs_dataset,
)

__all__ = [
    "BatchSampler",
    "Dataset",
    "train_test_split",
    "PHISHING_NUM_FEATURES",
    "PHISHING_NUM_POINTS",
    "make_phishing_dataset",
    "make_gaussian_mean_dataset",
    "make_linearly_separable_dataset",
    "make_two_blobs_dataset",
    "shard_by_label",
    "shard_iid",
]
