"""Uniform fault application — the one place rows are zeroed/corrupted.

Every backend calls these two helpers at the same relative point of the
round pipeline (after the codec encode, before the adversary observes),
so the float operations — and therefore the parameter traces — are
identical whether the faults are simulated (rows zeroed in place) or
real (a shard process actually died and its rows were zeroed by the
chief).
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import ResolvedFaultPlan

__all__ = ["apply_wire_faults", "reset_absent_momentum"]


def apply_wire_faults(
    resolved: ResolvedFaultPlan,
    step: int,
    submitted: np.ndarray,
    clean: np.ndarray,
    worker_ids=None,
) -> tuple[frozenset, dict]:
    """Zero absent/dropped rows and scale corrupted rows, in place.

    ``submitted``/``clean`` are the honest round matrices.  By default
    row ``i`` belongs to worker ``i``; backends whose matrices cover a
    partial cohort (the event-driven simulator) pass ``worker_ids``, the
    global worker id of each row.  Returns the ``(zeroed_workers,
    corrupted_workers)`` actually present in the matrices so the caller
    can emit telemetry and exclude rows from loss accounting.
    """
    if worker_ids is None:
        rows = {worker: worker for worker in range(submitted.shape[0])}
    else:
        rows = {worker: row for row, worker in enumerate(worker_ids)}
    zeroed = frozenset(
        worker for worker in resolved.zeroed_workers(step) if worker in rows
    )
    for worker in sorted(zeroed):
        row = rows[worker]
        submitted[row, :] = 0.0
        clean[row, :] = 0.0
    all_corrupted = resolved.corrupted_workers(step)
    corrupted = {
        worker: all_corrupted[worker]
        for worker in sorted(all_corrupted)
        if worker in rows
    }
    for worker, factor in corrupted.items():
        row = rows[worker]
        submitted[row, :] *= factor
        clean[row, :] *= factor
    return zeroed, corrupted


def reset_absent_momentum(
    resolved: ResolvedFaultPlan, step: int, workers
) -> frozenset:
    """Clear the momentum buffers of workers absent this round.

    An absent worker accumulates no velocity while away, so when it
    returns its momentum base is zero — exactly the state of the fresh
    workers a respawned multiprocess shard rebuilds.  Zeroing the live
    buffers (rather than dropping them) keeps the subsequent
    ``v <- m*v + g`` updates bit-identical to a fresh buffer.
    """
    absent = resolved.absent_workers(step)
    for index in sorted(absent):
        worker = workers[index]
        if worker._velocity_submitted is not None:
            worker._velocity_submitted[:] = 0.0
            worker._velocity_clean[:] = 0.0
    return absent
