"""Rate-based fault models: sample a :class:`FaultPlan` from rates.

Sampling is a pure function of one ``numpy.random.Generator`` (drawn
from the experiment's SeedTree at path ``"faults"``) plus the model
kwargs — so every backend, and every resume of the same experiment,
draws the *identical* schedule.  The draw order is fixed (rounds outer,
shards then workers inner; one uniform per candidate site) and does not
depend on which faults actually fire, keeping the stream stable under
rate changes of *other* kinds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = ["FAULT_MODEL_NAMES", "build_fault_plan", "sample_fault_plan"]

#: Names accepted by the ``faults`` config key / ``--faults`` flag.
FAULT_MODEL_NAMES = ("schedule", "random")


def sample_fault_plan(
    rng: np.random.Generator,
    *,
    num_rounds: int,
    num_workers: int,
    num_shards: int = 1,
    crash_rate: float = 0.0,
    hang_rate: float = 0.0,
    rejoin_after: int | None = None,
    drop_rate: float = 0.0,
    corrupt_rate: float = 0.0,
    corrupt_factor: float = 10.0,
    slow_rate: float = 0.0,
    slow_factor: float = 4.0,
) -> FaultPlan:
    """Sample a fault plan from per-round Bernoulli rates.

    ``crash_rate``/``hang_rate`` are per-shard-per-round departure
    probabilities; a departed shard rejoins ``rejoin_after`` rounds
    later (never, when ``None``).  ``drop_rate``/``corrupt_rate``/
    ``slow_rate`` are per-worker-per-round.  At least one shard is
    always kept up: a departure that would empty the cohort is skipped
    (its uniform is still drawn, so the stream stays aligned).
    """
    if num_rounds < 1:
        raise ConfigurationError(f"num_rounds must be >= 1, got {num_rounds}")
    for name, rate in (
        ("crash_rate", crash_rate),
        ("hang_rate", hang_rate),
        ("drop_rate", drop_rate),
        ("corrupt_rate", corrupt_rate),
        ("slow_rate", slow_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
    if rejoin_after is not None and rejoin_after < 1:
        raise ConfigurationError(
            f"rejoin_after must be >= 1 round, got {rejoin_after}"
        )

    events: list[FaultEvent] = []
    down_until: dict[int, int | None] = {}
    for round_index in range(1, num_rounds + 1):
        for shard_id in range(num_shards):
            until = down_until.get(shard_id)
            if shard_id in down_until:
                if until is not None and round_index >= until:
                    events.append(
                        FaultEvent(round=round_index, kind="rejoin", shard=shard_id)
                    )
                    del down_until[shard_id]
                continue  # back this round; eligible to depart again next round
            crash_draw = float(rng.random())
            hang_draw = float(rng.random())
            kind = None
            if crash_draw < crash_rate:
                kind = "crash"
            elif hang_draw < hang_rate:
                kind = "hang"
            if kind is None:
                continue
            live_shards = num_shards - len(down_until)
            if live_shards <= 1:
                continue  # never empty the cohort
            events.append(FaultEvent(round=round_index, kind=kind, shard=shard_id))
            down_until[shard_id] = (
                None if rejoin_after is None else round_index + rejoin_after
            )
        for worker in range(num_workers):
            drop_draw = float(rng.random())
            corrupt_draw = float(rng.random())
            slow_draw = float(rng.random())
            if drop_draw < drop_rate:
                events.append(
                    FaultEvent(round=round_index, kind="drop_round", worker=worker)
                )
            if corrupt_draw < corrupt_rate:
                events.append(
                    FaultEvent(
                        round=round_index,
                        kind="corrupt_payload",
                        worker=worker,
                        factor=corrupt_factor,
                    )
                )
            if slow_draw < slow_rate:
                events.append(
                    FaultEvent(
                        round=round_index,
                        kind="slow",
                        worker=worker,
                        factor=slow_factor,
                    )
                )
    return FaultPlan(events=tuple(events), num_shards=num_shards)


def build_fault_plan(
    spec,
    *,
    num_rounds: int,
    num_workers: int,
    seeds,
) -> FaultPlan:
    """Normalize a ``faults`` spec into a :class:`FaultPlan`.

    Accepted forms:

    * a :class:`FaultPlan` instance (returned as-is);
    * ``{"name": "schedule", "events": [...], "num_shards": k}`` — an
      explicit schedule (``"name"`` optional);
    * ``{"name": "random", **rates}`` — sampled from the experiment
      SeedTree at path ``"faults"`` via :func:`sample_fault_plan`;
    * a bare string naming a model (``"random"`` with default rates).
    """
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict):
        raise ConfigurationError(
            "faults must be a FaultPlan, a dict spec, or a model name; "
            f"got {type(spec).__name__}"
        )
    payload = dict(spec)
    name = payload.pop("name", "schedule" if "events" in payload else "random")
    if name not in FAULT_MODEL_NAMES:
        raise ConfigurationError(
            f"unknown fault model {name!r}; choose from {FAULT_MODEL_NAMES}"
        )
    if name == "schedule":
        return FaultPlan.from_dict(payload)
    unknown = set(payload) - {
        "num_shards",
        "crash_rate",
        "hang_rate",
        "rejoin_after",
        "drop_rate",
        "corrupt_rate",
        "corrupt_factor",
        "slow_rate",
        "slow_factor",
    }
    if unknown:
        raise ConfigurationError(
            f"unknown random fault model fields: {sorted(unknown)}"
        )
    return sample_fault_plan(
        seeds.generator("faults"),
        num_rounds=num_rounds,
        num_workers=num_workers,
        **payload,
    )
