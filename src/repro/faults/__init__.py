"""Deterministic fault injection and recovery.

The fault plane makes adversity a first-class, reproducible scenario
axis: a :class:`FaultPlan` (explicit schedule or rate-sampled from the
experiment SeedTree at path ``"faults"``) is applied identically by
every execution backend — the in-process ``Cluster``, the
discrete-event ``ClusterSimulator``, and the ``MultiprocessCluster``
where crashes and hangs are *real* process deaths followed by chief
respawn and seed-stream fast-forward.  Recovery is part of the plane:
shard rejoin (multiprocess), atomic training checkpoints with
bit-identical :meth:`TrainingLoop.resume`, and campaign
retry-with-backoff + quarantine.
"""

from repro.faults.apply import apply_wire_faults, reset_absent_momentum
from repro.faults.checkpoint import (
    CHECKPOINT_SCHEMA,
    capture_cluster_state,
    load_checkpoint,
    restore_cluster_state,
    save_checkpoint,
)
from repro.faults.models import (
    FAULT_MODEL_NAMES,
    build_fault_plan,
    sample_fault_plan,
)
from repro.faults.plan import (
    FAULT_KINDS,
    SHARD_KINDS,
    WORKER_KINDS,
    FaultEvent,
    FaultPlan,
    ResolvedFaultPlan,
    ShardOutage,
    shard_partition,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "FAULT_KINDS",
    "FAULT_MODEL_NAMES",
    "FaultEvent",
    "FaultPlan",
    "ResolvedFaultPlan",
    "SHARD_KINDS",
    "ShardOutage",
    "WORKER_KINDS",
    "apply_wire_faults",
    "build_fault_plan",
    "capture_cluster_state",
    "load_checkpoint",
    "reset_absent_momentum",
    "restore_cluster_state",
    "sample_fault_plan",
    "save_checkpoint",
    "shard_partition",
]
