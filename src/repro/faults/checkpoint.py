"""Atomic training checkpoints: full state, bit-identical resume.

A checkpoint captures *everything* the next round reads — model
parameters, server/optimizer momentum, per-worker momentum buffers, and
the exact ``bit_generator`` state of every live RNG stream (batch
samplers, DP noise, attack) — as one JSON document.  Python floats
round-trip through JSON exactly (``repr`` is the shortest round-trip
representation of a float64), and PCG64 state dicts are plain ints, so
a restored run replays the uninterrupted run bit for bit; the
differential suite pins this.

Stateless-by-construction components need no capture: the lossy
network and the wire codecs derive per-``(step, worker)`` streams from
a root seed, so their behaviour is a pure function of data already in
the checkpoint.

Writes are atomic (temp file + ``os.replace``, the ResultStore idiom),
so a crash mid-save leaves the previous checkpoint intact — which is
the whole point.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError, TrainingError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "capture_cluster_state",
    "load_checkpoint",
    "restore_cluster_state",
    "save_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.checkpoint/1"


def _generator_state(generator: np.random.Generator) -> dict:
    """The JSON-safe ``bit_generator`` state of a live stream."""
    return generator.bit_generator.state


def _restore_generator(generator: np.random.Generator, state: dict) -> None:
    generator.bit_generator.state = state


def _vector(value) -> list | None:
    return None if value is None else np.asarray(value, dtype=np.float64).tolist()


def _array_or_none(value) -> np.ndarray | None:
    return None if value is None else np.asarray(value, dtype=np.float64)


def capture_cluster_state(cluster) -> dict:
    """Snapshot an in-process ``Cluster``'s complete mutable state.

    Friend-module access by design: the checkpoint is the one consumer
    allowed to reach into the round pipeline's private state, exactly
    like ``compute_cohort`` reaches into the workers it vectorizes.
    """
    server = cluster._server
    optimizer = server._optimizer
    workers = []
    for worker in cluster._honest_workers:
        workers.append(
            {
                "velocity_submitted": _vector(worker._velocity_submitted),
                "velocity_clean": _vector(worker._velocity_clean),
                "sampler_rng": _generator_state(worker._sampler._rng),
                "noise_rng": _generator_state(worker._noise_rng),
            }
        )
    return {
        "step": cluster._step,
        "bytes_on_wire_total": cluster._bytes_on_wire_total,
        "server": {
            "parameters": server._parameters.tolist(),
            "step": server._step,
            "received_log": [matrix.tolist() for matrix in server._received_log],
        },
        "optimizer": {
            "velocity": _vector(optimizer._velocity),
            "step_count": optimizer._step_count,
        },
        "workers": workers,
        "attack_rng": (
            None
            if cluster._attack_rng is None
            else _generator_state(cluster._attack_rng)
        ),
    }


def restore_cluster_state(cluster, state: dict) -> None:
    """Inverse of :func:`capture_cluster_state`, in place."""
    if len(state["workers"]) != len(cluster._honest_workers):
        raise ConfigurationError(
            f"checkpoint has {len(state['workers'])} workers but the cluster "
            f"has {len(cluster._honest_workers)}"
        )
    server = cluster._server
    optimizer = server._optimizer
    parameters = np.asarray(state["server"]["parameters"], dtype=np.float64)
    if parameters.shape != server._parameters.shape:
        raise ConfigurationError(
            f"checkpoint parameter shape {parameters.shape} does not match "
            f"the model's {server._parameters.shape}"
        )
    server._parameters[:] = parameters
    server._step = int(state["server"]["step"])
    server._received_log = [
        np.asarray(matrix, dtype=np.float64)
        for matrix in state["server"].get("received_log", ())
    ]
    optimizer._velocity = _array_or_none(state["optimizer"]["velocity"])
    optimizer._step_count = int(state["optimizer"]["step_count"])
    for worker, snapshot in zip(cluster._honest_workers, state["workers"]):
        worker._velocity_submitted = _array_or_none(snapshot["velocity_submitted"])
        worker._velocity_clean = _array_or_none(snapshot["velocity_clean"])
        _restore_generator(worker._sampler._rng, snapshot["sampler_rng"])
        _restore_generator(worker._noise_rng, snapshot["noise_rng"])
    if state["attack_rng"] is not None:
        if cluster._attack_rng is None:
            raise ConfigurationError(
                "checkpoint carries an attack RNG state but the cluster has "
                "no attack"
            )
        _restore_generator(cluster._attack_rng, state["attack_rng"])
    cluster._step = int(state["step"])
    cluster._bytes_on_wire_total = int(state["bytes_on_wire_total"])


def save_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically write ``payload`` (stamped with the schema) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = dict(payload)
    document["schema"] = CHECKPOINT_SCHEMA
    temp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    temp.write_text(json.dumps(document), encoding="utf-8")
    os.replace(temp, path)


def load_checkpoint(path: str | Path) -> dict:
    """Read and schema-check a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists():
        raise TrainingError(f"no checkpoint at {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise TrainingError(f"corrupt checkpoint {path}: {error}") from None
    schema = payload.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise TrainingError(
            f"checkpoint {path} has schema {schema!r}, expected "
            f"{CHECKPOINT_SCHEMA!r}"
        )
    return payload
