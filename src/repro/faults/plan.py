"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a schedule of :class:`FaultEvent`\\ s — per
``(round, worker | shard)`` injections that every execution backend
(in-process ``Cluster``, ``ClusterSimulator``, ``MultiprocessCluster``)
applies identically, so a faulty run replays bit-for-bit across
backends just like a healthy one.

Event kinds and their scopes:

``crash`` / ``hang`` (shard-scoped)
    The shard's workers depart at the event round.  In the multiprocess
    runtime the shard process really dies (``os._exit``) or blocks
    until the chief's round timeout SIGKILLs it; in the in-process and
    simulated backends the same workers' rows are zeroed and their
    momentum state cleared.  A departure lasts until a matching
    ``rejoin`` (or forever).
``rejoin`` (shard-scoped)
    The departed shard returns at the event round.  The multiprocess
    chief respawns the process from its :class:`WorkerShardSpec`; the
    fresh shard fast-forwards its SeedTree streams through the missed
    rounds so post-rejoin rounds are bit-identical to the in-process
    replay.
``drop_round`` (worker-scoped)
    One worker's submission for one round is dropped (row zeroed), like
    a lost message: momentum and loss accounting continue — the worker
    computed the round, the wire lost it.
``corrupt_payload`` (worker-scoped)
    One worker's submitted (and observed-clean) row is multiplied by
    ``factor`` for one round — a deterministic stand-in for bit-flips
    or faulty scaling, applied chief-side in every backend so the float
    operations match exactly.
``slow`` (worker-scoped)
    Wall-clock only: scales the worker's simulated latency (simulator)
    or sleeps the owning shard briefly (multiprocess).  Never changes
    any numeric result — ``slow`` events are invisible to the golden
    traces by construction.

Rounds are 1-based and match ``StepResult.step`` (the first round a
cluster executes is round 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "SHARD_KINDS",
    "WORKER_KINDS",
    "FaultEvent",
    "FaultPlan",
    "ResolvedFaultPlan",
    "ShardOutage",
    "shard_partition",
]

#: All supported fault kinds.
FAULT_KINDS = ("crash", "hang", "slow", "drop_round", "corrupt_payload", "rejoin")

#: Kinds that target a shard (the whole contiguous worker slice).
SHARD_KINDS = ("crash", "hang", "rejoin")

#: Kinds that target a single worker.
WORKER_KINDS = ("slow", "drop_round", "corrupt_payload")


def shard_partition(num_honest: int, num_shards: int) -> list[tuple[int, ...]]:
    """The contiguous worker partition used by every backend.

    Must stay in lockstep with ``Experiment.build_shard_specs`` — the
    fault plane maps shard-scoped events to worker ids through this
    function, so a plan resolves to the same worker sets whether or not
    shard processes actually exist.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > num_honest:
        raise ConfigurationError(
            f"cannot split {num_honest} honest workers into {num_shards} shards"
        )
    base, extra = divmod(num_honest, num_shards)
    partition: list[tuple[int, ...]] = []
    start = 0
    for shard_id in range(num_shards):
        size = base + (1 if shard_id < extra else 0)
        partition.append(tuple(range(start, start + size)))
        start += size
    return partition


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection: ``kind`` at ``round`` on a worker/shard."""

    round: int
    kind: str
    shard: int | None = None
    worker: int | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.round < 1:
            raise ConfigurationError(
                f"fault rounds are 1-based, got round {self.round}"
            )
        if self.kind in SHARD_KINDS:
            if self.shard is None or self.worker is not None:
                raise ConfigurationError(
                    f"{self.kind!r} is shard-scoped: set shard=, not worker="
                )
            if self.shard < 0:
                raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        else:
            if self.worker is None or self.shard is not None:
                raise ConfigurationError(
                    f"{self.kind!r} is worker-scoped: set worker=, not shard="
                )
            if self.worker < 0:
                raise ConfigurationError(f"worker must be >= 0, got {self.worker}")
        factor = float(self.factor)
        if not factor == factor or factor in (float("inf"), float("-inf")):
            raise ConfigurationError(f"factor must be finite, got {self.factor}")
        if self.kind == "slow" and factor <= 0.0:
            raise ConfigurationError(f"slow factor must be > 0, got {self.factor}")

    def to_dict(self) -> dict:
        """JSON-ready form (only the fields the kind uses)."""
        payload: dict = {"round": self.round, "kind": self.kind}
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.kind in ("corrupt_payload", "slow"):
            payload["factor"] = self.factor
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault event must be a dict, got {type(payload).__name__}"
            )
        known = {"round", "kind", "shard", "worker", "factor"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault event fields: {sorted(unknown)}"
            )
        return cls(
            round=payload.get("round", 0),
            kind=payload.get("kind", ""),
            shard=payload.get("shard"),
            worker=payload.get("worker"),
            factor=payload.get("factor", 1.0),
        )


@dataclass(frozen=True)
class ShardOutage:
    """One departure interval of a shard: rounds ``[start, rejoin)``.

    ``rejoin is None`` means the shard never returns.  ``mode`` is the
    multiprocess failure mode (``"die"`` for ``crash``, ``"hang"`` for
    ``hang``); the in-process backends treat both identically.
    """

    start: int
    mode: str
    rejoin: int | None = None

    def covers(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.rejoin is None or round_index < self.rejoin


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events.

    ``num_shards`` is part of the plan, not of the backend: shard-scoped
    events name shards of *this* partition, so the plan resolves to the
    same worker sets on every backend regardless of how (or whether)
    worker processes are actually grouped.  A multiprocess experiment
    must be configured with the same shard count.
    """

    events: tuple[FaultEvent, ...] = ()
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"events must be FaultEvent, got {type(event).__name__}"
                )
            if event.shard is not None and event.shard >= self.num_shards:
                raise ConfigurationError(
                    f"event targets shard {event.shard} but the plan has "
                    f"{self.num_shards} shards"
                )
        # Validate the per-shard crash/rejoin alternation eagerly so a
        # malformed plan fails at construction, not mid-run.
        self._shard_outages()

    def _shard_outages(self) -> dict[int, list[ShardOutage]]:
        """Per-shard outage intervals from the crash/hang/rejoin events."""
        # Rejoin sorts before a same-round departure: "rejoin at r" means
        # present at r, so a new crash at r closes over the fresh state.
        ordered = sorted(
            (event for event in self.events if event.kind in SHARD_KINDS),
            key=lambda event: (event.round, event.kind != "rejoin"),
        )
        open_outage: dict[int, tuple[int, str]] = {}
        outages: dict[int, list[ShardOutage]] = {}
        for event in ordered:
            shard = event.shard
            if event.kind == "rejoin":
                if shard not in open_outage:
                    raise ConfigurationError(
                        f"shard {shard} rejoin at round {event.round} has no "
                        "preceding crash/hang"
                    )
                start, mode = open_outage.pop(shard)
                if event.round <= start:
                    raise ConfigurationError(
                        f"shard {shard} rejoin round {event.round} must come "
                        f"after its departure at round {start}"
                    )
                outages.setdefault(shard, []).append(
                    ShardOutage(start=start, mode=mode, rejoin=event.round)
                )
            else:
                if shard in open_outage:
                    raise ConfigurationError(
                        f"shard {shard} is already down at round {event.round}; "
                        "schedule a rejoin before the next crash/hang"
                    )
                mode = "die" if event.kind == "crash" else "hang"
                open_outage[shard] = (event.round, mode)
        for shard, (start, mode) in open_outage.items():
            outages.setdefault(shard, []).append(
                ShardOutage(start=start, mode=mode, rejoin=None)
            )
        for intervals in outages.values():
            intervals.sort(key=lambda outage: outage.start)
        return outages

    @property
    def max_round(self) -> int:
        """The last round any event references (0 for an empty plan)."""
        return max((event.round for event in self.events), default=0)

    def to_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a dict, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"num_shards", "events", "name"}
        if unknown:
            raise ConfigurationError(f"unknown fault plan fields: {sorted(unknown)}")
        events = payload.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise ConfigurationError("fault plan 'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(event) for event in events),
            num_shards=payload.get("num_shards", 1),
        )

    def resolve(self, num_honest: int) -> "ResolvedFaultPlan":
        """Bind the plan to a cohort size, mapping shards to worker ids."""
        partition = shard_partition(num_honest, self.num_shards)
        for event in self.events:
            if event.worker is not None and event.worker >= num_honest:
                raise ConfigurationError(
                    f"event targets worker {event.worker} but the cohort has "
                    f"{num_honest} honest workers"
                )
        return ResolvedFaultPlan(
            plan=self, num_honest=num_honest, partition=tuple(partition)
        )


@dataclass(frozen=True)
class ResolvedFaultPlan:
    """A :class:`FaultPlan` bound to a cohort: per-round lookups.

    Every backend queries this one object, so the notion of "who is
    absent in round r" is computed once, identically, everywhere.
    """

    plan: FaultPlan
    num_honest: int
    partition: tuple[tuple[int, ...], ...]
    _outages: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_outages", self.plan._shard_outages())

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def shard_outages(self, shard_id: int) -> tuple[ShardOutage, ...]:
        """Departure intervals of ``shard_id`` (possibly empty)."""
        return tuple(self._outages.get(shard_id, ()))

    def down_shards(self, round_index: int) -> frozenset[int]:
        """Shards departed (crashed/hung, not yet rejoined) in this round."""
        return frozenset(
            shard
            for shard, intervals in self._outages.items()
            if any(outage.covers(round_index) for outage in intervals)
        )

    def rejoining_shards(self, round_index: int) -> tuple[int, ...]:
        """Shards whose rejoin happens exactly at this round (sorted)."""
        rejoining = set()
        for shard, intervals in self._outages.items():
            for outage in intervals:
                if outage.rejoin == round_index:
                    rejoining.add(shard)
        return tuple(sorted(rejoining))

    def absent_workers(self, round_index: int) -> frozenset[int]:
        """Workers whose shard is down this round (momentum resets, loss
        excluded) — does *not* include ``drop_round`` targets."""
        absent: set[int] = set()
        for shard in self.down_shards(round_index):
            absent.update(self.partition[shard])
        return frozenset(absent)

    def dropped_workers(self, round_index: int) -> frozenset[int]:
        """Workers whose submission is dropped this round (row zeroed,
        momentum and loss accounting continue)."""
        return frozenset(
            event.worker
            for event in self.plan.events
            if event.kind == "drop_round" and event.round == round_index
        )

    def zeroed_workers(self, round_index: int) -> frozenset[int]:
        """All rows zeroed on the wire this round (absent + dropped)."""
        return self.absent_workers(round_index) | self.dropped_workers(round_index)

    def corrupted_workers(self, round_index: int) -> dict[int, float]:
        """Worker -> multiplicative factor for this round's corruptions."""
        return {
            event.worker: float(event.factor)
            for event in self.plan.events
            if event.kind == "corrupt_payload" and event.round == round_index
        }

    def slow_factor(self, round_index: int, worker: int) -> float:
        """Latency scale for (round, worker); 1.0 when unaffected."""
        factor = 1.0
        for event in self.plan.events:
            if (
                event.kind == "slow"
                and event.round == round_index
                and event.worker == worker
            ):
                factor *= float(event.factor)
        return factor

    def live_workers(self, round_index: int) -> tuple[int, ...]:
        """Honest workers present this round (sorted), for loss means."""
        absent = self.absent_workers(round_index)
        return tuple(
            worker for worker in range(self.num_honest) if worker not in absent
        )

    def shard_spec_fields(self, shard_id: int, start_round: int = 1) -> dict:
        """``WorkerShardSpec`` overrides for a shard (re)spawned at
        ``start_round``.

        Maps the shard's next outage onto the spec's failure-injection
        seam (``fail_step``/``fail_mode``), its workers' remaining
        ``slow`` events onto ``slow_steps``, and sets ``start_step``
        (the seed-stream fast-forward of a respawn; 0 for the initial
        spawn at ``start_round=1``).
        """
        if not 0 <= shard_id < len(self.partition):
            raise ConfigurationError(
                f"unknown shard {shard_id} (plan has {len(self.partition)})"
            )
        upcoming = [
            outage
            for outage in self.shard_outages(shard_id)
            if outage.start >= start_round
        ]
        workers = set(self.partition[shard_id])
        return {
            "start_step": start_round - 1,
            "fail_step": upcoming[0].start if upcoming else None,
            "fail_mode": upcoming[0].mode if upcoming else "die",
            "slow_steps": tuple(
                (event.round, float(event.factor))
                for event in self.plan.events
                if event.kind == "slow"
                and event.worker in workers
                and event.round >= start_round
            ),
        }
