"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can use a single ``except`` clause to
distinguish library errors from programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class PrivacyError(ReproError):
    """A differential-privacy parameter or mechanism is invalid.

    Examples: a privacy budget outside the ``(0, 1)`` range required by
    the Gaussian mechanism, a non-positive sensitivity, or an accountant
    asked to compose zero steps.
    """


class AggregationError(ReproError):
    """A gradient aggregation rule received inputs it cannot handle.

    Examples: an empty gradient list, mismatched gradient dimensions, or
    an ``(n, f)`` pair violating the GAR's precondition (for instance
    Krum requires ``n > 2 f + 2``).
    """


class ResilienceError(ReproError):
    """A Byzantine-resilience precondition does not hold."""


class DataError(ReproError):
    """A dataset is malformed or a requested split/batch is impossible."""


class TrainingError(ReproError):
    """The distributed training loop entered an unrecoverable state.

    Raised, for instance, when the model parameters become non-finite
    (NaN or infinity), which indicates divergence.
    """


class DegradedRunError(TrainingError):
    """Every honest worker has departed: the round would aggregate only
    Byzantine submissions (or all-zero rows), which silently trains the
    model on attacker-controlled data.  Raised by every execution
    backend instead of continuing; ``repro run`` maps it to exit code 1
    (a degraded result, distinct from a configuration error).
    """
