"""The wire-codec contract: gradient compression between worker and server.

A :class:`GradientCodec` sits on the wire path — after the honest
workers (and the adversary) produce their submissions, before the
network delivers them to the server.  Because the parameter server
consumes plain float vectors, a codec here is a *simulate-the-wire*
transform: :meth:`~GradientCodec.encode_row` returns the reconstruction
the server would decode from the wire message, plus the **exact** byte
count that message would occupy on a real link.  Lossless codecs
(``lossless = True``) reconstruct the input bit-for-bit; lossy codecs
(top-k, sign, quantizers) return the degraded vector the downstream GAR
actually has to aggregate.

Determinism contract (the same invariant
:class:`repro.distributed.network.LossyNetwork` pins for drops): the
encoding of message ``(step, worker)`` is a pure function of the
codec's root seed, ``step`` and ``worker`` — never of the order in
which messages are encoded, and never of which other workers
participate.  This is what lets the synchronous cluster (whole round at
once), the multiprocess runtime (per-shard row blocks) and the
discrete-event simulator (partial cohorts, one wake at a time) replay
the same compressed run bit-identically.

Byte-count conventions, shared by every codec and the accounting
tests: a raw float is 8 bytes, a coordinate index is 4 bytes, a scale
or other per-message float header is 8 bytes, and packed bit payloads
round up to whole bytes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import SeedTree
from repro.typing import Matrix, Vector

__all__ = ["GradientCodec"]

FLOAT_BYTES = 8
INDEX_BYTES = 4


class GradientCodec:
    """Base class for wire-path gradient codecs.

    Parameters
    ----------
    rng:
        Legacy seeding surface (mirrors ``LossyNetwork``): a generator
        whose *first draw* fixes the codec's root seed.  Consumed
        exactly once at construction, so two codecs built from
        identically-seeded generators encode identically.
    seed:
        Direct root seed; takes precedence over ``rng``.  Deterministic
        codecs (``stochastic = False``) never draw randomness and
        default to seed 0 when neither is given; stochastic codecs
        require one or the other.
    """

    #: Registry name of the codec (set by subclasses).
    name: str = "?"
    #: Whether ``encode`` reconstructs its input bit-for-bit.
    lossless: bool = False
    #: Whether the codec draws per-message randomness.
    stochastic: bool = False

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ):
        if seed is None and rng is not None:
            seed = int(rng.integers(0, 2**63))
        if seed is None:
            if self.stochastic:
                raise ConfigurationError(
                    f"codec {self.name!r} is stochastic and needs rng or seed"
                )
            seed = 0
        self._seeds = SeedTree(int(seed))

    @property
    def seed(self) -> int:
        """The codec's root seed (the whole of its mutable-free state)."""
        return self._seeds.root_seed

    def _message_generator(self, step: int, worker: int) -> np.random.Generator:
        """The private stream of message ``(step, worker)``.

        A fresh generator per message makes variable draw counts
        (rejection sampling) safe: no message's randomness can shift
        another's, whatever the encoding order.
        """
        return self._seeds.generator("enc", int(step), int(worker))

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Encode one worker's submission for one round.

        Returns ``(wire_vector, nbytes)``: the reconstruction the
        server receives and the exact encoded size in bytes.  Must not
        mutate ``vector`` (submissions may alias live engine buffers).
        """
        raise NotImplementedError

    def encode_block(
        self, matrix: Matrix, step: int, workers: Sequence[int]
    ) -> tuple[Matrix, np.ndarray]:
        """Encode a stacked block of submissions for one round.

        ``matrix[i]`` is worker ``workers[i]``'s submission.  Returns
        ``(wire_matrix, nbytes)`` with ``nbytes`` an int64 array of
        per-row encoded sizes.  The base implementation loops over
        :meth:`encode_row`, so batch encoding is per-row encoding by
        construction; overrides must preserve that equivalence
        bit-for-bit (the property suite enforces it).
        """
        workers = [int(worker) for worker in workers]
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != len(workers):
            raise ConfigurationError(
                f"encode_block needs one row per worker: matrix has shape "
                f"{matrix.shape} for {len(workers)} worker id(s)"
            )
        encoded = np.empty_like(matrix)
        nbytes = np.empty(len(workers), dtype=np.int64)
        for row, worker in enumerate(workers):
            wire, count = self.encode_row(matrix[row], step, worker)
            encoded[row] = wire
            nbytes[row] = count
        return encoded, nbytes

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"
