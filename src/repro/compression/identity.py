"""The identity codec: raw floats on the wire.

The do-nothing member of the family, kept for two reasons: it prices
the uncompressed baseline (8 bytes per coordinate, the cost every
other codec is measured against), and it pins the integration contract
— a run with ``codec="identity"`` must be bit-identical to a run with
no codec at all, which the golden-trace and differential suites
enforce.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compression.base import FLOAT_BYTES, GradientCodec
from repro.typing import Matrix, Vector

__all__ = ["IdentityCodec"]


class IdentityCodec(GradientCodec):
    """Sends every coordinate as a raw 8-byte float."""

    name = "identity"
    lossless = True
    stochastic = False

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Return the vector unchanged; 8 bytes per coordinate."""
        del step, worker
        return vector, FLOAT_BYTES * int(vector.shape[-1])

    def encode_block(
        self, matrix: Matrix, step: int, workers: Sequence[int]
    ) -> tuple[Matrix, np.ndarray]:
        """Return the block *as the same object* — the engine's fast path.

        Returning the identical matrix (not a copy) lets callers skip
        the write-back entirely, so an identity-codec round does not
        even pay a memcpy over the no-codec round it must match.
        """
        del step
        return matrix, np.full(
            len(workers), FLOAT_BYTES * int(matrix.shape[-1]), dtype=np.int64
        )
