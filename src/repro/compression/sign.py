"""SignSGD-style sign compression: one bit per coordinate plus a scale.

Each message carries the sign bitmask of the gradient and a single
8-byte scale — the mean absolute value — so the server reconstructs
``±scale`` per coordinate (the L1-normalised variant of signSGD, which
keeps the update magnitude comparable to the uncompressed gradient).
Deterministic and extremely cheap on the wire: ``ceil(d/8) + 8`` bytes,
a ~38x reduction at d = 100.

Biased by construction (the reconstruction is never the input unless
every coordinate shares one magnitude), which is exactly why the
benchmark pairs its bytes-on-wire win with the measured accuracy delta.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import FLOAT_BYTES, GradientCodec
from repro.typing import Vector

__all__ = ["SignCodec"]


class SignCodec(GradientCodec):
    """Sends sign bits and one mean-magnitude scale per message."""

    name = "sign"
    lossless = False
    stochastic = False

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Reconstruct ``sign(v) * mean|v|`` (zeros encode as +).

        Bytes: packed sign bitmask (``ceil(d/8)``) + the 8-byte scale.
        """
        del step, worker
        dimension = int(vector.shape[-1])
        nbytes = -(-dimension // 8) + FLOAT_BYTES
        scale = float(np.abs(vector).mean()) if dimension else 0.0
        if scale == 0.0:
            return np.zeros_like(vector), nbytes
        return np.where(vector < 0.0, -scale, scale), nbytes
