"""Wire-path gradient compression (the ``codec`` registry family).

Codecs sit between worker submission and server aggregation on every
execution path — the synchronous :class:`~repro.distributed.cluster.Cluster`
and its fused engine, the multiprocess wire plane, and the
discrete-event simulator — encoding each message deterministically per
``(step, worker)`` so all three replay a compressed run bit-identically.
See :mod:`repro.compression.base` for the contract and the byte-count
conventions shared with the accounting tests.
"""

from repro.compression.base import GradientCodec
from repro.compression.dgauss import DiscreteGaussianCodec, sample_discrete_gaussian
from repro.compression.identity import IdentityCodec
from repro.compression.quantize import StochasticQuantizationCodec
from repro.compression.sign import SignCodec
from repro.compression.sparsify import TopKCodec

__all__ = [
    "DiscreteGaussianCodec",
    "GradientCodec",
    "IdentityCodec",
    "SignCodec",
    "StochasticQuantizationCodec",
    "TopKCodec",
    "sample_discrete_gaussian",
]
