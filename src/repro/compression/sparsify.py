"""Top-k sparsification: keep the k largest-magnitude coordinates.

The classic bandwidth reducer — the wire message is k (index, value)
pairs, everything else reconstructs to zero.  Deterministic: ties in
magnitude break by coordinate order (stable argsort), so the encoding
is a pure function of the input vector and the codec draws no
randomness at all.

The reconstruction error is the best possible for any k-sparse
approximation: ``||enc(v) - v||² = sum of the d-k smallest squared
magnitudes ≤ (1 - k/d) ||v||²`` — the bound the property suite checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compression.base import FLOAT_BYTES, INDEX_BYTES, GradientCodec
from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = ["TopKCodec"]


class TopKCodec(GradientCodec):
    """Keeps the ``k`` largest-magnitude coordinates per message.

    Parameters
    ----------
    k:
        Exact number of coordinates to keep.  ``None`` (default)
        derives it from ``fraction``.
    fraction:
        Fraction of coordinates kept when ``k`` is ``None``:
        ``k = max(1, ceil(fraction * d))``.  The default 1/8 keeps one
        coordinate in eight — a ~5.3x bytes-on-wire reduction once the
        4-byte indices are paid for.
    """

    name = "top-k"
    lossless = False
    stochastic = False

    def __init__(
        self,
        k: int | None = None,
        fraction: float = 0.125,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ):
        super().__init__(rng, seed=seed)
        if k is not None and int(k) < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not 0.0 < float(fraction) <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self._k = int(k) if k is not None else None
        self._fraction = float(fraction)

    @property
    def k(self) -> int | None:
        """The fixed support size, or ``None`` when fraction-derived."""
        return self._k

    @property
    def fraction(self) -> float:
        """The fraction of coordinates kept when ``k`` is unset."""
        return self._fraction

    def support_size(self, dimension: int) -> int:
        """The number of coordinates kept for a ``dimension``-long vector."""
        if self._k is not None:
            return min(self._k, int(dimension))
        return max(1, math.ceil(self._fraction * int(dimension)))

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Zero all but the k largest-magnitude coordinates.

        Bytes: k 8-byte values + k 4-byte indices.
        """
        del step, worker
        dimension = int(vector.shape[-1])
        k = self.support_size(dimension)
        if k >= dimension:
            return vector.copy(), dimension * (FLOAT_BYTES + INDEX_BYTES)
        keep = np.argsort(-np.abs(vector), kind="stable")[:k]
        encoded = np.zeros_like(vector)
        encoded[keep] = vector[keep]
        return encoded, k * (FLOAT_BYTES + INDEX_BYTES)
