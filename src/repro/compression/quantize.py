"""QSGD-style stochastic quantization: unbiased low-bit gradients.

Each coordinate is scaled by the message's L∞ norm and stochastically
rounded to one of ``levels`` magnitude steps per sign, so the
reconstruction is an *unbiased* estimate of the input —
``E[enc(v)] = v`` coordinate-wise, the property the Hypothesis suite
checks by averaging over seeds.  Unbiasedness is what lets averaging
GARs tolerate the codec with no drift; the price is variance, which
the benchmark's accuracy column makes visible.

Wire format: one 8-byte scale plus ``ceil(log2(2·levels + 1))`` bits
per coordinate (sign and magnitude level share one symbol).  An
all-zero message sends just its scale.

Randomness: message ``(step, worker)`` uses its own slice of the
per-step stream — the ``worker``-th block of ``d`` uniforms — so the
draw is a pure function of (root seed, step, worker) however messages
are grouped, while a whole round costs a single generator
construction.  This mirrors ``LossyNetwork._step_uniforms`` exactly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.compression.base import FLOAT_BYTES, GradientCodec
from repro.exceptions import ConfigurationError
from repro.typing import Matrix, Vector

__all__ = ["StochasticQuantizationCodec"]


class StochasticQuantizationCodec(GradientCodec):
    """Unbiased stochastic quantization to ``levels`` magnitude steps.

    Parameters
    ----------
    levels:
        Quantization levels per sign (QSGD's ``s``).  The default 16
        spends 6 bits per coordinate (33 symbols), a ~10x reduction
        over raw floats before the scale header.
    """

    name = "qsgd"
    lossless = False
    stochastic = True

    def __init__(
        self,
        levels: int = 16,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ):
        super().__init__(rng, seed=seed)
        if int(levels) < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self._levels = int(levels)

    @property
    def levels(self) -> int:
        """Quantization levels per sign."""
        return self._levels

    @property
    def bits_per_coordinate(self) -> int:
        """Wire bits per coordinate: one symbol in {-levels, ..., +levels}."""
        return max(1, math.ceil(math.log2(2 * self._levels + 1)))

    def _row_bytes(self, dimension: int) -> int:
        return FLOAT_BYTES + -(-dimension * self.bits_per_coordinate // 8)

    def _message_uniforms(self, step: int, worker: int, dimension: int) -> np.ndarray:
        """Message ``(step, worker)``'s ``dimension`` rounding uniforms.

        The ``worker``-th block of the per-step stream; every message
        of a round has the same dimension, so blocks never overlap.
        """
        worker = int(worker)
        draws = self._seeds.generator("enc", int(step)).random(
            (worker + 1) * dimension
        )
        return draws[worker * dimension :]

    def _quantize(self, vector: Vector, uniforms: np.ndarray) -> tuple[Vector, int]:
        dimension = int(vector.shape[-1])
        scale = float(np.abs(vector).max()) if dimension else 0.0
        if scale == 0.0:
            # Nothing but the scale header goes on the wire.
            return np.zeros_like(vector), FLOAT_BYTES
        magnitudes = np.abs(vector) * (self._levels / scale)
        lower = np.floor(magnitudes)
        level = lower + (uniforms < magnitudes - lower)
        encoded = np.sign(vector) * level * (scale / self._levels)
        return encoded, self._row_bytes(dimension)

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Stochastically round one message; unbiased in expectation."""
        dimension = int(vector.shape[-1])
        uniforms = self._message_uniforms(step, worker, dimension)
        return self._quantize(vector, uniforms)

    def encode_block(
        self, matrix: Matrix, step: int, workers: Sequence[int]
    ) -> tuple[Matrix, np.ndarray]:
        """Batch encode with one generator construction per round.

        Bit-identical to the per-row path: each row consumes exactly
        its worker's block of the per-step stream.
        """
        workers = [int(worker) for worker in workers]
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != len(workers):
            raise ConfigurationError(
                f"encode_block needs one row per worker: matrix has shape "
                f"{matrix.shape} for {len(workers)} worker id(s)"
            )
        dimension = int(matrix.shape[-1])
        encoded = np.empty_like(matrix)
        nbytes = np.empty(len(workers), dtype=np.int64)
        draws = None
        if workers and dimension:
            draws = self._seeds.generator("enc", int(step)).random(
                (max(workers) + 1) * dimension
            )
        for row, worker in enumerate(workers):
            uniforms = (
                draws[worker * dimension : (worker + 1) * dimension]
                if draws is not None
                else np.empty(0)
            )
            encoded[row], nbytes[row] = self._quantize(matrix[row], uniforms)
        return encoded, nbytes
