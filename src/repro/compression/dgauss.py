"""Discrete-Gaussian lattice codec per D2P-Fed.

D2P-Fed's wire mechanism: quantize each coordinate onto an integer
lattice of width ``granularity`` with *unbiased* stochastic rounding,
then (optionally) add integer noise drawn from the discrete Gaussian,
so the message that crosses the wire is a vector of small integers that
simultaneously compresses and contributes a rigorous DP mechanism on
the discrete domain.  With ``sigma = 0`` it degrades to a pure
unbiased lattice quantizer.

The discrete-Gaussian sampler is the Canonne–Kapralov–Steinke
rejection scheme (discrete-Laplace proposals, Gaussian acceptance),
vectorized over rejection batches.  Its draw count per message is
variable, which is exactly why this codec uses a *private* generator
per ``(step, worker)`` — no message's rejections can shift another
message's randomness, whatever the encoding order.

Wire bytes are data-dependent: the integers of a row are framed with
just enough bits for the row's largest magnitude (sign included), plus
an 8-byte header for the frame descriptor — so the accounting tests
can recompute the exact count from the encoded row alone.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import FLOAT_BYTES, GradientCodec
from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = ["DiscreteGaussianCodec", "sample_discrete_gaussian"]


def sample_discrete_gaussian(
    rng: np.random.Generator, sigma: float, size: int
) -> np.ndarray:
    """``size`` exact discrete-Gaussian draws with parameter ``sigma``.

    Canonne–Kapralov–Steinke: propose from the discrete Laplace with
    scale ``t = floor(sigma) + 1`` (difference of two geometrics),
    accept with probability ``exp(-(|y| - sigma²/t)² / (2 sigma²))``.
    Vectorized: each loop iteration proposes a whole batch and keeps
    the accepted prefix, so the expected number of iterations is O(1).
    """
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.zeros(size, dtype=np.int64)
    t = int(np.floor(sigma)) + 1
    geometric_p = -np.expm1(-1.0 / t)  # 1 - exp(-1/t), stably
    log_keep = np.log1p(-geometric_p)
    out = np.empty(size, dtype=np.int64)
    filled = 0
    while filled < size:
        batch = 2 * (size - filled) + 16
        uniforms = rng.random((3, batch))
        geometric = np.floor(np.log1p(-uniforms[:2]) / log_keep).astype(np.int64)
        proposal = geometric[0] - geometric[1]
        accept = np.exp(
            -((np.abs(proposal) - sigma * sigma / t) ** 2) / (2.0 * sigma * sigma)
        )
        accepted = proposal[uniforms[2] < accept]
        take = min(accepted.size, size - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out


class DiscreteGaussianCodec(GradientCodec):
    """Stochastic lattice rounding plus discrete-Gaussian wire noise.

    Parameters
    ----------
    granularity:
        Lattice width in gradient units (> 0).  The default 1/128 keeps
        quantization error well under typical DP noise scales.
    sigma:
        Discrete-Gaussian parameter in gradient units (>= 0); the
        integer-lattice parameter is ``sigma / granularity``.  Zero
        (the default) sends the rounded lattice point unnoised.
    """

    name = "discrete-gaussian"
    lossless = False
    stochastic = True

    def __init__(
        self,
        granularity: float = 1.0 / 128.0,
        sigma: float = 0.0,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
    ):
        super().__init__(rng, seed=seed)
        if not float(granularity) > 0.0:
            raise ConfigurationError(f"granularity must be > 0, got {granularity}")
        if float(sigma) < 0.0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._granularity = float(granularity)
        self._sigma = float(sigma)

    @property
    def granularity(self) -> float:
        """Lattice width in gradient units."""
        return self._granularity

    @property
    def sigma(self) -> float:
        """Discrete-Gaussian parameter in gradient units."""
        return self._sigma

    def row_bytes(self, levels: np.ndarray) -> int:
        """Exact frame size of one row of lattice integers.

        ``bit_length`` of the largest magnitude plus a sign bit per
        coordinate (minimum 1 bit), rounded up to whole bytes, plus the
        8-byte frame header.  Recomputable from the encoded row via
        ``round(row / granularity)`` — the accounting tests do.
        """
        levels = np.asarray(levels)
        max_abs = int(np.abs(levels).max()) if levels.size else 0
        bits = max(1, max_abs.bit_length() + 1)
        return FLOAT_BYTES + -(-levels.size * bits // 8)

    def encode_row(self, vector: Vector, step: int, worker: int) -> tuple[Vector, int]:
        """Round to the lattice (unbiased) and add discrete noise."""
        dimension = int(vector.shape[-1])
        generator = self._message_generator(step, worker)
        scaled = vector / self._granularity
        lower = np.floor(scaled)
        levels = (lower + (generator.random(dimension) < scaled - lower)).astype(
            np.int64
        )
        if self._sigma > 0.0:
            levels = levels + sample_discrete_gaussian(
                generator, self._sigma / self._granularity, dimension
            )
        return levels * self._granularity, self.row_bytes(levels)
