"""Shared type aliases and small validation helpers.

The library passes gradients around as 1-D ``float64`` numpy arrays and
stacks of gradients as 2-D arrays of shape ``(n_workers, d)``.  The
helpers here centralise the shape/dtype checks so every module reports
malformed inputs the same way.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "Vector",
    "Matrix",
    "GradientStack",
    "as_vector",
    "as_gradient_matrix",
    "as_gradient_stack",
    "check_finite",
]

# A model parameter vector or a single gradient: shape (d,).
Vector = np.ndarray

# A stack of gradients: shape (n, d).
Matrix = np.ndarray

# A batch of gradient matrices: shape (B, n, d), one (n, d) round per slice.
GradientStack = np.ndarray


def as_vector(value: Sequence[float] | np.ndarray, name: str = "vector") -> Vector:
    """Coerce ``value`` to a 1-D float64 array, validating its shape."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    return array


def as_gradient_matrix(
    gradients: Sequence[np.ndarray] | np.ndarray, name: str = "gradients"
) -> Matrix:
    """Stack a sequence of gradient vectors into an ``(n, d)`` matrix.

    Raises
    ------
    ValueError
        If the sequence is empty or the gradients disagree on dimension.
    """
    if isinstance(gradients, np.ndarray) and gradients.ndim == 2:
        matrix = np.asarray(gradients, dtype=np.float64)
    else:
        rows = list(gradients)
        if not rows:
            raise ValueError(f"{name} must contain at least one gradient")
        dims = {np.asarray(row).shape for row in rows}
        if len(dims) != 1 or any(len(shape) != 1 for shape in dims):
            raise ValueError(f"{name} must all be 1-D with equal length, got shapes {dims}")
        matrix = np.stack([np.asarray(row, dtype=np.float64) for row in rows])
    if matrix.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return matrix


def as_gradient_stack(
    stacks: Sequence[np.ndarray] | np.ndarray, name: str = "gradients_stack"
) -> GradientStack:
    """Coerce a batch of gradient matrices into a ``(B, n, d)`` array.

    Accepts a 3-D array or a sequence of equal-shaped ``(n, d)``
    matrices.

    Raises
    ------
    ValueError
        If the batch is empty or the matrices disagree on shape.
    """
    if isinstance(stacks, np.ndarray):
        stack = np.asarray(stacks, dtype=np.float64)
    else:
        matrices = list(stacks)
        if not matrices:
            raise ValueError(f"{name} must contain at least one gradient matrix")
        shapes = {np.asarray(matrix).shape for matrix in matrices}
        if len(shapes) != 1:
            raise ValueError(
                f"{name} must all share one (n, d) shape, got shapes {shapes}"
            )
        stack = np.stack([np.asarray(matrix, dtype=np.float64) for matrix in matrices])
    if stack.ndim != 3 or stack.size == 0:
        raise ValueError(
            f"{name} must be a non-empty (B, n, d) batch, got shape {stack.shape}"
        )
    return stack


def check_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array
