"""Run-time VN-ratio monitoring: Eq. (8) measured on live training.

The feasibility results (Table 1) are worst-case statements.  This
module measures the *actual* per-round VN ratio of a training run —
from the honest workers' clean and submitted gradients the cluster
instrumentation exposes — and certifies each round against the GAR's
``k_F(n, f)``.  It is the empirical bridge between the theory
(:mod:`repro.core`) and the simulation (:mod:`repro.distributed`):
on the paper's b = 50 configuration the clean trajectory satisfies the
condition while the DP trajectory violates it by ~an order of
magnitude, round after round.

The per-round estimate uses the cross-worker sample of honest gradients
(``n - f`` i.i.d. draws of the same distribution ``G_t``), with the
true gradient approximated by the clean cross-worker mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.vn_ratio import empirical_gradient_moments, vn_ratio_from_moments
from repro.distributed.cluster import Cluster, StepResult
from repro.exceptions import ConfigurationError

__all__ = ["VNTrajectory", "VNRatioMonitor"]


@dataclass
class VNTrajectory:
    """Per-round VN ratios of one training run."""

    steps: list[int] = field(default_factory=list)
    clean_ratios: list[float] = field(default_factory=list)
    submitted_ratios: list[float] = field(default_factory=list)
    k_f: float = float("inf")

    @property
    def clean_violation_fraction(self) -> float:
        """Fraction of rounds where the *clean* ratio exceeds ``k_F``."""
        return self._violations(self.clean_ratios)

    @property
    def submitted_violation_fraction(self) -> float:
        """Fraction of rounds where the *submitted* (noisy) ratio exceeds ``k_F``."""
        return self._violations(self.submitted_ratios)

    def _violations(self, ratios: list[float]) -> float:
        if not ratios:
            raise ConfigurationError("no rounds recorded")
        exceeded = sum(1 for ratio in ratios if ratio > self.k_f)
        return exceeded / len(ratios)

    def median_ratio(self, kind: str = "submitted") -> float:
        """Median per-round ratio (``"clean"`` or ``"submitted"``)."""
        ratios = self.clean_ratios if kind == "clean" else self.submitted_ratios
        if not ratios:
            raise ConfigurationError("no rounds recorded")
        return float(np.median(ratios))

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"VN trajectory over {len(self.steps)} rounds vs k_F = {self.k_f:.3g}: "
            f"clean median {self.median_ratio('clean'):.3g} "
            f"({self.clean_violation_fraction:.0%} rounds violate), "
            f"submitted median {self.median_ratio('submitted'):.3g} "
            f"({self.submitted_violation_fraction:.0%} rounds violate)"
        )


class VNRatioMonitor:
    """Observes a cluster and records per-round VN ratios.

    Usage::

        monitor = VNRatioMonitor(cluster)
        for _ in range(steps):
            monitor.observe(cluster.step())
        print(monitor.trajectory.summary())

    Rounds whose honest-mean gradient is (numerically) zero are skipped —
    the ratio is undefined there (Eq. 2 divides by ``||E G_t||``).
    """

    def __init__(self, cluster: Cluster, zero_threshold: float = 1e-15):
        if cluster.num_honest < 2:
            raise ConfigurationError(
                "VN estimation needs at least 2 honest workers for a "
                "cross-worker variance estimate"
            )
        self._trajectory = VNTrajectory(k_f=cluster.server.gar.k_f())
        self._zero_threshold = float(zero_threshold)

    @property
    def trajectory(self) -> VNTrajectory:
        """The recorded trajectory (live view)."""
        return self._trajectory

    def observe(self, result: StepResult) -> None:
        """Record one round's ratios from the cluster's instrumentation."""
        clean_variance, clean_mean_norm = empirical_gradient_moments(
            result.honest_clean
        )
        if clean_mean_norm <= self._zero_threshold:
            return
        submitted_variance, _ = empirical_gradient_moments(result.honest_submitted)
        self._trajectory.steps.append(result.step)
        self._trajectory.clean_ratios.append(
            vn_ratio_from_moments(clean_variance, clean_mean_norm)
        )
        # Eq. (8)'s left-hand side: noisy variance over the *true*
        # gradient norm (estimated from the clean mean).
        self._trajectory.submitted_ratios.append(
            vn_ratio_from_moments(submitted_variance, clean_mean_norm)
        )
