"""Gradient-inversion leakage: why the workers need DP at all.

Zhu et al. (2019) showed gradients leak training samples to a curious
parameter server.  For the paper's model class the leak is *exact*:
a bias-augmented linear model's per-example gradient is

.. math::

    g = c \\cdot (x, 1)

for a scalar ``c`` (e.g. ``c = 2 (p - y) p (1 - p)`` for MSE-logistic).
So from a single-example gradient the server recovers the sample by
dividing out the bias coordinate: ``x = g[:-1] / g[-1]``.

:func:`gradient_inversion_study` quantifies how well this works against
a worker with batch size 1, with and without the DP mechanism — the
reconstruction error jumps by orders of magnitude once the calibrated
noise is on, turning the abstract ``(epsilon, delta)`` guarantee into a
measurable defence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.privacy.clipping import clip_by_l2_norm
from repro.privacy.mechanisms import NoiseMechanism
from repro.rng import SeedTree
from repro.typing import Vector

__all__ = [
    "invert_linear_gradient",
    "reconstruction_error",
    "LeakageReport",
    "gradient_inversion_study",
]

# Bias coordinates smaller than this make the division meaningless.
_MIN_BIAS_MAGNITUDE = 1e-12


def invert_linear_gradient(gradient: Vector) -> Vector:
    """Recover the input features from a single-example linear gradient.

    Assumes the model folds the bias in as a trailing constant-1
    feature, so ``gradient = c * (x, 1)`` and ``x = g[:-1] / g[-1]``.

    Raises
    ------
    ConfigurationError
        If the bias coordinate is (numerically) zero — the example's
        gradient carries no recoverable signal.
    """
    gradient = np.asarray(gradient, dtype=np.float64)
    if gradient.ndim != 1 or gradient.shape[0] < 2:
        raise ConfigurationError(
            f"gradient must be 1-D with at least 2 entries, got shape {gradient.shape}"
        )
    bias_coordinate = float(gradient[-1])
    if abs(bias_coordinate) < _MIN_BIAS_MAGNITUDE:
        raise ConfigurationError(
            "bias coordinate of the gradient is ~0; the example cannot be inverted"
        )
    return gradient[:-1] / bias_coordinate


def reconstruction_error(true_features: Vector, reconstructed: Vector) -> float:
    """Relative L2 error ``||x - x_hat|| / max(||x||, 1e-12)``."""
    true_features = np.asarray(true_features, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if true_features.shape != reconstructed.shape:
        raise ConfigurationError(
            f"shape mismatch: {true_features.shape} vs {reconstructed.shape}"
        )
    scale = max(float(np.linalg.norm(true_features)), 1e-12)
    return float(np.linalg.norm(true_features - reconstructed)) / scale


@dataclass(frozen=True)
class LeakageReport:
    """Reconstruction quality with and without DP noise."""

    clean_median_error: float
    noisy_median_error: float
    num_trials: int
    failed_inversions_clean: int
    failed_inversions_noisy: int

    @property
    def protection_factor(self) -> float:
        """How many times worse reconstruction gets under DP."""
        if self.clean_median_error == 0.0:
            return float("inf")
        return self.noisy_median_error / self.clean_median_error


def gradient_inversion_study(
    model: Model,
    dataset: Dataset,
    mechanism: NoiseMechanism,
    parameters: Vector | None = None,
    g_max: float | None = None,
    num_trials: int = 100,
    seed: int = 0,
) -> LeakageReport:
    """Measure single-example reconstruction error, clean vs DP-noised.

    For each trial: pick a random example, compute its gradient at
    ``parameters`` (clipped to ``g_max`` when given, mimicking the
    honest pipeline), invert it both raw and after
    ``mechanism.privatize``, and record the relative errors.  Reports
    medians (inversion failures, e.g. a zero bias coordinate, are
    excluded and counted).
    """
    if num_trials < 1:
        raise ConfigurationError(f"num_trials must be >= 1, got {num_trials}")
    seeds = SeedTree(seed)
    pick_rng = seeds.generator("pick")
    noise_rng = seeds.generator("noise")
    if parameters is None:
        parameters = model.initial_parameters(seeds.generator("init"))

    clean_errors: list[float] = []
    noisy_errors: list[float] = []
    failed_clean = 0
    failed_noisy = 0
    for _ in range(num_trials):
        index = int(pick_rng.integers(dataset.num_points))
        features = dataset.features[index : index + 1]
        labels = dataset.labels[index : index + 1]
        gradient = model.gradient(parameters, features, labels)
        if g_max is not None:
            gradient = clip_by_l2_norm(gradient, g_max)
        try:
            clean_errors.append(
                reconstruction_error(features[0], invert_linear_gradient(gradient))
            )
        except ConfigurationError:
            failed_clean += 1
        noisy = mechanism.privatize(gradient, noise_rng)
        try:
            noisy_errors.append(
                reconstruction_error(features[0], invert_linear_gradient(noisy))
            )
        except ConfigurationError:
            failed_noisy += 1

    return LeakageReport(
        clean_median_error=float(np.median(clean_errors)) if clean_errors else float("inf"),
        noisy_median_error=float(np.median(noisy_errors)) if noisy_errors else float("inf"),
        num_trials=num_trials,
        failed_inversions_clean=failed_clean,
        failed_inversions_noisy=failed_noisy,
    )
