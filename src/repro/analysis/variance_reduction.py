"""Variance reduction via worker-side momentum — Section 7's open question.

The paper closes by asking whether variance-reduction techniques (e.g.
exponential gradient averaging) can alleviate the DP noise's linear-
in-``d`` variance.  For worker-side momentum with coefficient ``beta``
(the exponential average ``v_t = beta v_{t-1} + g_t``), i.i.d.
per-step noise of variance ``sigma^2`` accumulates to a stationary
variance

.. math::

    Var(v_\\infty) = \\frac{\\sigma^2}{1 - \\beta^2}

while the signal (a locally constant true gradient ``g``) accumulates
to mean ``g / (1 - beta)``.  The VN ratio of the momentum vector is
therefore the raw ratio scaled by

.. math::

    \\sqrt{\\frac{(1-\\beta)^2}{1-\\beta^2}} = \\sqrt{\\frac{1-\\beta}{1+\\beta}}

— e.g. ``beta = 0.99`` divides the VN ratio by ~14, exactly the
mechanism by which distributed momentum (El-Mhamdi et al. 2021) helps
Byzantine resilience, and a quantitative answer to the paper's
question: momentum buys a *constant* factor, so it postpones but does
not remove the ``sqrt(d)`` wall.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = ["momentum_vn_reduction_factor", "momentum_variance_inflation"]


def momentum_vn_reduction_factor(beta: float) -> float:
    """Stationary VN-ratio multiplier ``sqrt((1 - beta) / (1 + beta))``.

    Values below 1 mean momentum *reduces* the VN ratio (helps the
    condition); ``beta = 0`` returns 1 (no momentum, no change).
    """
    if not 0.0 <= beta < 1.0:
        raise ConfigurationError(f"beta must be in [0, 1), got {beta}")
    return math.sqrt((1.0 - beta) / (1.0 + beta))


def momentum_variance_inflation(beta: float, steps: int) -> float:
    """Finite-horizon variance multiplier ``(1 - beta^(2 steps)) / (1 - beta^2)``.

    After ``steps`` accumulations the momentum buffer's variance is the
    per-step variance times this factor (it converges to
    ``1 / (1 - beta^2)``).
    """
    if not 0.0 <= beta < 1.0:
        raise ConfigurationError(f"beta must be in [0, 1), got {beta}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if beta == 0.0:
        return 1.0
    return (1.0 - beta ** (2 * steps)) / (1.0 - beta**2)
