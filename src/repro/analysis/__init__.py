"""Analysis extras: leakage attacks, gradient variance, variance reduction."""

from repro.analysis.leakage import (
    LeakageReport,
    gradient_inversion_study,
    invert_linear_gradient,
    reconstruction_error,
)
from repro.analysis.monitor import VNRatioMonitor, VNTrajectory
from repro.analysis.variance import (
    GradientMoments,
    estimate_gradient_moments,
    vn_ratio_for_model,
)
from repro.analysis.variance_reduction import (
    momentum_variance_inflation,
    momentum_vn_reduction_factor,
)

__all__ = [
    "GradientMoments",
    "LeakageReport",
    "VNRatioMonitor",
    "VNTrajectory",
    "estimate_gradient_moments",
    "gradient_inversion_study",
    "invert_linear_gradient",
    "momentum_variance_inflation",
    "momentum_vn_reduction_factor",
    "reconstruction_error",
    "vn_ratio_for_model",
]
