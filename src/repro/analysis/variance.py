"""Empirical gradient moments and VN ratios for concrete models.

Bridges the theory (Eq. 2 / Eq. 8 need ``E||G - EG||^2`` and
``||E G||``) with actual model/dataset pairs: Monte-Carlo estimate the
moments of the batch-gradient distribution at a given parameter vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.vn_ratio import dp_noise_total_variance, vn_ratio_from_moments
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.privacy.clipping import clip_by_l2_norm
from repro.rng import generator_from_seed
from repro.typing import Vector

__all__ = ["GradientMoments", "estimate_gradient_moments", "vn_ratio_for_model"]


@dataclass(frozen=True)
class GradientMoments:
    """Monte-Carlo estimates of the batch-gradient distribution."""

    total_variance: float
    mean_norm: float
    num_samples: int
    batch_size: int

    @property
    def vn_ratio(self) -> float:
        """The noise-free VN ratio (Eq. 2's left-hand side)."""
        return vn_ratio_from_moments(self.total_variance, self.mean_norm)

    def dp_vn_ratio(
        self, dimension: int, g_max: float, epsilon: float, delta: float
    ) -> float:
        """The DP-augmented VN ratio (Eq. 8's left-hand side)."""
        noise = dp_noise_total_variance(
            dimension, g_max, self.batch_size, epsilon, delta
        )
        return vn_ratio_from_moments(self.total_variance + noise, self.mean_norm)


def estimate_gradient_moments(
    model: Model,
    dataset: Dataset,
    parameters: Vector,
    batch_size: int,
    num_samples: int = 200,
    g_max: float | None = None,
    seed: int = 0,
) -> GradientMoments:
    """Sample ``num_samples`` batch gradients and estimate the moments.

    ``g_max`` applies the honest worker's clipping, so the estimate
    matches what workers actually submit (pre-noise).
    """
    if num_samples < 2:
        raise ConfigurationError(f"num_samples must be >= 2, got {num_samples}")
    rng = generator_from_seed(seed)
    sampler = BatchSampler(dataset, batch_size, rng)
    gradients = np.empty((num_samples, model.dimension))
    for index in range(num_samples):
        features, labels = sampler.sample()
        gradient = model.gradient(parameters, features, labels)
        if g_max is not None:
            gradient = clip_by_l2_norm(gradient, g_max)
        gradients[index] = gradient
    mean = gradients.mean(axis=0)
    centered = gradients - mean[None, :]
    total_variance = float(np.sum(centered**2) / (num_samples - 1))
    return GradientMoments(
        total_variance=total_variance,
        mean_norm=float(np.linalg.norm(mean)),
        num_samples=num_samples,
        batch_size=batch_size,
    )


def vn_ratio_for_model(
    model: Model,
    dataset: Dataset,
    parameters: Vector,
    batch_size: int,
    *,
    g_max: float | None = None,
    epsilon: float | None = None,
    delta: float | None = None,
    num_samples: int = 200,
    seed: int = 0,
) -> float:
    """One-call VN ratio (noise-free, or Eq. (8) when epsilon/delta given)."""
    moments = estimate_gradient_moments(
        model, dataset, parameters, batch_size, num_samples, g_max, seed
    )
    if epsilon is None:
        return moments.vn_ratio
    if delta is None or g_max is None:
        raise ConfigurationError("the DP-augmented VN ratio needs g_max, epsilon and delta")
    return moments.dp_vn_ratio(model.dimension, g_max, epsilon, delta)
