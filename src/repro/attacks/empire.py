"""Fall of Empires (Xie, Koyejo & Gupta 2019).

Inner-product manipulation: each Byzantine worker submits
``(1 - nu) * g_t`` where ``g_t`` is (an approximation of) the true
gradient, i.e. the attack vector is ``a_t = -g_t``.  The paper's
experiments use ``nu = 1.1``, corresponding to ``nu' = -(1 - nu) = 0.1``
in the original paper's notation — "this factor made this attack
consistently successful in the original paper".

With ``nu > 1`` the submitted vector points *against* the true
gradient, so if the crafted gradients capture the aggregate, the model
walks uphill.
"""

from __future__ import annotations

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = ["FallOfEmpiresAttack"]


class FallOfEmpiresAttack(ByzantineAttack):
    """FoE: ``(1 - nu) * mean(honest gradients)``, ``nu = 1.1`` by default."""

    name = "empire"

    def __init__(self, factor: float = 1.1, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if factor < 0:
            raise ConfigurationError(f"factor (nu) must be >= 0, got {factor}")
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        """The attack magnitude ``nu``; the submitted vector is ``(1-nu) g_t``."""
        return self._factor

    def craft(self, context: AttackContext) -> Vector:
        honest = self._honest(context)
        return (1.0 - self._factor) * honest.mean(axis=0)
