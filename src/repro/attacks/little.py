"""A Little Is Enough (Baruch, Baruch & Goldberg 2019).

Each Byzantine worker submits ``g_t + nu * a_t`` where ``a_t = -sigma_t``
is the opposite of the coordinate-wise standard deviation of the honest
gradient distribution and ``g_t`` is the mean of the honest gradients.
The paper's experiments use ``nu = 1.5`` "as proposed by the original
paper".

The idea: shift every coordinate by a small multiple of its natural
spread, staying inside the cloud of honest gradients so
distance/median-based defenses cannot flag the Byzantine submissions,
while the common bias steadily drags the model away from the optimum.
"""

from __future__ import annotations

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = ["ALittleIsEnoughAttack"]


class ALittleIsEnoughAttack(ByzantineAttack):
    """ALIE: ``g_t - nu * std(honest gradients)``, ``nu = 1.5`` by default."""

    name = "little"

    def __init__(self, factor: float = 1.5, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if factor < 0:
            raise ConfigurationError(f"factor (nu) must be >= 0, got {factor}")
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        """The attack magnitude ``nu``."""
        return self._factor

    def craft(self, context: AttackContext) -> Vector:
        honest = self._honest(context)
        mean = honest.mean(axis=0)
        # Coordinate-wise standard deviation of the honest distribution;
        # a single observed gradient gives no spread estimate, so the
        # attack degenerates to submitting the mean.
        std = honest.std(axis=0)
        return mean - self._factor * std
