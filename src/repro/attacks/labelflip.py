"""Label-flipping data poisoning.

Unlike the gradient-space attacks, label flipping corrupts a worker's
*data*: the Byzantine worker behaves exactly like an honest one
(sampling, clipping, DP noise) but computes gradients against flipped
labels.  In the paper's taxonomy this is an "erroneous gradient"
(mislabeling in the local dataset) rather than a forged one.

Use :func:`flip_binary_labels` to build the poisoned dataset and hand
it to a regular honest worker.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError

__all__ = ["flip_binary_labels"]


def flip_binary_labels(
    dataset: Dataset, fraction: float = 1.0, rng: np.random.Generator | None = None
) -> Dataset:
    """Return a copy of ``dataset`` with a fraction of binary labels flipped.

    Parameters
    ----------
    dataset:
        A dataset with labels in ``{0, 1}``.
    fraction:
        Fraction of points whose labels are flipped (1.0 = all).
    rng:
        Required when ``fraction < 1`` to pick the flipped points.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DataError(f"fraction must be in [0, 1], got {fraction}")
    labels = dataset.labels
    if not np.all(np.isin(labels, (0.0, 1.0))):
        raise DataError("flip_binary_labels requires labels in {0, 1}")
    if fraction == 1.0:
        mask = np.ones(dataset.num_points, dtype=bool)
    else:
        if rng is None:
            raise DataError("rng is required when fraction < 1")
        mask = rng.random(dataset.num_points) < fraction
    flipped = np.where(mask, 1.0 - labels, labels)
    return Dataset(
        features=dataset.features.copy(),
        labels=flipped,
        name=f"{dataset.name}-labelflip",
    )
