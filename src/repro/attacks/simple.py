"""Simple baseline attacks for ablations and GAR stress tests.

None of these appear in the paper's evaluation, but they are the
standard sanity checks for any Byzantine-resilient pipeline:

* :class:`SignFlipAttack` — submit ``-scale * g_t`` (gradient ascent).
* :class:`RandomGaussianAttack` — submit pure noise of a chosen scale.
* :class:`ZeroGradientAttack` — submit zeros, which is also exactly how
  the paper models *non-received* gradients (Section 2.1).
* :class:`LargeNormAttack` — submit an enormous vector; any GAR that
  survives this but fails ALIE demonstrates why "filter the obvious
  outliers" is insufficient.
* :class:`MimicAttack` — copy one honest gradient, inflating its weight
  in the aggregate (tests selection-based GARs such as Krum).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = [
    "SignFlipAttack",
    "RandomGaussianAttack",
    "ZeroGradientAttack",
    "LargeNormAttack",
    "MimicAttack",
]


class SignFlipAttack(ByzantineAttack):
    """Submit ``-scale`` times the honest mean gradient."""

    name = "signflip"

    def __init__(self, scale: float = 1.0, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        """Magnitude multiplier applied after flipping."""
        return self._scale

    def craft(self, context: AttackContext) -> Vector:
        return -self._scale * self._honest(context).mean(axis=0)


class RandomGaussianAttack(ByzantineAttack):
    """Submit ``N(0, scale^2 I_d)`` noise, fresh each step."""

    name = "random"

    def __init__(self, scale: float = 1.0, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        """Standard deviation of the noise per coordinate."""
        return self._scale

    def craft(self, context: AttackContext) -> Vector:
        dimension = context.parameters.shape[0]
        return self._scale * context.rng.standard_normal(dimension)


class ZeroGradientAttack(ByzantineAttack):
    """Submit the zero vector (equivalently: never deliver a gradient)."""

    name = "zero"

    def craft(self, context: AttackContext) -> Vector:
        return np.zeros_like(context.parameters)


class LargeNormAttack(ByzantineAttack):
    """Submit a constant direction blown up to a huge norm."""

    name = "large-norm"

    def __init__(self, norm: float = 1e6, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if norm <= 0:
            raise ConfigurationError(f"norm must be positive, got {norm}")
        self._norm = float(norm)

    @property
    def norm(self) -> float:
        """Norm of the submitted vector."""
        return self._norm

    def craft(self, context: AttackContext) -> Vector:
        dimension = context.parameters.shape[0]
        direction = np.ones(dimension) / np.sqrt(dimension)
        return self._norm * direction


class MimicAttack(ByzantineAttack):
    """All Byzantine workers copy the gradient of one honest worker."""

    name = "mimic"

    def __init__(self, target_index: int = 0, knowledge: str = "submitted"):
        super().__init__(knowledge)
        if target_index < 0:
            raise ConfigurationError(f"target_index must be >= 0, got {target_index}")
        self._target_index = int(target_index)

    @property
    def target_index(self) -> int:
        """Index (among honest workers) of the mimicked victim."""
        return self._target_index

    def craft(self, context: AttackContext) -> Vector:
        honest = self._honest(context)
        return honest[self._target_index % honest.shape[0]].copy()
