"""Byzantine attack interface.

The paper's threat model (Section 5.1): the ``f`` Byzantine workers
collude and all submit the *same* crafted gradient each step, built
from knowledge of the honest workers' gradients ("omniscient"
adversary).  Both state-of-the-art attacks follow the template

.. math::

    g_t + \\nu \\, a_t

where ``g_t`` approximates the true gradient (the mean of the honest
submissions) and ``a_t`` is an attack direction.

An attack's *knowledge* setting controls which honest view it reads:

* ``"submitted"`` — the gradients as they travel on the wire
  (post-clipping, post-DP-noise); the default, matching what a network
  adversary observes.
* ``"clean"`` — the pre-noise clipped gradients (a strictly stronger,
  fully omniscient adversary).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.typing import Matrix, Vector

__all__ = ["AttackContext", "ByzantineAttack", "KNOWLEDGE_CHOICES"]

KNOWLEDGE_CHOICES = ("submitted", "clean")


@dataclass
class AttackContext:
    """Everything an omniscient colluding adversary can see in one step.

    Attributes
    ----------
    step:
        1-indexed training step.
    honest_submitted:
        ``(h, d)`` matrix of the gradients honest workers are about to
        send (after clipping and DP noise).
    honest_clean:
        ``(h, d)`` matrix of the same gradients before DP noise.
    parameters:
        Current model parameters ``w_t``.
    num_byzantine:
        Number of colluding Byzantine workers.
    rng:
        The adversary's private random stream.
    """

    step: int
    honest_submitted: Matrix
    honest_clean: Matrix
    parameters: Vector
    num_byzantine: int
    rng: np.random.Generator = field(repr=False)

    def honest_view(self, knowledge: str) -> Matrix:
        """The honest gradients under the requested knowledge level."""
        if knowledge == "submitted":
            return self.honest_submitted
        if knowledge == "clean":
            return self.honest_clean
        raise ConfigurationError(
            f"knowledge must be one of {KNOWLEDGE_CHOICES}, got {knowledge!r}"
        )


class ByzantineAttack(ABC):
    """A colluding attack: one crafted gradient submitted by all ``f`` nodes."""

    #: Registry name, set by each subclass (e.g. ``"little"``).
    name: str = "abstract"

    def __init__(self, knowledge: str = "submitted"):
        if knowledge not in KNOWLEDGE_CHOICES:
            raise ConfigurationError(
                f"knowledge must be one of {KNOWLEDGE_CHOICES}, got {knowledge!r}"
            )
        self._knowledge = knowledge

    @property
    def knowledge(self) -> str:
        """Which honest view the attack reads (``submitted`` or ``clean``)."""
        return self._knowledge

    @abstractmethod
    def craft(self, context: AttackContext) -> Vector:
        """Return the Byzantine gradient for this step."""

    def _honest(self, context: AttackContext) -> Matrix:
        honest = context.honest_view(self._knowledge)
        if honest.shape[0] == 0:
            raise ConfigurationError(
                f"{self.name} requires at least one honest gradient to observe"
            )
        return honest

    def __repr__(self) -> str:
        return f"{type(self).__name__}(knowledge={self._knowledge!r})"
