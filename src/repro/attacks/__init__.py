"""Byzantine attacks.

The paper evaluates two state-of-the-art attacks — *A Little Is Enough*
and *Fall of Empires* — plus this package's extra baselines for
ablations.  Attacks are available through classes or the registry:

>>> from repro.attacks import get_attack
>>> attack = get_attack("little")
>>> attack.factor
1.5
"""

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.attacks.empire import FallOfEmpiresAttack
from repro.attacks.labelflip import flip_binary_labels
from repro.attacks.little import ALittleIsEnoughAttack
from repro.attacks.simple import (
    LargeNormAttack,
    MimicAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
)
from repro.exceptions import ConfigurationError

__all__ = [
    "AttackContext",
    "ByzantineAttack",
    "ALittleIsEnoughAttack",
    "FallOfEmpiresAttack",
    "SignFlipAttack",
    "RandomGaussianAttack",
    "ZeroGradientAttack",
    "LargeNormAttack",
    "MimicAttack",
    "flip_binary_labels",
    "ATTACK_REGISTRY",
    "available_attacks",
    "get_attack",
]

#: Name -> class mapping for every built-in gradient-space attack.
ATTACK_REGISTRY: dict[str, type[ByzantineAttack]] = {
    ALittleIsEnoughAttack.name: ALittleIsEnoughAttack,
    FallOfEmpiresAttack.name: FallOfEmpiresAttack,
    SignFlipAttack.name: SignFlipAttack,
    RandomGaussianAttack.name: RandomGaussianAttack,
    ZeroGradientAttack.name: ZeroGradientAttack,
    LargeNormAttack.name: LargeNormAttack,
    MimicAttack.name: MimicAttack,
}


def available_attacks() -> tuple[str, ...]:
    """Names of all registered attacks, sorted.

    Delegates to the unified component registry
    (:mod:`repro.pipeline.registry`), so attacks registered there under
    the ``"attack"`` family are included too.
    """
    from repro.pipeline.registry import REGISTRY

    return tuple(sorted(set(REGISTRY.available("attack")) | set(ATTACK_REGISTRY)))


def get_attack(name: str, **kwargs) -> ByzantineAttack:
    """Instantiate a registered attack by name.

    Extra keyword arguments go to the attack constructor (e.g.
    ``factor`` for ALIE/FoE, ``knowledge`` for the adversary's view).
    Dispatches through the unified component registry's ``"attack"``
    family.
    """
    from repro.pipeline.registry import REGISTRY

    if not REGISTRY.has("attack", name):
        if name in ATTACK_REGISTRY:  # added to the legacy dict post-bootstrap
            REGISTRY.register("attack", name, ATTACK_REGISTRY[name], overwrite=True)
        else:
            raise ConfigurationError(
                f"unknown attack {name!r}; available: {', '.join(available_attacks())}"
            )
    return REGISTRY.build("attack", {"name": name, **kwargs})
