"""Optimizer substrate: SGD with momentum and learning-rate schedules."""

from repro.optim.schedules import (
    ConstantSchedule,
    InverseTimeSchedule,
    LearningRateSchedule,
    StepDecaySchedule,
    theorem1_schedule,
)
from repro.optim.sgd import SGDOptimizer

__all__ = [
    "ConstantSchedule",
    "InverseTimeSchedule",
    "LearningRateSchedule",
    "SGDOptimizer",
    "StepDecaySchedule",
    "theorem1_schedule",
]
