"""SGD with (heavy-ball) momentum.

The update is the classical heavy-ball form the paper's experiments
use (learning rate 2, momentum 0.99):

.. math::

    v_t = m \\cdot v_{t-1} + g_t, \\qquad w_{t+1} = w_t - \\gamma_t v_t

With ``m = 0`` this reduces to Eq. (1) of the paper.  Nesterov
momentum is available as an option.  The optimizer owns only the
velocity state; parameters live with the caller (the parameter server),
mirroring the paper's separation between aggregation and update.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, TrainingError
from repro.optim.schedules import ConstantSchedule, LearningRateSchedule
from repro.typing import Vector

__all__ = ["SGDOptimizer"]


class SGDOptimizer:
    """Heavy-ball SGD over a flat parameter vector.

    Parameters
    ----------
    schedule:
        Learning-rate schedule, or a float for a constant rate.
    momentum:
        Momentum coefficient ``m`` in ``[0, 1)``; the paper uses 0.99.
    nesterov:
        Use Nesterov's lookahead form ``w -= gamma (m v + g)``.
    """

    def __init__(
        self,
        schedule: LearningRateSchedule | float,
        momentum: float = 0.0,
        nesterov: bool = False,
    ):
        if isinstance(schedule, (int, float)):
            schedule = ConstantSchedule(float(schedule))
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigurationError("nesterov requires a non-zero momentum")
        self._schedule = schedule
        self._momentum = float(momentum)
        self._nesterov = bool(nesterov)
        self._velocity: Vector | None = None
        self._step_count = 0
        # Scratch buffers for the allocation-free ``out=`` path, lazily
        # sized to the parameter dimension on first use.
        self._direction_scratch: Vector | None = None
        self._update_scratch: Vector | None = None

    @property
    def momentum(self) -> float:
        """The momentum coefficient."""
        return self._momentum

    @property
    def schedule(self) -> LearningRateSchedule:
        """The learning-rate schedule."""
        return self._schedule

    @property
    def step_count(self) -> int:
        """Number of updates performed so far."""
        return self._step_count

    @property
    def velocity(self) -> Vector | None:
        """Current velocity buffer (``None`` before the first step)."""
        return None if self._velocity is None else self._velocity.copy()

    def reset(self) -> None:
        """Clear velocity and the step counter."""
        self._velocity = None
        self._step_count = 0
        self._direction_scratch = None
        self._update_scratch = None

    def step(self, parameters: Vector, gradient: Vector, out: Vector | None = None) -> Vector:
        """Apply one update and return the new parameter vector.

        ``out``, when given, receives the updated parameters in place
        (it may be ``parameters`` itself — the fused round engine passes
        the server's live buffer) and no per-step arrays are allocated:
        the velocity, the direction and the scaled update all land in
        buffers owned by the optimizer.  Both paths perform the same
        elementary float operations in the same order, so they are
        bit-identical — the golden traces hold whichever path runs.

        Raises
        ------
        TrainingError
            If the update produces non-finite parameters (divergence).
            On the ``out=`` path the buffer has already been updated
            when this raises; a diverged run is dead either way.
        """
        parameters = np.asarray(parameters, dtype=np.float64)
        gradient = np.asarray(gradient, dtype=np.float64)
        if parameters.shape != gradient.shape:
            raise ValueError(
                f"parameter/gradient shape mismatch: {parameters.shape} vs {gradient.shape}"
            )
        self._step_count += 1
        rate = self._schedule.rate(self._step_count)
        if self._velocity is None:
            self._velocity = np.zeros_like(parameters)
        # In-place heavy-ball: v <- m*v, v <- v + g — the same two
        # elementwise operations the allocating form performs.
        self._velocity *= self._momentum
        self._velocity += gradient
        if self._nesterov:
            if out is None:
                direction = self._momentum * self._velocity + gradient
            else:
                if self._direction_scratch is None or self._direction_scratch.shape != parameters.shape:
                    self._direction_scratch = np.empty_like(parameters)
                np.multiply(self._velocity, self._momentum, out=self._direction_scratch)
                self._direction_scratch += gradient
                direction = self._direction_scratch
        else:
            direction = self._velocity
        if out is None:
            updated = parameters - rate * direction
        else:
            if out.shape != parameters.shape:
                raise ValueError(
                    f"out shape {out.shape} does not match parameters {parameters.shape}"
                )
            if self._update_scratch is None or self._update_scratch.shape != parameters.shape:
                self._update_scratch = np.empty_like(parameters)
            np.multiply(direction, rate, out=self._update_scratch)
            np.subtract(parameters, self._update_scratch, out=out)
            updated = out
        if not np.all(np.isfinite(updated)):
            raise TrainingError(
                f"parameters became non-finite at step {self._step_count}; "
                "the training has diverged"
            )
        return updated
