"""Learning-rate schedules.

The paper uses two schedules:

* a constant rate (``eta = 2`` in the experiments of Section 5);
* the Robbins-Monro-style ``gamma_t = 1 / (lambda (1 - sin alpha) t)``
  required by Theorem 1 — provided here via
  :func:`theorem1_schedule`.

Steps are 1-indexed throughout, matching the paper's ``t = 1 ... T``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeSchedule",
    "StepDecaySchedule",
    "theorem1_schedule",
]


class LearningRateSchedule(ABC):
    """Maps a 1-indexed step number to a learning rate."""

    @abstractmethod
    def rate(self, step: int) -> float:
        """Learning rate ``gamma_t`` for step ``step`` (1-indexed)."""

    def _check_step(self, step: int) -> int:
        if step < 1:
            raise ValueError(f"steps are 1-indexed, got {step}")
        return int(step)


class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate, as in the paper's experiments (eta = 2)."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        self._learning_rate = float(learning_rate)

    def rate(self, step: int) -> float:
        self._check_step(step)
        return self._learning_rate

    def __repr__(self) -> str:
        return f"ConstantSchedule({self._learning_rate})"


class InverseTimeSchedule(LearningRateSchedule):
    """``gamma_t = scale / t`` — the classic Robbins-Monro decay."""

    def __init__(self, scale: float):
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        """The numerator of ``scale / t``."""
        return self._scale

    def rate(self, step: int) -> float:
        return self._scale / self._check_step(step)

    def __repr__(self) -> str:
        return f"InverseTimeSchedule(scale={self._scale})"


class StepDecaySchedule(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``period`` steps."""

    def __init__(self, initial_rate: float, factor: float, period: int):
        if initial_rate <= 0:
            raise ConfigurationError(f"initial_rate must be positive, got {initial_rate}")
        if not 0 < factor <= 1:
            raise ConfigurationError(f"factor must be in (0, 1], got {factor}")
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self._initial_rate = float(initial_rate)
        self._factor = float(factor)
        self._period = int(period)

    def rate(self, step: int) -> float:
        step = self._check_step(step)
        decays = (step - 1) // self._period
        return self._initial_rate * self._factor**decays

    def __repr__(self) -> str:
        return (
            f"StepDecaySchedule(initial_rate={self._initial_rate}, "
            f"factor={self._factor}, period={self._period})"
        )


def theorem1_schedule(strong_convexity: float, alpha: float) -> InverseTimeSchedule:
    """The schedule Theorem 1 requires: ``gamma_t = 1/(lambda (1-sin alpha) t)``.

    Parameters
    ----------
    strong_convexity:
        The strong-convexity constant ``lambda`` (Assumption 2).
    alpha:
        The resilience angle ``alpha`` in radians, ``0 <= alpha < pi/2``.
    """
    if strong_convexity <= 0:
        raise ConfigurationError(
            f"strong_convexity must be positive, got {strong_convexity}"
        )
    if not 0 <= alpha < math.pi / 2:
        raise ConfigurationError(f"alpha must be in [0, pi/2), got {alpha}")
    return InverseTimeSchedule(scale=1.0 / (strong_convexity * (1.0 - math.sin(alpha))))
