"""Gradient aggregation rule (GAR) interface.

A GAR is a deterministic function ``F : R^{d x n} -> R^d`` (Section
2.1).  Each concrete rule declares:

* a **precondition** on ``(n, f)`` — e.g. Krum needs ``n > 2 f + 2``;
* its **VN-ratio constant** ``k_F(n, f)`` — the largest
  variance-to-norm ratio under which the rule is known to be
  ``(alpha, f)``-Byzantine resilient (Eq. 2);
* the **aggregation** itself.

Instances are bound to a fixed ``(n, f)`` at construction so the
precondition is validated once, and misuse (feeding a different number
of gradients) fails loudly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import AggregationError
from repro.typing import (
    GradientStack,
    Matrix,
    Vector,
    as_gradient_matrix,
    as_gradient_stack,
)

__all__ = ["GAR"]


class GAR(ABC):
    """A deterministic gradient aggregation rule bound to ``(n, f)``."""

    #: Registry name, set by each subclass (e.g. ``"krum"``).
    name: str = "abstract"

    def __init__(self, n: int, f: int):
        if n < 1:
            raise AggregationError(f"n must be >= 1, got {n}")
        if f < 0:
            raise AggregationError(f"f must be >= 0, got {f}")
        if f >= n:
            raise AggregationError(f"f must be < n, got f={f}, n={n}")
        self._n = int(n)
        self._f = int(f)
        self.check_preconditions(self._n, self._f)

    @property
    def n(self) -> int:
        """Total number of workers."""
        return self._n

    @property
    def f(self) -> int:
        """Maximum number of Byzantine workers tolerated."""
        return self._f

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        """Raise :class:`AggregationError` if ``(n, f)`` violates the rule's
        validity condition.  The base implementation accepts everything;
        subclasses override."""
        del n, f

    @classmethod
    def supports(cls, n: int, f: int) -> bool:
        """``True`` when ``(n, f)`` satisfies the rule's precondition."""
        try:
            cls.check_preconditions(n, f)
        except AggregationError:
            return False
        return 0 <= f < n

    @abstractmethod
    def k_f(self) -> float:
        """The VN-ratio bound ``k_F(n, f)`` of Eq. (2) / Eq. (8).

        ``math.inf`` when the rule tolerates arbitrary variance (e.g.
        MDA with ``f = 0``).
        """

    @abstractmethod
    def _aggregate(self, gradients: Matrix) -> Vector:
        """Aggregate a validated ``(n, d)`` matrix into a ``(d,)`` vector."""

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        """Aggregate a validated ``(B, n, d)`` stack into ``(B, d)``.

        The base implementation loops over the slices; rules with a
        vectorized kernel (the Krum family, the coordinate-wise rules,
        the geometric median) override it to process the whole stack in
        single NumPy calls, bit-identically to the per-slice loop.
        """
        return np.stack([self._aggregate(matrix) for matrix in stack])

    def aggregate(self, gradients) -> Vector:
        """Aggregate ``n`` worker gradients into one vector.

        Accepts a sequence of ``(d,)`` arrays or an ``(n, d)`` matrix.

        Raises
        ------
        AggregationError
            If the number of gradients differs from ``n`` or any
            gradient is non-finite.
        """
        matrix = as_gradient_matrix(gradients)
        if matrix.shape[0] != self._n:
            raise AggregationError(
                f"{self.name} was built for n={self._n} workers but "
                f"received {matrix.shape[0]} gradients"
            )
        if not np.all(np.isfinite(matrix)):
            raise AggregationError(f"{self.name} received non-finite gradients")
        return self._aggregate(matrix)

    def aggregate_batch(self, gradients_stack) -> np.ndarray:
        """Aggregate a batch of rounds in one call: ``(B, n, d) -> (B, d)``.

        Accepts a 3-D stack or a sequence of ``(n, d)`` matrices — one
        independent round (step, seed, or grid cell) per slice.  Each
        slice is aggregated exactly as :meth:`aggregate` would, but
        vectorized rules process the entire stack without a per-round
        Python loop.

        Raises
        ------
        AggregationError
            If any slice's worker count differs from ``n`` or any
            gradient is non-finite.
        """
        stack = as_gradient_stack(gradients_stack)
        if stack.shape[1] != self._n:
            raise AggregationError(
                f"{self.name} was built for n={self._n} workers but the stack "
                f"has {stack.shape[1]} gradients per round"
            )
        if not np.all(np.isfinite(stack)):
            raise AggregationError(f"{self.name} received non-finite gradients")
        return self._aggregate_batch(stack)

    def __call__(self, gradients) -> Vector:
        return self.aggregate(gradients)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n}, f={self._f})"
