"""Phocas (Xie et al. 2018, "Phocas: dimensional Byzantine-resilient
stochastic gradient descent").

Per coordinate: compute the ``f``-trimmed mean, then average the
``n - f`` values closest to it.  Valid for ``2 f <= n - 1``; Appendix A
of the paper uses ``k_F(n, f) = sqrt(4 + (n-2f)^2 / (12 (f+1) (n-f)))``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_phocas, require_majority_honest
from repro.gars.kernels import phocas_batch, trimmed_mean_batch
from repro.gars.meamed import mean_around_anchor
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["PhocasGAR"]


class PhocasGAR(GAR):
    """Coordinate-wise mean of the ``n - f`` values nearest the trimmed mean."""

    name = "phocas"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """``sqrt(4 + (n - 2f)^2 / (12 (f+1) (n-f)))`` (Appendix A)."""
        return k_phocas(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        anchor = trimmed_mean_batch(gradients, self._f)
        return mean_around_anchor(gradients, anchor, self._n - self._f)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return phocas_batch(stack, self._f)
