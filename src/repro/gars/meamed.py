"""Meamed — mean around the median (Xie et al. 2018, "Generalized
Byzantine-tolerant SGD").

Per coordinate: compute the median of the ``n`` submitted values, then
average the ``n - f`` values closest to that median.  Valid for
``2 f <= n - 1`` with ``k_F(n, f) = 1 / sqrt(10 (n - f))``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_meamed, require_majority_honest
from repro.gars.kernels import mean_around_anchor_batch, meamed_batch, median_batch
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["MeamedGAR", "mean_around_anchor"]


def mean_around_anchor(gradients: Matrix, anchor: Vector, keep: int) -> Vector:
    """Per coordinate, average the ``keep`` values closest to ``anchor``.

    Shared by Meamed (anchor = median) and Phocas (anchor = trimmed
    mean).  Distance ties are broken by the value itself (via lexsort)
    so the rule is permutation-invariant even on equidistant inputs.
    Delegates to the batched kernel, which also accepts ``(B, n, d)``
    stacks.
    """
    return mean_around_anchor_batch(gradients, anchor, keep)


class MeamedGAR(GAR):
    """Coordinate-wise mean of the ``n - f`` values nearest the median."""

    name = "meamed"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """``1 / sqrt(10 (n - f))``."""
        return k_meamed(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        return mean_around_anchor(
            gradients, median_batch(gradients), self._n - self._f
        )

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return meamed_batch(stack, self._f)
