"""Meamed — mean around the median (Xie et al. 2018, "Generalized
Byzantine-tolerant SGD").

Per coordinate: compute the median of the ``n`` submitted values, then
average the ``n - f`` values closest to that median.  Valid for
``2 f <= n - 1`` with ``k_F(n, f) = 1 / sqrt(10 (n - f))``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_meamed, require_majority_honest
from repro.typing import Matrix, Vector

__all__ = ["MeamedGAR", "mean_around_anchor"]


def mean_around_anchor(gradients: Matrix, anchor: Vector, keep: int) -> Vector:
    """Per coordinate, average the ``keep`` values closest to ``anchor``.

    Shared by Meamed (anchor = median) and Phocas (anchor = trimmed
    mean).  Distance ties are broken by the value itself (via lexsort)
    so the rule is permutation-invariant even on equidistant inputs.
    """
    deviation = np.abs(gradients - anchor[None, :])  # (n, d)
    closest = np.lexsort((gradients, deviation), axis=0)[:keep]  # (keep, d)
    picked = np.take_along_axis(gradients, closest, axis=0)
    return picked.mean(axis=0)


class MeamedGAR(GAR):
    """Coordinate-wise mean of the ``n - f`` values nearest the median."""

    name = "meamed"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """``1 / sqrt(10 (n - f))``."""
        return k_meamed(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        medians = np.median(gradients, axis=0)
        return mean_around_anchor(gradients, medians, self._n - self._f)
