"""Gradient aggregation rules (GARs).

All seven statistically-robust rules analysed by the paper (Table 1),
plus plain averaging (the non-robust baseline) and Multi-Krum.  Rules
are available through their classes or the string registry:

>>> from repro.gars import get_gar
>>> gar = get_gar("mda", n=11, f=5)
>>> gar.k_f()  # doctest: +ELLIPSIS
0.42...
"""

from repro.gars.average import AverageGAR
from repro.gars.base import GAR
from repro.gars.bulyan import BulyanGAR
from repro.gars.constants import (
    k_bulyan,
    k_krum,
    k_mda,
    k_meamed,
    k_median,
    k_phocas,
    k_trimmed_mean,
    krum_eta,
)
from repro.gars.geometric_median import GeometricMedianGAR
from repro.gars.kernels import batched_aggregate, pairwise_sq_distances
from repro.gars.krum import KrumGAR
from repro.gars.mda import MDAGAR
from repro.gars.oracle import OracleGAR
from repro.gars.meamed import MeamedGAR
from repro.gars.median import MedianGAR
from repro.gars.phocas import PhocasGAR
from repro.gars.trimmed_mean import TrimmedMeanGAR
from repro.exceptions import AggregationError

__all__ = [
    "GAR",
    "AverageGAR",
    "BulyanGAR",
    "GeometricMedianGAR",
    "KrumGAR",
    "MDAGAR",
    "MeamedGAR",
    "MedianGAR",
    "OracleGAR",
    "PhocasGAR",
    "TrimmedMeanGAR",
    "GAR_REGISTRY",
    "available_gars",
    "batched_aggregate",
    "get_gar",
    "pairwise_sq_distances",
    "k_bulyan",
    "k_krum",
    "k_mda",
    "k_meamed",
    "k_median",
    "k_phocas",
    "k_trimmed_mean",
    "krum_eta",
]

#: Name -> class mapping for every built-in rule.
GAR_REGISTRY: dict[str, type[GAR]] = {
    AverageGAR.name: AverageGAR,
    MedianGAR.name: MedianGAR,
    TrimmedMeanGAR.name: TrimmedMeanGAR,
    KrumGAR.name: KrumGAR,
    MDAGAR.name: MDAGAR,
    OracleGAR.name: OracleGAR,
    BulyanGAR.name: BulyanGAR,
    MeamedGAR.name: MeamedGAR,
    PhocasGAR.name: PhocasGAR,
    GeometricMedianGAR.name: GeometricMedianGAR,
}


def available_gars() -> tuple[str, ...]:
    """Names of all registered aggregation rules, sorted.

    Delegates to the unified component registry
    (:mod:`repro.pipeline.registry`), so rules registered there under
    the ``"gar"`` family are included too.
    """
    from repro.pipeline.registry import REGISTRY

    return tuple(sorted(set(REGISTRY.available("gar")) | set(GAR_REGISTRY)))


def get_gar(name: str, n: int, f: int, **kwargs) -> GAR:
    """Instantiate a registered GAR by name.

    Extra keyword arguments are passed to the rule's constructor (e.g.
    ``m`` for Multi-Krum, ``allow_byzantine`` for averaging under
    attack).  Dispatches through the unified component registry's
    ``"gar"`` family.
    """
    from repro.pipeline.registry import REGISTRY

    if not REGISTRY.has("gar", name):
        if name in GAR_REGISTRY:  # added to the legacy dict post-bootstrap
            REGISTRY.register("gar", name, GAR_REGISTRY[name], overwrite=True)
        else:
            raise AggregationError(
                f"unknown GAR {name!r}; available: {', '.join(available_gars())}"
            )
    return REGISTRY.build("gar", {"name": name, **kwargs}, n=n, f=f)
