"""VN-ratio constants ``k_F(n, f)`` and validity preconditions per GAR.

These are the multiplicative constants of the sufficient condition for
``(alpha, f)``-Byzantine resilience (Eq. 2 of the paper):

.. math::

    \\frac{\\sqrt{E ||G_t - E G_t||^2}}{||E G_t||} \\le k_F(n, f)

The closed forms below are the ones the paper's Appendix A uses:

===============  =====================================================
GAR              ``k_F(n, f)``
===============  =====================================================
MDA              ``(n - f) / (sqrt(8) f)``  (infinite when ``f = 0``)
Krum, Bulyan     ``1 / sqrt(2 eta(n, f))`` with
                 ``eta = n - f + (f (n-f-2) + f^2 (n-f-1)) / (n-2f-2)``
Median           ``1 / sqrt(n - f)``
Meamed           ``1 / sqrt(10 (n - f))``
Trimmed Mean     ``sqrt((n - 2f)^2 / (2 (f+1) (n-f)))``
Phocas           ``sqrt(4 + (n - 2f)^2 / (12 (f+1) (n-f)))``
===============  =====================================================

Validity preconditions (from the defining papers, also re-stated in the
paper's Section 2.2 and Appendix A):

* MDA, Median, Meamed, Phocas, Trimmed Mean: ``2 f <= n - 1``
* Krum (and Multi-Krum): ``n > 2 f + 2``
* Bulyan: ``n >= 4 f + 3``
"""

from __future__ import annotations

import math

from repro.exceptions import AggregationError

__all__ = [
    "krum_eta",
    "k_mda",
    "k_krum",
    "k_bulyan",
    "k_median",
    "k_meamed",
    "k_trimmed_mean",
    "k_phocas",
    "require_majority_honest",
    "require_krum_valid",
    "require_bulyan_valid",
]


def _validate_pair(n: int, f: int) -> None:
    if n < 1:
        raise AggregationError(f"n must be >= 1, got {n}")
    if f < 0:
        raise AggregationError(f"f must be >= 0, got {f}")
    if f >= n:
        raise AggregationError(f"f must be < n, got f={f}, n={n}")


def require_majority_honest(n: int, f: int, gar_name: str) -> None:
    """Enforce ``2 f <= n - 1`` (a strict honest majority)."""
    _validate_pair(n, f)
    if 2 * f > n - 1:
        raise AggregationError(
            f"{gar_name} requires 2 f <= n - 1 (honest majority); "
            f"got n={n}, f={f}"
        )


def require_krum_valid(n: int, f: int, gar_name: str = "krum") -> None:
    """Enforce Krum's ``n > 2 f + 2``."""
    _validate_pair(n, f)
    if n <= 2 * f + 2:
        raise AggregationError(
            f"{gar_name} requires n > 2 f + 2; got n={n}, f={f}"
        )


def require_bulyan_valid(n: int, f: int) -> None:
    """Enforce Bulyan's ``n >= 4 f + 3``."""
    _validate_pair(n, f)
    if n < 4 * f + 3:
        raise AggregationError(f"bulyan requires n >= 4 f + 3; got n={n}, f={f}")


def k_mda(n: int, f: int) -> float:
    """``(n - f) / (sqrt(8) f)``; infinite for ``f = 0``."""
    require_majority_honest(n, f, "mda")
    if f == 0:
        return math.inf
    return (n - f) / (math.sqrt(8.0) * f)


def krum_eta(n: int, f: int) -> float:
    """Blanchard et al.'s ``eta(n, f)`` appearing in Krum's bound."""
    require_krum_valid(n, f)
    return n - f + (f * (n - f - 2) + f**2 * (n - f - 1)) / (n - 2 * f - 2)


def k_krum(n: int, f: int) -> float:
    """``1 / sqrt(2 eta(n, f))``."""
    return 1.0 / math.sqrt(2.0 * krum_eta(n, f))


def k_bulyan(n: int, f: int) -> float:
    """Bulyan shares Krum's constant but needs ``n >= 4 f + 3``."""
    require_bulyan_valid(n, f)
    return 1.0 / math.sqrt(2.0 * krum_eta(n, f))


def k_median(n: int, f: int) -> float:
    """``1 / sqrt(n - f)``."""
    require_majority_honest(n, f, "median")
    return 1.0 / math.sqrt(n - f)


def k_meamed(n: int, f: int) -> float:
    """``1 / sqrt(10 (n - f))``."""
    require_majority_honest(n, f, "meamed")
    return 1.0 / math.sqrt(10.0 * (n - f))


def k_trimmed_mean(n: int, f: int) -> float:
    """``sqrt((n - 2f)^2 / (2 (f+1) (n-f)))``."""
    require_majority_honest(n, f, "trimmed-mean")
    return math.sqrt((n - 2 * f) ** 2 / (2.0 * (f + 1) * (n - f)))


def k_phocas(n: int, f: int) -> float:
    """``sqrt(4 + (n - 2f)^2 / (12 (f+1) (n-f)))`` (as in Appendix A)."""
    require_majority_honest(n, f, "phocas")
    return math.sqrt(4.0 + (n - 2 * f) ** 2 / (12.0 * (f + 1) * (n - f)))
