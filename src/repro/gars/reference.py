"""Pre-vectorization reference implementations of the hot GAR paths.

These are the original per-row / per-step Python implementations that
:mod:`repro.gars.kernels` replaced, kept verbatim (modulo imports) for
two jobs:

* the property-based tests (:mod:`tests.test_property_gars`) assert the
  vectorized kernels agree with them on random ``(n, f, d)`` inputs;
* the kernel benchmark (``python -m repro bench``) times them as the
  "old" side of every old-vs-new comparison, so the recorded speedups
  are measured against the real pre-vectorization code and not a straw
  man.

Nothing in the library's hot path imports this module.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.exceptions import AggregationError
from repro.typing import Matrix, Vector

__all__ = [
    "REFERENCE_AGGREGATORS",
    "bulyan_aggregate_reference",
    "geometric_median_reference",
    "krum_aggregate_reference",
    "krum_scores_reference",
    "mda_aggregate_reference",
    "mean_around_anchor_reference",
    "meamed_aggregate_reference",
    "median_aggregate_reference",
    "phocas_aggregate_reference",
    "rank_by_score_then_value_reference",
    "trimmed_mean_aggregate_reference",
]


def krum_scores_reference(gradients: Matrix, f: int) -> np.ndarray:
    """Original Krum scoring: Gram-expansion distances + full sort."""
    n = gradients.shape[0]
    neighbours = n - f - 2
    if neighbours < 1:
        raise AggregationError(
            f"krum scoring needs n - f - 2 >= 1, got n={n}, f={f}"
        )
    squared_norms = np.sum(gradients**2, axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (
        gradients @ gradients.T
    )
    distances = np.maximum(distances, 0.0)
    np.fill_diagonal(distances, np.inf)
    nearest = np.sort(distances, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


def rank_by_score_then_value_reference(
    scores: np.ndarray, gradients: Matrix
) -> np.ndarray:
    """Original tie-break: Python ``sorted`` over ``(score, tuple(row))``."""
    order = sorted(
        range(len(scores)), key=lambda index: (scores[index], tuple(gradients[index]))
    )
    return np.asarray(order)


def krum_aggregate_reference(gradients: Matrix, f: int, m: int = 1) -> Vector:
    """Original Krum / Multi-Krum aggregation."""
    scores = krum_scores_reference(gradients, f)
    order = rank_by_score_then_value_reference(scores, gradients)
    if m == 1:
        return gradients[int(order[0])].copy()
    return gradients[order[:m]].mean(axis=0)


def geometric_median_reference(
    points: Matrix,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    smoothing: float = 1e-12,
) -> Vector:
    """Original smoothed Weiszfeld loop with per-iteration allocations."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 1:
        raise AggregationError(f"points must be (n, d) with n >= 1, got {points.shape}")
    if max_iterations < 1:
        raise AggregationError(f"max_iterations must be >= 1, got {max_iterations}")
    estimate = points.mean(axis=0)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points - estimate[None, :], axis=1)
        weights = 1.0 / np.maximum(distances, smoothing)
        updated = (weights[:, None] * points).sum(axis=0) / weights.sum()
        shift = float(np.linalg.norm(updated - estimate))
        estimate = updated
        if shift <= tolerance:
            break
    return estimate


def mda_aggregate_reference(gradients: Matrix, f: int) -> Vector:
    """Original MDA: Python loop over subsets with a branch-cut."""
    n = gradients.shape[0]
    if f == 0:
        return gradients.mean(axis=0)
    selection_size = n - f
    squared_norms = np.sum(gradients**2, axis=1)
    squared = (
        squared_norms[:, None] + squared_norms[None, :] - 2.0 * (gradients @ gradients.T)
    )
    distances = np.sqrt(np.maximum(squared, 0.0))

    best_diameter = math.inf
    best_mean: Vector | None = None
    for subset in combinations(range(n), selection_size):
        diameter = 0.0
        for position, i in enumerate(subset):
            row = distances[i]
            for j in subset[position + 1 :]:
                value = row[j]
                if value > diameter:
                    diameter = value
                    if diameter > best_diameter:
                        break
            if diameter > best_diameter:
                break
        if diameter > best_diameter:
            continue
        mean = gradients[list(subset)].mean(axis=0)
        if diameter < best_diameter or (
            best_mean is not None and tuple(mean) < tuple(best_mean)
        ):
            best_diameter = diameter
            best_mean = mean
    assert best_mean is not None
    return best_mean


def bulyan_aggregate_reference(gradients: Matrix, n: int, f: int) -> Vector:
    """Original Bulyan: per-pass Gram distance recomputation."""
    theta = n - 2 * f
    beta = theta - 2 * f

    remaining = list(range(n))
    selected: list[int] = []
    for _ in range(theta):
        subset = gradients[remaining]
        if len(remaining) - f - 2 >= 1:
            scores = krum_scores_reference(subset, f)
        else:
            center = subset.mean(axis=0)
            scores = np.sum((subset - center) ** 2, axis=1)
        winner_position = int(
            rank_by_score_then_value_reference(scores, subset)[0]
        )
        selected.append(remaining.pop(winner_position))
    selection = gradients[selected]

    medians = np.median(selection, axis=0)
    deviation = np.abs(selection - medians[None, :])
    closest = np.lexsort((selection, deviation), axis=0)[:beta]
    picked = np.take_along_axis(selection, closest, axis=0)
    return picked.mean(axis=0)


def median_aggregate_reference(gradients: Matrix) -> Vector:
    """Coordinate-wise median (already a single NumPy call)."""
    return np.median(gradients, axis=0)


def trimmed_mean_aggregate_reference(gradients: Matrix, f: int) -> Vector:
    """Original coordinate-wise f-trimmed mean."""
    n = gradients.shape[0]
    if f == 0:
        return gradients.mean(axis=0)
    ordered = np.sort(gradients, axis=0)
    return ordered[f : n - f].mean(axis=0)


def mean_around_anchor_reference(gradients: Matrix, anchor: Vector, keep: int) -> Vector:
    """Original per-coordinate mean of the ``keep`` values nearest ``anchor``."""
    deviation = np.abs(gradients - anchor[None, :])
    closest = np.lexsort((gradients, deviation), axis=0)[:keep]
    picked = np.take_along_axis(gradients, closest, axis=0)
    return picked.mean(axis=0)


def meamed_aggregate_reference(gradients: Matrix, f: int) -> Vector:
    """Original Meamed: median anchor + mean-around-anchor."""
    n = gradients.shape[0]
    medians = np.median(gradients, axis=0)
    return mean_around_anchor_reference(gradients, medians, n - f)


def phocas_aggregate_reference(gradients: Matrix, f: int) -> Vector:
    """Original Phocas: trimmed-mean anchor + mean-around-anchor."""
    n = gradients.shape[0]
    anchor = trimmed_mean_aggregate_reference(gradients, f)
    return mean_around_anchor_reference(gradients, anchor, n - f)


#: name -> ``callable(gradients, n, f) -> Vector`` for the benchmark's
#: "old" side.  Keys match the GAR registry names.
REFERENCE_AGGREGATORS = {
    "average": lambda gradients, n, f: gradients.mean(axis=0),
    "median": lambda gradients, n, f: median_aggregate_reference(gradients),
    "trimmed-mean": lambda gradients, n, f: trimmed_mean_aggregate_reference(gradients, f),
    "meamed": lambda gradients, n, f: meamed_aggregate_reference(gradients, f),
    "phocas": lambda gradients, n, f: phocas_aggregate_reference(gradients, f),
    "krum": lambda gradients, n, f: krum_aggregate_reference(gradients, f),
    "multi-krum": lambda gradients, n, f: krum_aggregate_reference(
        gradients, f, m=n - f
    ),
    "geometric-median": lambda gradients, n, f: geometric_median_reference(gradients),
    "mda": lambda gradients, n, f: mda_aggregate_reference(gradients, f),
    "bulyan": lambda gradients, n, f: bulyan_aggregate_reference(gradients, n, f),
}
