"""Coordinate-wise median (Yin et al. 2018).

Each output coordinate is the median of that coordinate across the
``n`` submitted gradients.  Valid for ``2 f <= n - 1`` with
``k_F(n, f) = 1 / sqrt(n - f)``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_median, require_majority_honest
from repro.gars.kernels import median_batch
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["MedianGAR"]


class MedianGAR(GAR):
    """Coordinate-wise median."""

    name = "median"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """``1 / sqrt(n - f)``."""
        return k_median(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        return np.median(gradients, axis=0)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return median_batch(stack)
