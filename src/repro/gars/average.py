"""Plain averaging — the non-robust baseline.

Averaging is the aggregation used when all workers are assumed honest
(Eq. 1 of the paper).  Blanchard et al. prove that *no* linear
combination of the gradients (averaging included) tolerates even a
single Byzantine worker, so this rule's precondition is ``f = 0``; a
permissive constructor flag lets experiments deliberately run averaging
under attack to demonstrate its failure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["AverageGAR"]


class AverageGAR(GAR):
    """Coordinate-wise mean of all submitted gradients."""

    name = "average"

    def __init__(self, n: int, f: int = 0, allow_byzantine: bool = False):
        # Averaging is only resilient for f = 0; experiments may bypass
        # this to demonstrate the failure mode.
        if f > 0 and not allow_byzantine:
            raise AggregationError(
                "averaging is not Byzantine resilient for f > 0 "
                "(Blanchard et al. 2017); pass allow_byzantine=True to "
                "run it anyway as a deliberately broken baseline"
            )
        self._allow_byzantine = bool(allow_byzantine)
        super().__init__(n, f)

    def k_f(self) -> float:
        """Infinite for ``f = 0`` (no Byzantine workers to defeat it);
        zero otherwise (no variance level makes averaging robust)."""
        return math.inf if self._f == 0 else 0.0

    def _aggregate(self, gradients: Matrix) -> Vector:
        return gradients.mean(axis=0)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return stack.mean(axis=1)
