"""Old-vs-new kernel benchmark: the repo's aggregation perf trajectory.

Times every GAR's pre-vectorization reference implementation
(:mod:`repro.gars.reference`) against the vectorized engine
(:mod:`repro.gars.kernels`, via :meth:`GAR.aggregate_batch`) across an
``(n, f, d)`` grid, and emits the ``BENCH_kernels.json`` document that
locks the measured speedups into the repository.

Two front ends share this module: ``python -m repro bench`` (the CLI
subcommand, which writes the JSON artifact) and
``benchmarks/bench_kernels.py`` (the standalone/pytest harness).

Methodology: each case aggregates the same ``(S, n, d)`` stack of
random rounds through both paths — the reference as a per-round Python
loop (exactly how the pre-vectorization code ran inside
``Cluster.step``), the engine as one batched call — and reports the
best-of-``repeats`` wall time divided by ``S``, i.e. nanoseconds per
aggregated round.  Both outputs are compared so a benchmark can never
silently race ahead of correctness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.gars import get_gar
from repro.gars.reference import REFERENCE_AGGREGATORS, krum_aggregate_reference
from repro.telemetry.timing import best_of_ns

__all__ = [
    "BenchCase",
    "BenchResult",
    "default_grid",
    "format_bench_table",
    "run_kernel_benchmarks",
    "save_benchmarks",
    "smoke_grid",
]

#: Document format version for ``BENCH_kernels.json``.
SCHEMA = "repro.bench_kernels/1"


@dataclass(frozen=True)
class BenchCase:
    """One ``(gar, n, f, d)`` cell of the benchmark grid."""

    gar: str
    n: int
    f: int
    d: int
    stack: int = 4  #: rounds aggregated per timed call
    gar_kwargs: dict = field(default_factory=dict)

    @property
    def reference_name(self) -> str:
        """Key into :data:`REFERENCE_AGGREGATORS` (multi-krum shares the
        ``krum`` registry entry but not its reference)."""
        if self.gar == "krum" and self.gar_kwargs.get("m", 1) > 1:
            return "multi-krum"
        return self.gar

    @property
    def label(self) -> str:
        return f"{self.reference_name} n={self.n} f={self.f} d={self.d}"


@dataclass(frozen=True)
class BenchResult:
    """Timings for one case, in nanoseconds per aggregated round."""

    case: BenchCase
    reference_ns_per_op: float
    kernel_ns_per_op: float
    max_abs_diff: float

    @property
    def speedup(self) -> float:
        return self.reference_ns_per_op / self.kernel_ns_per_op

    def to_dict(self) -> dict:
        return {
            "gar": self.case.reference_name,
            "n": self.case.n,
            "f": self.case.f,
            "d": self.case.d,
            "stack": self.case.stack,
            "reference_ns_per_op": self.reference_ns_per_op,
            "kernel_ns_per_op": self.kernel_ns_per_op,
            "speedup": self.speedup,
            "max_abs_diff": self.max_abs_diff,
        }


def default_grid() -> list[BenchCase]:
    """The full grid: the paper's shape, a mid cohort, and the scaling
    target ``n = 50, d = 10_000`` for every rule that admits it."""
    return [
        BenchCase("krum", 11, 4, 69),
        BenchCase("krum", 25, 7, 1_000),
        BenchCase("krum", 50, 10, 10_000),
        BenchCase("krum", 50, 10, 10_000, gar_kwargs={"m": 40}),
        BenchCase("geometric-median", 11, 5, 69),
        BenchCase("geometric-median", 25, 7, 1_000),
        BenchCase("geometric-median", 50, 10, 10_000),
        BenchCase("median", 11, 5, 69),
        BenchCase("median", 50, 10, 10_000),
        BenchCase("trimmed-mean", 11, 5, 69),
        BenchCase("trimmed-mean", 50, 10, 10_000),
        BenchCase("meamed", 11, 5, 69),
        BenchCase("meamed", 50, 10, 10_000),
        BenchCase("phocas", 11, 5, 69),
        BenchCase("phocas", 50, 10, 10_000),
        BenchCase("average", 50, 0, 10_000),
        BenchCase("mda", 11, 5, 69),
        BenchCase("mda", 13, 3, 1_000),
        BenchCase("bulyan", 11, 2, 69),
        BenchCase("bulyan", 23, 5, 1_000),
    ]


def smoke_grid() -> list[BenchCase]:
    """A seconds-scale subset for CI smoke runs.

    Every smoke cell is an exact ``(gar, n, f, d, stack)`` member of
    :func:`default_grid`, so the CI regression guard can join the smoke
    run against the committed full-grid ``BENCH_kernels.json``.
    """
    return [
        BenchCase("krum", 11, 4, 69),
        BenchCase("geometric-median", 11, 5, 69),
        BenchCase("median", 11, 5, 69),
        BenchCase("mda", 11, 5, 69),
        BenchCase("bulyan", 11, 2, 69),
    ]


def run_case(case: BenchCase, repeats: int = 3, seed: int = 0) -> BenchResult:
    """Time one grid cell, reference loop vs batched kernel."""
    rng = np.random.default_rng(seed)
    stack = rng.standard_normal((case.stack, case.n, case.d))
    gar = get_gar(case.gar, case.n, case.f, **case.gar_kwargs)
    if case.gar == "krum" and case.gar_kwargs.get("m", 1) > 1:
        # The reference must run the *same* rule: honour the case's m.
        def reference(gradients, n, f, _m=case.gar_kwargs["m"]):
            return krum_aggregate_reference(gradients, f, m=_m)

    else:
        reference = REFERENCE_AGGREGATORS[case.reference_name]

    def run_reference():
        return np.stack(
            [reference(matrix, case.n, case.f) for matrix in stack]
        )

    def run_kernel():
        return gar.aggregate_batch(stack)

    reference_output = run_reference()
    kernel_output = run_kernel()
    max_abs_diff = float(np.max(np.abs(reference_output - kernel_output)))

    reference_ns = best_of_ns(run_reference, repeats)
    kernel_ns = best_of_ns(run_kernel, repeats)
    return BenchResult(
        case=case,
        reference_ns_per_op=reference_ns / case.stack,
        kernel_ns_per_op=kernel_ns / case.stack,
        max_abs_diff=max_abs_diff,
    )


def run_kernel_benchmarks(
    cases: Sequence[BenchCase] | None = None,
    repeats: int = 3,
    seed: int = 0,
    verbose: bool = False,
) -> dict:
    """Run the grid and return the ``BENCH_kernels.json`` document."""
    if cases is None:
        cases = default_grid()
    results = []
    for case in cases:
        result = run_case(case, repeats=repeats, seed=seed)
        results.append(result)
        if verbose:
            print(
                f"  {result.case.label:<42} "
                f"{result.reference_ns_per_op / 1e6:>9.3f} ms -> "
                f"{result.kernel_ns_per_op / 1e6:>9.3f} ms "
                f"({result.speedup:.2f}x)"
            )
    return {
        "schema": SCHEMA,
        "unit": "ns_per_aggregated_round",
        "repeats": repeats,
        "seed": seed,
        "results": [result.to_dict() for result in results],
    }


def format_bench_table(payload: dict) -> str:
    """Human-readable summary of a benchmark document."""
    rows = [
        f"{'gar':<18}{'n':>4}{'f':>4}{'d':>8}"
        f"{'reference ms/op':>17}{'kernel ms/op':>14}{'speedup':>9}"
    ]
    for entry in payload["results"]:
        rows.append(
            f"{entry['gar']:<18}{entry['n']:>4}{entry['f']:>4}{entry['d']:>8}"
            f"{entry['reference_ns_per_op'] / 1e6:>17.3f}"
            f"{entry['kernel_ns_per_op'] / 1e6:>14.3f}"
            f"{entry['speedup']:>8.2f}x"
        )
    return "\n".join(rows)


def save_benchmarks(payload: dict, path: Path) -> None:
    """Write a benchmark document (kernel or training) as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
