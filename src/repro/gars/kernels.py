"""Vectorized aggregation kernels — the engine behind every GAR hot path.

Every kernel here operates on NumPy arrays end to end, with no per-row
Python loops on the hot path, and accepts either a single ``(n, d)``
gradient matrix or a stacked batch ``(B, n, d)`` of independent rounds
(steps or seeds) aggregated in one call.  The batched forms are
bit-identical to running the single-matrix form per slice: NumPy's
batched ``matmul``/``einsum``/``sort`` reductions perform the same
per-lane operations, which the kernel test-suite locks in.

Kernel inventory
----------------

* :func:`pairwise_sq_distances` — one distance matrix per round, shared
  by Krum, Multi-Krum, Bulyan and MDA.  Uses the Gram expansion
  ``||x||^2 + ||y||^2 - 2 x.y`` for speed, then recomputes the entries
  the expansion cannot resolve (near-duplicate rows, where catastrophic
  cancellation loses all significant digits) with an exact
  ``np.einsum`` difference path.
* :func:`krum_scores_from_sq_distances` — ``np.partition``-based
  neighbour selection instead of a full sort.
* :func:`rank_by_score_then_value` — NumPy-native replacement for the
  Python ``sorted(..., key=(score, tuple(row)))`` tie-break: a stable
  argsort plus ``np.lexsort`` resolution of exact-tie runs only.
* :func:`geometric_median` / :func:`geometric_median_batch` — Weiszfeld
  iterations driven by two BLAS matrix-vector products per round
  instead of four broadcast passes, with vectorized convergence masking
  across the batch.
* :func:`mda_aggregate` — exhaustive minimum-diameter search over a
  precomputed distance matrix, with subset diameters evaluated in
  chunked fancy-indexing gathers instead of nested Python loops.
* :func:`bulyan_select` — iterated-Krum selection that *slices* the
  precomputed distance matrix instead of recomputing distances on
  every pass.
* coordinate-wise kernels (:func:`median_batch`,
  :func:`trimmed_mean_batch`, :func:`mean_around_anchor_batch`,
  :func:`meamed_batch`, :func:`phocas_batch`) — ``axis``-generalised so
  a whole stack is one call.
* :func:`batched_aggregate` — the engine's entry point: validate a
  ``(B, n, d)`` stack once and dispatch to a GAR's batched path.
"""

from __future__ import annotations

import math
from itertools import combinations, islice

import numpy as np

from repro.exceptions import AggregationError
from repro.typing import Matrix, Vector

__all__ = [
    "batched_aggregate",
    "bulyan_select",
    "geometric_median",
    "geometric_median_batch",
    "krum_scores_from_sq_distances",
    "mda_aggregate",
    "mean_around_anchor_batch",
    "meamed_batch",
    "median_batch",
    "pairwise_sq_distances",
    "phocas_batch",
    "rank_by_score_then_value",
    "trimmed_mean_batch",
]

#: Entries of the Gram-expansion distance matrix smaller than this
#: fraction of their scale (``||x||^2 + ||y||^2``) carry no reliable
#: significant digits (the expansion's rounding error is a few hundred
#: ulps of the scale) and are recomputed exactly.  1e-10 leaves ~4
#: orders of magnitude of safety margin over the worst-case error at
#: d = 10^6 while keeping the exact path off for well-separated rows.
_GRAM_RELIABLE_RTOL = 1e-10

#: Upper bound on ``C(n, n - f) * (n - f)^2`` scratch floats held at
#: once by the MDA diameter gather (~64 MiB of float64).
_MDA_CHUNK_FLOATS = 8_000_000

#: Upper bound on ``pairs * d`` scratch floats held at once by the
#: exact-distance fallback's difference gather (~64 MiB of float64).
#: Duplicate rows make the fallback routine — e.g. every attacked round
#: carries f identical Byzantine submissions — so a big batched call
#: must not materialise all unreliable pairs in one allocation.
_EXACT_CHUNK_FLOATS = 8_000_000


# ---------------------------------------------------------------------------
# pairwise distances
# ---------------------------------------------------------------------------


def pairwise_sq_distances(gradients: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix of the rows, batched.

    ``(n, d) -> (n, n)`` or ``(B, n, d) -> (B, n, n)``.  Fast path is
    the Gram expansion (one ``matmul``); entries that the expansion
    cannot resolve — anything below ``1e-10 * (||x||^2 + ||y||^2)``,
    which includes every near-duplicate pair — are recomputed exactly
    from the row differences, so near-duplicate rows score 0 (or their
    true tiny distance) instead of cancellation noise.
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    if gradients.ndim == 2:
        return _pairwise_sq_exact_hybrid(gradients[None])[0]
    if gradients.ndim != 3:
        raise AggregationError(
            f"gradients must be (n, d) or (B, n, d), got shape {gradients.shape}"
        )
    return _pairwise_sq_exact_hybrid(gradients)


def _pairwise_sq_exact_hybrid(stack: np.ndarray) -> np.ndarray:
    """The ``(B, n, d)`` hybrid Gram + exact-fallback distance kernel."""
    sq_norms = np.einsum("bnd,bnd->bn", stack, stack)
    sq = sq_norms[:, :, None] + sq_norms[:, None, :]
    scale = sq.copy()
    sq -= 2.0 * (stack @ stack.transpose(0, 2, 1))
    np.maximum(sq, 0.0, out=sq)
    diagonal = np.arange(stack.shape[1])
    sq[:, diagonal, diagonal] = 0.0
    unreliable = sq <= _GRAM_RELIABLE_RTOL * scale
    unreliable[:, diagonal, diagonal] = False
    if unreliable.any():
        batch, ii, jj = np.nonzero(unreliable)
        upper = ii < jj  # the matrix is symmetric; compute each pair once
        batch, ii, jj = batch[upper], ii[upper], jj[upper]
        chunk = max(1, _EXACT_CHUNK_FLOATS // stack.shape[2])
        for start in range(0, len(batch), chunk):
            stop = start + chunk
            b, i, j = batch[start:stop], ii[start:stop], jj[start:stop]
            difference = stack[b, i] - stack[b, j]
            exact = np.einsum("md,md->m", difference, difference)
            sq[b, i, j] = exact
            sq[b, j, i] = exact
    return sq


# ---------------------------------------------------------------------------
# Krum family
# ---------------------------------------------------------------------------


def krum_scores_from_sq_distances(sq_distances: np.ndarray, f: int) -> np.ndarray:
    """Krum score of each row from a precomputed distance matrix.

    ``(..., n, n) -> (..., n)``: the sum of the ``n - f - 2`` smallest
    squared distances to the *other* rows.  ``np.partition`` isolates
    the neighbour set in O(n) per row; the selected block is then
    sorted so the summation order (ascending) matches the reference
    full-sort implementation bit for bit.
    """
    sq_distances = np.asarray(sq_distances, dtype=np.float64)
    n = sq_distances.shape[-1]
    neighbours = n - f - 2
    if neighbours < 1:
        raise AggregationError(
            f"krum scoring needs n - f - 2 >= 1, got n={n}, f={f}"
        )
    masked = sq_distances.copy()
    diagonal = np.arange(n)
    masked[..., diagonal, diagonal] = np.inf  # a row is not its own neighbour
    nearest = np.partition(masked, neighbours - 1, axis=-1)[..., :neighbours]
    nearest.sort(axis=-1)
    return nearest.sum(axis=-1)


def select_best_by_score_then_value(scores: np.ndarray, gradients: Matrix) -> int:
    """Index of the best row: ``rank_by_score_then_value(...)[0]``.

    Classic Krum (``m = 1``) only needs the winner, so the full stable
    argsort — and the scan over every non-winning tie run — is wasted
    work on the hot path.  Equivalence: the stable argsort places the
    minimal-score rows first in submission order, and the tie handler
    re-ranks exactly that run lexicographically; selecting the
    lexicographically-smallest row among the minimal scores (submission
    order when they are fully identical) returns the same index.
    """
    scores = np.asarray(scores)
    tied = np.flatnonzero(scores == scores.min())
    if tied.size == 1:
        return int(tied[0])
    rows = gradients[tied]
    if (rows == rows[0]).all():
        return int(tied[0])
    return int(tied[np.lexsort(rows.T[::-1])[0]])


def rank_by_score_then_value(scores: np.ndarray, gradients: Matrix) -> np.ndarray:
    """Indices sorted by score, breaking exact ties lexicographically.

    Exact score ties are structural, not just numerical flukes: with a
    single Krum neighbour (``n - f - 2 = 1``), mutually-nearest rows
    share the same score.  Breaking ties by the gradient *values*
    (instead of the submission order) keeps every selection-based GAR
    permutation-invariant.

    NumPy-native: a stable argsort orders by score; only runs of
    *exactly* equal scores are re-ranked, each with one ``np.lexsort``
    over the run's rows (first coordinate most significant).  Rows that
    are fully identical keep submission order, matching the semantics
    of the previous Python ``sorted(..., key=(score, tuple(row)))``.
    """
    scores = np.asarray(scores)
    order = np.argsort(scores, kind="stable")
    ranked = scores[order]
    ties = np.flatnonzero(ranked[1:] == ranked[:-1])
    if ties.size:
        run_starts = ties[np.r_[True, np.diff(ties) > 1]]
        for start in run_starts:
            stop = start + 1
            while stop < len(ranked) and ranked[stop] == ranked[start]:
                stop += 1
            block = order[start:stop]
            rows = gradients[block]
            if (rows == rows[0]).all():
                # Fully identical rows keep submission order — exactly
                # what a stable lexsort over equal keys returns, minus
                # the d-key sort.  This is every attacked round's tie
                # run (the f Byzantine submissions are one vector).
                continue
            # lexsort keys are least-significant first: feed the columns
            # reversed so column 0 is the primary key.
            order[start:stop] = block[np.lexsort(rows.T[::-1])]
    return order


# ---------------------------------------------------------------------------
# geometric median (Weiszfeld)
# ---------------------------------------------------------------------------


def geometric_median_batch(
    points: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    smoothing: float = 1e-12,
) -> np.ndarray:
    """Smoothed Weiszfeld over a ``(B, n, d)`` stack in one vectorized run.

    Each iteration needs only two BLAS products over the data —
    ``points @ estimate`` for the distances (via the norm expansion,
    clamped at 0 and floored at ``smoothing``, which both absorbs the
    expansion's cancellation noise near a data point and keeps the
    iteration defined there) and ``weights @ points`` for the
    reweighted average — instead of materialising ``points - estimate``
    and ``weights * points`` temporaries.  Convergence is tracked per
    slice: slices whose estimate moved at most ``tolerance`` drop out
    of subsequent iterations, so a batch is never slower than its
    slowest member.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[1] < 1:
        raise AggregationError(
            f"points must be (B, n, d) with n >= 1, got {points.shape}"
        )
    if max_iterations < 1:
        raise AggregationError(f"max_iterations must be >= 1, got {max_iterations}")
    # Center each slice on its mean (the iteration's starting estimate).
    # The geometric median is translation-equivariant, and centering
    # keeps ||x||^2 on the order of the data spread — without it, a
    # tight cluster at a large offset would lose the distances to
    # catastrophic cancellation in the norm expansion below (the same
    # failure mode pairwise_sq_distances guards against).
    centers = points.mean(axis=1)
    points = points - centers[:, None, :]
    sq_norms = np.einsum("bnd,bnd->bn", points, points)
    estimates = np.zeros_like(centers)
    # Active-set state: ``group``/``group_sq_norms``/``estimate`` hold the
    # not-yet-converged slices and are re-gathered only when a slice
    # retires, so a steady-state iteration is exactly two BLAS products
    # (points @ estimate for the distances, weights @ points for the
    # reweighted average) with no (n, d) temporaries or copies.
    active = np.arange(points.shape[0])
    group = points
    group_sq_norms = sq_norms
    estimate = estimates.copy()
    first_iteration = True
    for _ in range(max_iterations):
        if first_iteration:
            # The starting estimate is exactly zero (the centered mean),
            # so the expansion collapses to the precomputed row norms —
            # bit-identically, since every skipped term is a product
            # with 0.0.
            sq_distances = group_sq_norms
            first_iteration = False
        else:
            sq_distances = (
                group_sq_norms
                - 2.0 * (group @ estimate[:, :, None])[:, :, 0]
                + np.einsum("bd,bd->b", estimate, estimate)[:, None]
            )
            np.maximum(sq_distances, 0.0, out=sq_distances)
        weights = 1.0 / np.maximum(np.sqrt(sq_distances), smoothing)
        updated = (weights[:, None, :] @ group)[:, 0, :]
        updated /= weights.sum(axis=1)[:, None]
        shift = np.linalg.norm(updated - estimate, axis=1)
        estimate = updated
        still_moving = shift > tolerance
        if not still_moving.all():
            retired = ~still_moving
            estimates[active[retired]] = estimate[retired]
            active = active[still_moving]
            if not active.size:
                break
            group = group[still_moving]
            group_sq_norms = group_sq_norms[still_moving]
            estimate = estimate[still_moving]
    if active.size:
        estimates[active] = estimate
    return estimates + centers


def geometric_median(
    points: Matrix,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    smoothing: float = 1e-12,
) -> Vector:
    """Single-matrix geometric median; one-slice view of the batch kernel."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 1:
        raise AggregationError(f"points must be (n, d) with n >= 1, got {points.shape}")
    return geometric_median_batch(
        points[None],
        max_iterations=max_iterations,
        tolerance=tolerance,
        smoothing=smoothing,
    )[0]


# ---------------------------------------------------------------------------
# MDA
# ---------------------------------------------------------------------------


def mda_aggregate(
    gradients: Matrix, f: int, sq_distances: np.ndarray | None = None
) -> Vector:
    """Minimum Diameter Averaging with a vectorized exhaustive search.

    Enumerates every ``(n - f)``-subset once as an index matrix and
    evaluates all subset diameters with chunked fancy-indexing maxima
    over the (hybrid-exact) precomputed distance matrix — no per-subset
    Python loop.  Exact diameter ties are broken by the lexicographically
    smallest subset *mean*, same as the reference implementation, so the
    rule stays independent of submission order.
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    n = gradients.shape[0]
    if f == 0:
        return gradients.mean(axis=0)
    selection_size = n - f
    if sq_distances is None:
        sq_distances = pairwise_sq_distances(gradients)
    distances = np.sqrt(sq_distances)

    # Enumerate the C(n, n - f) subsets lazily, one chunk of index rows
    # at a time, so peak scratch stays at the chunk budget (the replaced
    # reference loop was O(1); materialising the full index matrix up
    # front would cost hundreds of MB at the 10^6-subset cap).
    subset_count = math.comb(n, selection_size)
    subset_iterator = combinations(range(n), selection_size)
    chunk = max(1, _MDA_CHUNK_FLOATS // (selection_size * selection_size))
    best_diameter = math.inf
    candidates: list[np.ndarray] = []
    for start in range(0, subset_count, chunk):
        take = min(chunk, subset_count - start)
        block = np.fromiter(
            islice(subset_iterator, take),
            dtype=np.dtype((np.intp, selection_size)),
            count=take,
        )
        diameters = distances[block[:, :, None], block[:, None, :]].max(axis=(1, 2))
        block_best = float(diameters.min())
        if block_best < best_diameter:
            best_diameter = block_best
            candidates = [block[diameters == best_diameter]]
        elif block_best == best_diameter:
            candidates.append(block[diameters == best_diameter])
    tied = np.concatenate(candidates, axis=0)
    means = gradients[tied].mean(axis=1)  # (ties, d)
    if len(means) == 1:
        return means[0]
    # Lexicographically smallest mean among the exact-diameter ties.
    winner = np.lexsort(means.T[::-1])[0]
    return means[winner]


# ---------------------------------------------------------------------------
# Bulyan selection
# ---------------------------------------------------------------------------


def bulyan_select(
    gradients: Matrix, f: int, theta: int, sq_distances: np.ndarray | None = None
) -> np.ndarray:
    """Indices of Bulyan's iterated-Krum selection, reusing one distance
    matrix across all ``theta`` passes.

    Each pass scores the remaining rows by *slicing* the precomputed
    matrix instead of recomputing pairwise distances, removes the
    winner, and repeats; when too few rows remain for Krum scoring the
    pass falls back to distance-to-mean, as before.
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    if sq_distances is None:
        sq_distances = pairwise_sq_distances(gradients)
    remaining = np.arange(gradients.shape[0])
    selected = np.empty(theta, dtype=np.intp)
    for pass_index in range(theta):
        subset = gradients[remaining]
        if len(remaining) - f - 2 >= 1:
            scores = krum_scores_from_sq_distances(
                sq_distances[np.ix_(remaining, remaining)], f
            )
        else:
            center = subset.mean(axis=0)
            scores = np.sum((subset - center) ** 2, axis=1)
        winner_position = int(rank_by_score_then_value(scores, subset)[0])
        selected[pass_index] = remaining[winner_position]
        remaining = np.delete(remaining, winner_position)
    return selected


# ---------------------------------------------------------------------------
# coordinate-wise kernels (batched along axis -2)
# ---------------------------------------------------------------------------


def median_batch(stack: np.ndarray) -> np.ndarray:
    """Coordinate-wise median over the worker axis: ``(..., n, d) -> (..., d)``."""
    return np.median(stack, axis=-2)


def trimmed_mean_batch(stack: np.ndarray, f: int) -> np.ndarray:
    """Coordinate-wise ``f``-trimmed mean: ``(..., n, d) -> (..., d)``."""
    n = stack.shape[-2]
    if f == 0:
        return stack.mean(axis=-2)
    ordered = np.sort(stack, axis=-2)
    return ordered[..., f : n - f, :].mean(axis=-2)


def mean_around_anchor_batch(
    stack: np.ndarray, anchor: np.ndarray, keep: int
) -> np.ndarray:
    """Per coordinate, average the ``keep`` values closest to ``anchor``.

    ``(..., n, d)`` with anchor ``(..., d)``; distance ties are broken
    by the value itself (via a two-key lexsort) so the result is
    permutation-invariant even on equidistant inputs.
    """
    deviation = np.abs(stack - np.expand_dims(anchor, -2))
    closest = np.lexsort((stack, deviation), axis=-2)
    picked = np.take_along_axis(stack, closest[..., :keep, :], axis=-2)
    return picked.mean(axis=-2)


def meamed_batch(stack: np.ndarray, f: int) -> np.ndarray:
    """Meamed over a stack: mean of the ``n - f`` values nearest the median."""
    n = stack.shape[-2]
    return mean_around_anchor_batch(stack, median_batch(stack), n - f)


def phocas_batch(stack: np.ndarray, f: int) -> np.ndarray:
    """Phocas over a stack: mean of the ``n - f`` values nearest the
    trimmed mean."""
    n = stack.shape[-2]
    return mean_around_anchor_batch(stack, trimmed_mean_batch(stack, f), n - f)


# ---------------------------------------------------------------------------
# engine entry point
# ---------------------------------------------------------------------------


def batched_aggregate(gar, gradients_stack: np.ndarray) -> np.ndarray:
    """Aggregate a whole ``(B, n, d)`` stack of rounds in one call.

    ``B`` indexes independent rounds (training steps, seeds, or grid
    cells); each slice is aggregated by ``gar`` exactly as
    ``gar.aggregate`` would, and rules with a vectorized batch path
    (the Krum family, the coordinate-wise rules, the geometric median)
    process the entire stack without a per-round Python loop.  Returns
    the ``(B, d)`` aggregates.
    """
    return gar.aggregate_batch(gradients_stack)
