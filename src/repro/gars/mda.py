"""MDA — Minimum Diameter Averaging (El-Mhamdi et al. 2020).

MDA selects the subset of ``n - f`` gradients with the smallest
*diameter* (largest pairwise distance within the subset) and returns
the average of that subset.  It is the GAR the paper's experiments use,
because its VN-ratio constant ``k_F(n, f) = (n - f) / (sqrt(8) f)`` is
the largest among the presented rules.

The search is exact and exhaustive over the ``C(n, n - f)`` subsets,
fully vectorized (:func:`repro.gars.kernels.mda_aggregate`): subset
diameters are evaluated as chunked fancy-indexing maxima over one
precomputed distance matrix.  For the paper's ``n = 11, f = 5`` this is
462 subsets; construction refuses plainly infeasible instances (more
than ``10^6`` subsets) rather than silently taking hours.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.gars.constants import k_mda, require_majority_honest
from repro.gars.kernels import mda_aggregate, pairwise_sq_distances
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["MDAGAR"]

_MAX_SUBSETS = 1_000_000


class MDAGAR(GAR):
    """Minimum Diameter Averaging with exhaustive exact search."""

    name = "mda"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)
        if math.comb(n, n - f) > _MAX_SUBSETS:
            raise AggregationError(
                f"mda exhaustive search over C({n}, {n - f}) = "
                f"{math.comb(n, n - f)} subsets is infeasible "
                f"(limit {_MAX_SUBSETS})"
            )

    def k_f(self) -> float:
        """``(n - f) / (sqrt(8) f)`` — the largest among the presented GARs."""
        return k_mda(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        return mda_aggregate(gradients, self._f)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        # Distances for the whole stack in one kernel call; the subset
        # search itself is combinatorial and runs per slice.
        if self._f == 0:
            return stack.mean(axis=1)
        sq_distances = pairwise_sq_distances(stack)
        return np.stack(
            [
                mda_aggregate(matrix, self._f, sq_distances=sq)
                for matrix, sq in zip(stack, sq_distances)
            ]
        )
