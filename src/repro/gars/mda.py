"""MDA — Minimum Diameter Averaging (El-Mhamdi et al. 2020).

MDA selects the subset of ``n - f`` gradients with the smallest
*diameter* (largest pairwise distance within the subset) and returns
the average of that subset.  It is the GAR the paper's experiments use,
because its VN-ratio constant ``k_F(n, f) = (n - f) / (sqrt(8) f)`` is
the largest among the presented rules.

The search is exact and exhaustive over the ``C(n, n - f)`` subsets,
with a branch-cut on the running best diameter.  For the paper's
``n = 11, f = 5`` this is 462 subsets; construction refuses plainly
infeasible instances (more than ``10^6`` subsets) rather than silently
taking hours.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.gars.constants import k_mda, require_majority_honest
from repro.typing import Matrix, Vector

__all__ = ["MDAGAR"]

_MAX_SUBSETS = 1_000_000


class MDAGAR(GAR):
    """Minimum Diameter Averaging with exhaustive exact search."""

    name = "mda"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)
        if math.comb(n, n - f) > _MAX_SUBSETS:
            raise AggregationError(
                f"mda exhaustive search over C({n}, {n - f}) = "
                f"{math.comb(n, n - f)} subsets is infeasible "
                f"(limit {_MAX_SUBSETS})"
            )

    def k_f(self) -> float:
        """``(n - f) / (sqrt(8) f)`` — the largest among the presented GARs."""
        return k_mda(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        if self._f == 0:
            return gradients.mean(axis=0)
        n = self._n
        selection_size = n - self._f
        # Pairwise distances once, O(n^2 d).
        squared_norms = np.sum(gradients**2, axis=1)
        squared = (
            squared_norms[:, None] + squared_norms[None, :] - 2.0 * (gradients @ gradients.T)
        )
        distances = np.sqrt(np.maximum(squared, 0.0))

        best_diameter = math.inf
        best_mean: Vector | None = None
        for subset in combinations(range(n), selection_size):
            diameter = 0.0
            for position, i in enumerate(subset):
                row = distances[i]
                for j in subset[position + 1 :]:
                    value = row[j]
                    if value > diameter:
                        diameter = value
                        if diameter > best_diameter:
                            break  # this subset cannot win
                if diameter > best_diameter:
                    break
            if diameter > best_diameter:
                continue
            mean = gradients[list(subset)].mean(axis=0)
            if diameter < best_diameter or (
                # Exact diameter tie: break by the averaged vector so the
                # rule is independent of submission order.
                best_mean is not None
                and tuple(mean) < tuple(best_mean)
            ):
                best_diameter = diameter
                best_mean = mean
        assert best_mean is not None  # selection_size >= 1 guarantees a pick
        return best_mean
