"""Bulyan (El-Mhamdi et al. 2018).

A two-stage meta-aggregator: first select ``theta = n - 2 f`` gradients
by repeatedly applying Krum and removing the winner; then output, per
coordinate, the average of the ``beta = theta - 2 f`` values closest to
the coordinate-wise median of the selection.

Valid for ``n >= 4 f + 3`` (which guarantees ``beta >= 3``); shares
Krum's VN constant ``k_F``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_bulyan, require_bulyan_valid
from repro.gars.krum import krum_scores, rank_by_score_then_value
from repro.typing import Matrix, Vector

__all__ = ["BulyanGAR"]


class BulyanGAR(GAR):
    """Bulyan: iterated-Krum selection + trimmed closest-to-median average."""

    name = "bulyan"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_bulyan_valid(n, f)

    def k_f(self) -> float:
        """Krum's constant, under the stricter ``n >= 4 f + 3`` precondition."""
        return k_bulyan(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        theta = self._n - 2 * self._f
        beta = theta - 2 * self._f

        # Stage 1: iterated Krum selection.
        remaining = list(range(self._n))
        selected: list[int] = []
        for _ in range(theta):
            subset = gradients[remaining]
            if len(remaining) - self._f - 2 >= 1:
                scores = krum_scores(subset, self._f)
            else:
                # Too few rows left for Krum scoring; fall back to
                # distance-to-mean, which ranks the remaining honest
                # cluster consistently.
                center = subset.mean(axis=0)
                scores = np.sum((subset - center) ** 2, axis=1)
            winner_position = int(rank_by_score_then_value(scores, subset)[0])
            selected.append(remaining.pop(winner_position))
        selection = gradients[selected]  # (theta, d)

        # Stage 2: per coordinate, average the beta values closest to
        # the median of the selection (ties broken by value so the rule
        # stays permutation-invariant).
        medians = np.median(selection, axis=0)  # (d,)
        deviation = np.abs(selection - medians[None, :])  # (theta, d)
        closest = np.lexsort((selection, deviation), axis=0)[:beta]  # (beta, d)
        picked = np.take_along_axis(selection, closest, axis=0)
        return picked.mean(axis=0)
