"""Bulyan (El-Mhamdi et al. 2018).

A two-stage meta-aggregator: first select ``theta = n - 2 f`` gradients
by repeatedly applying Krum and removing the winner; then output, per
coordinate, the average of the ``beta = theta - 2 f`` values closest to
the coordinate-wise median of the selection.

Valid for ``n >= 4 f + 3`` (which guarantees ``beta >= 3``); shares
Krum's VN constant ``k_F``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_bulyan, require_bulyan_valid
from repro.gars.kernels import (
    bulyan_select,
    mean_around_anchor_batch,
    median_batch,
    pairwise_sq_distances,
)
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["BulyanGAR"]


class BulyanGAR(GAR):
    """Bulyan: iterated-Krum selection + trimmed closest-to-median average."""

    name = "bulyan"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_bulyan_valid(n, f)

    def k_f(self) -> float:
        """Krum's constant, under the stricter ``n >= 4 f + 3`` precondition."""
        return k_bulyan(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        theta = self._n - 2 * self._f
        beta = theta - 2 * self._f

        # Stage 1: iterated Krum selection over one precomputed
        # distance matrix (sliced per pass, never recomputed).
        selection = gradients[bulyan_select(gradients, self._f, theta)]  # (theta, d)

        # Stage 2: per coordinate, average the beta values closest to
        # the median of the selection (ties broken by value so the rule
        # stays permutation-invariant).
        return mean_around_anchor_batch(selection, median_batch(selection), beta)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        theta = self._n - 2 * self._f
        beta = theta - 2 * self._f
        # One batched distance computation; the iterated selection is
        # inherently sequential and runs per slice on matrix slices.
        sq_distances = pairwise_sq_distances(stack)
        selections = np.stack(
            [
                matrix[bulyan_select(matrix, self._f, theta, sq_distances=sq)]
                for matrix, sq in zip(stack, sq_distances)
            ]
        )  # (B, theta, d)
        return mean_around_anchor_batch(
            selections, median_batch(selections), beta
        )
