"""Krum and Multi-Krum (Blanchard et al. 2017).

Krum scores each gradient by the sum of squared distances to its
``n - f - 2`` nearest neighbours (among the other submissions) and
outputs the gradient with the lowest score.  Multi-Krum averages the
``m`` best-scoring gradients (``m = 1`` recovers Krum).

Valid for ``n > 2 f + 2`` with
``k_F(n, f) = 1 / sqrt(2 eta(n, f))``,
``eta = n - f + (f (n-f-2) + f^2 (n-f-1)) / (n - 2f - 2)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.gars.constants import k_krum, require_krum_valid
from repro.gars.kernels import (
    krum_scores_from_sq_distances,
    pairwise_sq_distances,
    rank_by_score_then_value,
    select_best_by_score_then_value,
)
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["KrumGAR", "krum_scores", "rank_by_score_then_value"]


def krum_scores(gradients: Matrix, f: int) -> np.ndarray:
    """Krum score of each row: sum of its ``n - f - 2`` smallest squared
    distances to the other rows.

    Exposed as a function because Bulyan reuses it.  Distances come
    from the hybrid-exact kernel (:mod:`repro.gars.kernels`), so
    near-duplicate rows score their true tiny distances instead of the
    Gram expansion's cancellation noise.
    """
    return krum_scores_from_sq_distances(pairwise_sq_distances(gradients), f)


class KrumGAR(GAR):
    """Krum (``m = 1``) or Multi-Krum (``m > 1``)."""

    name = "krum"

    def __init__(self, n: int, f: int, m: int = 1):
        if m < 1:
            raise AggregationError(f"m must be >= 1, got {m}")
        if m > n - f:
            raise AggregationError(
                f"multi-krum m must be <= n - f, got m={m}, n={n}, f={f}"
            )
        self._m = int(m)
        super().__init__(n, f)

    @property
    def m(self) -> int:
        """Number of selected gradients to average (1 = classic Krum)."""
        return self._m

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_krum_valid(n, f, cls.name)

    def k_f(self) -> float:
        """``1 / sqrt(2 eta(n, f))`` (Blanchard et al.)."""
        return k_krum(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        scores = krum_scores(gradients, self._f)
        if self._m == 1:
            # Winner-only selection; bit-identical to rank[...][0].
            return gradients[select_best_by_score_then_value(scores, gradients)].copy()
        order = rank_by_score_then_value(scores, gradients)
        return gradients[order[: self._m]].mean(axis=0)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        # Distances and scores for the whole stack in single kernel
        # calls; only the (cheap, n log n) final ranking runs per slice.
        scores = krum_scores_from_sq_distances(
            pairwise_sq_distances(stack), self._f
        )
        out = np.empty((stack.shape[0], stack.shape[2]))
        for index, (matrix, row_scores) in enumerate(zip(stack, scores)):
            if self._m == 1:
                out[index] = matrix[select_best_by_score_then_value(row_scores, matrix)]
            else:
                order = rank_by_score_then_value(row_scores, matrix)
                out[index] = matrix[order[: self._m]].mean(axis=0)
        return out
