"""Krum and Multi-Krum (Blanchard et al. 2017).

Krum scores each gradient by the sum of squared distances to its
``n - f - 2`` nearest neighbours (among the other submissions) and
outputs the gradient with the lowest score.  Multi-Krum averages the
``m`` best-scoring gradients (``m = 1`` recovers Krum).

Valid for ``n > 2 f + 2`` with
``k_F(n, f) = 1 / sqrt(2 eta(n, f))``,
``eta = n - f + (f (n-f-2) + f^2 (n-f-1)) / (n - 2f - 2)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.gars.constants import k_krum, require_krum_valid
from repro.typing import Matrix, Vector

__all__ = ["KrumGAR", "krum_scores", "rank_by_score_then_value"]


def krum_scores(gradients: Matrix, f: int) -> np.ndarray:
    """Krum score of each row: sum of its ``n - f - 2`` smallest squared
    distances to the other rows.

    Exposed as a function because Bulyan reuses it.
    """
    n = gradients.shape[0]
    neighbours = n - f - 2
    if neighbours < 1:
        raise AggregationError(
            f"krum scoring needs n - f - 2 >= 1, got n={n}, f={f}"
        )
    # Squared Euclidean distance matrix via the Gram expansion.
    squared_norms = np.sum(gradients**2, axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (gradients @ gradients.T)
    distances = np.maximum(distances, 0.0)  # clamp numerical negatives
    np.fill_diagonal(distances, np.inf)  # a gradient is not its own neighbour
    nearest = np.sort(distances, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


def rank_by_score_then_value(scores: np.ndarray, gradients: Matrix) -> np.ndarray:
    """Indices sorted by score, breaking exact ties lexicographically.

    Exact score ties are structural, not just numerical flukes: with a
    single Krum neighbour (``n - f - 2 = 1``), mutually-nearest rows
    share the same score.  Breaking ties by the gradient *values*
    (instead of the submission order) keeps every selection-based GAR
    permutation-invariant.
    """
    order = sorted(
        range(len(scores)), key=lambda index: (scores[index], tuple(gradients[index]))
    )
    return np.asarray(order)


class KrumGAR(GAR):
    """Krum (``m = 1``) or Multi-Krum (``m > 1``)."""

    name = "krum"

    def __init__(self, n: int, f: int, m: int = 1):
        if m < 1:
            raise AggregationError(f"m must be >= 1, got {m}")
        if m > n - f:
            raise AggregationError(
                f"multi-krum m must be <= n - f, got m={m}, n={n}, f={f}"
            )
        self._m = int(m)
        super().__init__(n, f)

    @property
    def m(self) -> int:
        """Number of selected gradients to average (1 = classic Krum)."""
        return self._m

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_krum_valid(n, f, cls.name)

    def k_f(self) -> float:
        """``1 / sqrt(2 eta(n, f))`` (Blanchard et al.)."""
        return k_krum(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        scores = krum_scores(gradients, self._f)
        order = rank_by_score_then_value(scores, gradients)
        if self._m == 1:
            return gradients[int(order[0])].copy()
        return gradients[order[: self._m]].mean(axis=0)
