"""Oracle GAR — the hypothetical rule from Theorem 1's lower bound.

The lower-bound proof considers "a hypothetical GAR F that outputs the
gradient of an honest worker in each step"; the paper's footnote 2
notes such a rule cannot exist in practice because honest identities
are unknown.  It exists here, clearly marked, because it is exactly
what the Theorem 1 benchmark needs: with it, the *only* obstacle to
learning is the DP noise, so the measured error isolates the
``d s^2 / T`` term.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["OracleGAR"]


class OracleGAR(GAR):
    """Outputs the submission of a designated known-honest worker.

    Not statistically robust — it *assumes* the designated index is
    honest.  For simulation and theory validation only.
    """

    name = "oracle"

    def __init__(self, n: int, f: int, honest_index: int = 0):
        super().__init__(n, f)
        if not 0 <= honest_index < n:
            raise AggregationError(
                f"honest_index must be in [0, {n}), got {honest_index}"
            )
        self._honest_index = int(honest_index)

    @property
    def honest_index(self) -> int:
        """The worker index whose gradient is passed through."""
        return self._honest_index

    def k_f(self) -> float:
        """Unbounded: an honest gradient is unbiased whatever the variance."""
        return math.inf

    def _aggregate(self, gradients: Matrix) -> Vector:
        return gradients[self._honest_index].copy()

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return stack[:, self._honest_index, :].copy()
