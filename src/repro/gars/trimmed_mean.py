"""Coordinate-wise trimmed mean (Yin et al. 2018).

For each coordinate, drop the ``f`` smallest and ``f`` largest values
and average the remaining ``n - 2 f``.  Valid for ``2 f <= n - 1`` with
``k_F(n, f) = sqrt((n - 2f)^2 / (2 (f+1) (n-f)))``.
"""

from __future__ import annotations

import numpy as np

from repro.gars.base import GAR
from repro.gars.constants import k_trimmed_mean, require_majority_honest
from repro.gars.kernels import trimmed_mean_batch
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["TrimmedMeanGAR"]


class TrimmedMeanGAR(GAR):
    """Coordinate-wise ``f``-trimmed mean."""

    name = "trimmed-mean"

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """``sqrt((n - 2f)^2 / (2 (f+1) (n-f)))``."""
        return k_trimmed_mean(self._n, self._f)

    def _aggregate(self, gradients: Matrix) -> Vector:
        return trimmed_mean_batch(gradients, self._f)

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        return trimmed_mean_batch(stack, self._f)
