"""Geometric median via the smoothed Weiszfeld algorithm.

An extension beyond the paper's seven rules: the geometric median
(minimiser of the summed Euclidean distances to the submissions) is the
classical high-dimensional robust aggregator (cf. RFA, Pillutla et al.
2019).  It tolerates any minority of arbitrary outliers in the sense of
a 1/2 breakdown point, so it slots naturally into the same pipeline.

The paper's Appendix A does not derive a ``k_F(n, f)`` constant for it,
and this library does not invent one: :meth:`GeometricMedianGAR.k_f`
conservatively returns 0, i.e. the rule is never *certified* through
the VN-ratio framework even though it is empirically robust — a useful
reminder that the paper's impossibility results speak about the
certificate, not about empirical behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AggregationError
from repro.gars.base import GAR
from repro.gars.constants import require_majority_honest
from repro.gars.kernels import geometric_median, geometric_median_batch
from repro.typing import GradientStack, Matrix, Vector

__all__ = ["GeometricMedianGAR", "geometric_median"]


class GeometricMedianGAR(GAR):
    """Aggregate by the (smoothed Weiszfeld) geometric median."""

    name = "geometric-median"

    def __init__(self, n: int, f: int, max_iterations: int = 100, tolerance: float = 1e-9):
        if max_iterations < 1:
            raise AggregationError(f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0:
            raise AggregationError(f"tolerance must be positive, got {tolerance}")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)
        super().__init__(n, f)

    @classmethod
    def check_preconditions(cls, n: int, f: int) -> None:
        require_majority_honest(n, f, cls.name)

    def k_f(self) -> float:
        """No published VN-ratio constant in the paper's framework:
        conservatively 0 (the rule is never certified via Eq. 2/8)."""
        return 0.0

    def _aggregate(self, gradients: Matrix) -> Vector:
        return geometric_median(
            gradients,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
        )

    def _aggregate_batch(self, stack: GradientStack) -> np.ndarray:
        # One vectorized Weiszfeld run over the whole stack, with
        # per-slice convergence masking.
        return geometric_median_batch(
            stack,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
        )
