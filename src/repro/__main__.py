"""``python -m repro`` — regenerate the paper's tables and figures."""

import sys

from repro.experiments.cli import console_main

if __name__ == "__main__":
    sys.exit(console_main())
