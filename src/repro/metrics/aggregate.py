"""Cross-seed aggregation of training histories.

The paper repeats every setup over 5 seeds and reports mean and
standard deviation of the loss and accuracy curves; these helpers
compute exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.history import TrainingHistory

__all__ = ["SeriesStats", "aggregate_losses", "aggregate_accuracy"]


@dataclass(frozen=True)
class SeriesStats:
    """Mean/std of a metric across seeds, aligned on steps."""

    steps: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.steps) == len(self.mean) == len(self.std)):
            raise ValueError("steps, mean and std must have equal lengths")

    @property
    def final_mean(self) -> float:
        """Mean metric value at the last step."""
        if len(self.mean) == 0:
            raise ValueError("empty series")
        return float(self.mean[-1])

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "steps": self.steps.tolist(),
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SeriesStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            steps=np.asarray(payload["steps"], dtype=np.int64),
            mean=np.asarray(payload["mean"], dtype=np.float64),
            std=np.asarray(payload["std"], dtype=np.float64),
        )


def _stack(series: Sequence[np.ndarray], steps: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    if not series:
        raise ValueError("need at least one history to aggregate")
    reference = steps[0]
    for other in steps[1:]:
        if len(other) != len(reference) or not np.array_equal(other, reference):
            raise ValueError("histories record metrics at different steps; cannot align")
    return np.stack([np.asarray(run, dtype=np.float64) for run in series]), np.asarray(reference)


def aggregate_losses(histories: Sequence[TrainingHistory]) -> SeriesStats:
    """Mean/std loss curve across runs (seeds)."""
    stacked, steps = _stack(
        [history.losses for history in histories],
        [history.loss_steps for history in histories],
    )
    return SeriesStats(steps=steps, mean=stacked.mean(axis=0), std=stacked.std(axis=0))


def aggregate_accuracy(histories: Sequence[TrainingHistory]) -> SeriesStats:
    """Mean/std accuracy curve across runs (seeds)."""
    stacked, steps = _stack(
        [history.accuracies for history in histories],
        [history.accuracy_steps for history in histories],
    )
    return SeriesStats(steps=steps, mean=stacked.mean(axis=0), std=stacked.std(axis=0))
