"""Per-run training history.

Mirrors the paper's measurement protocol (Section 5.1): the average
training loss on the honest workers' sampled batches at *every* step,
and the test ("cross") accuracy every ``eval_every`` steps.

The event-driven simulator (:mod:`repro.simulation`) additionally
records the *virtual wall-clock* at which each server update landed,
so wall-clock-vs-accuracy comparisons between server policies (sync
barrier vs buffered semi-sync vs async) read straight off one history.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TrainingHistory"]


class TrainingHistory:
    """Append-only record of one training run's metrics."""

    def __init__(self):
        self._loss_steps: list[int] = []
        self._losses: list[float] = []
        self._accuracy_steps: list[int] = []
        self._accuracies: list[float] = []
        self._virtual_time_steps: list[int] = []
        self._virtual_times: list[float] = []

    def record_loss(self, step: int, loss: float) -> None:
        """Record the training loss observed at ``step`` (1-indexed)."""
        if self._loss_steps and step <= self._loss_steps[-1]:
            raise ValueError(
                f"loss steps must be increasing, got {step} after {self._loss_steps[-1]}"
            )
        self._loss_steps.append(int(step))
        self._losses.append(float(loss))

    def record_accuracy(self, step: int, accuracy: float) -> None:
        """Record test accuracy measured at ``step``."""
        if self._accuracy_steps and step <= self._accuracy_steps[-1]:
            raise ValueError(
                f"accuracy steps must be increasing, got {step} "
                f"after {self._accuracy_steps[-1]}"
            )
        self._accuracy_steps.append(int(step))
        self._accuracies.append(float(accuracy))

    def record_virtual_time(self, step: int, time: float) -> None:
        """Record the virtual wall-clock at which ``step``'s update landed.

        Steps must be strictly increasing; times non-decreasing (a
        zero-latency simulation legitimately pins the clock at 0).
        """
        if self._virtual_time_steps and step <= self._virtual_time_steps[-1]:
            raise ValueError(
                f"virtual-time steps must be increasing, got {step} "
                f"after {self._virtual_time_steps[-1]}"
            )
        if self._virtual_times and time < self._virtual_times[-1]:
            raise ValueError(
                f"virtual time must not decrease, got {time} "
                f"after {self._virtual_times[-1]}"
            )
        self._virtual_time_steps.append(int(step))
        self._virtual_times.append(float(time))

    @property
    def loss_steps(self) -> np.ndarray:
        """Steps at which losses were recorded."""
        return np.asarray(self._loss_steps, dtype=np.int64)

    @property
    def losses(self) -> np.ndarray:
        """Training losses, one per recorded step."""
        return np.asarray(self._losses, dtype=np.float64)

    @property
    def accuracy_steps(self) -> np.ndarray:
        """Steps at which accuracies were recorded."""
        return np.asarray(self._accuracy_steps, dtype=np.int64)

    @property
    def accuracies(self) -> np.ndarray:
        """Test accuracies, one per evaluation."""
        return np.asarray(self._accuracies, dtype=np.float64)

    @property
    def virtual_time_steps(self) -> np.ndarray:
        """Steps at which virtual times were recorded."""
        return np.asarray(self._virtual_time_steps, dtype=np.int64)

    @property
    def virtual_times(self) -> np.ndarray:
        """Virtual wall-clock of each recorded server update."""
        return np.asarray(self._virtual_times, dtype=np.float64)

    @property
    def final_virtual_time(self) -> float:
        """Virtual wall-clock at the last recorded update."""
        if not self._virtual_times:
            raise ValueError("no virtual times recorded")
        return self._virtual_times[-1]

    @property
    def final_loss(self) -> float:
        """Loss at the last recorded step."""
        if not self._losses:
            raise ValueError("no losses recorded")
        return self._losses[-1]

    @property
    def min_loss(self) -> float:
        """Best (lowest) loss over the run."""
        if not self._losses:
            raise ValueError("no losses recorded")
        return min(self._losses)

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last evaluation."""
        if not self._accuracies:
            raise ValueError("no accuracies recorded")
        return self._accuracies[-1]

    @property
    def max_accuracy(self) -> float:
        """Best accuracy over the run."""
        if not self._accuracies:
            raise ValueError("no accuracies recorded")
        return max(self._accuracies)

    def steps_to_loss(self, threshold: float) -> int | None:
        """First step whose loss is at or below ``threshold`` (None if never)."""
        for step, loss in zip(self._loss_steps, self._losses):
            if loss <= threshold:
                return step
        return None

    def mean_loss_over_last(self, window: int) -> float:
        """Mean loss over the last ``window`` recorded steps."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not self._losses:
            raise ValueError("no losses recorded")
        return float(np.mean(self._losses[-window:]))

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "loss_steps": list(self._loss_steps),
            "losses": list(self._losses),
            "accuracy_steps": list(self._accuracy_steps),
            "accuracies": list(self._accuracies),
            "virtual_time_steps": list(self._virtual_time_steps),
            "virtual_times": list(self._virtual_times),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`.

        Payloads written before virtual times existed load fine: the
        time axis just stays empty.
        """
        history = cls()
        for step, loss in zip(payload["loss_steps"], payload["losses"]):
            history.record_loss(step, loss)
        for step, accuracy in zip(payload["accuracy_steps"], payload["accuracies"]):
            history.record_accuracy(step, accuracy)
        for step, time in zip(
            payload.get("virtual_time_steps", ()), payload.get("virtual_times", ())
        ):
            history.record_virtual_time(step, time)
        return history

    def __len__(self) -> int:
        return len(self._losses)

    def __repr__(self) -> str:
        parts = [f"TrainingHistory(steps={len(self._losses)}"]
        if self._losses:
            parts.append(f", final_loss={self._losses[-1]:.4g}")
        if self._accuracies:
            parts.append(f", final_accuracy={self._accuracies[-1]:.4g}")
        parts.append(")")
        return "".join(parts)
