"""Metrics: per-run training history and cross-seed aggregation."""

from repro.metrics.aggregate import SeriesStats, aggregate_accuracy, aggregate_losses
from repro.metrics.history import TrainingHistory

__all__ = [
    "SeriesStats",
    "TrainingHistory",
    "aggregate_accuracy",
    "aggregate_losses",
]
