"""Deterministic random-number management.

All stochastic components of the library (data generation, batch
sampling, DP noise, attacks, lossy network) draw from independent
``numpy.random.Generator`` streams spawned from a single root seed.
This makes every experiment reproducible bit-for-bit from one integer,
which mirrors the paper's "each experimental setup is repeated 5 times,
with specified seeds (in 1 to 5)" protocol.

The central abstraction is :class:`SeedTree`: a named hierarchy of
seeds.  Asking the tree for the same path always returns a generator
initialised with the same state, and distinct paths yield statistically
independent streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["SeedTree", "generator_from_seed", "spawn_generators"]


def generator_from_seed(seed: int | np.random.SeedSequence) -> np.random.Generator:
    """Build a PCG64 generator from an integer seed or a seed sequence."""
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def spawn_generators(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from a single integer seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


class SeedTree:
    """A named, deterministic hierarchy of independent random streams.

    Paths are tuples of strings and integers, e.g.
    ``("worker", 3, "noise")``.  Each distinct path maps to an
    independent generator; the same path always maps to the same
    generator state.

    Implementation: the path is hashed into ``spawn_key`` entropy for a
    ``numpy.random.SeedSequence`` derived from the root seed.  This is
    the scheme numpy itself recommends for reproducible parallel
    streams.

    Example
    -------
    >>> tree = SeedTree(1)
    >>> g1 = tree.generator("worker", 0, "noise")
    >>> g2 = tree.generator("worker", 0, "noise")
    >>> float(g1.standard_normal()) == float(g2.standard_normal())
    True
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The integer seed at the root of the tree."""
        return self._root_seed

    def _spawn_key(self, path: Iterable[str | int]) -> tuple[int, ...]:
        key: list[int] = []
        for part in path:
            if isinstance(part, (int, np.integer)):
                key.append(int(part) & 0xFFFFFFFF)
            elif isinstance(part, str):
                # Stable 32-bit hash of the string (FNV-1a), independent
                # of PYTHONHASHSEED so paths are reproducible across runs.
                acc = 0x811C9DC5
                for byte in part.encode("utf-8"):
                    acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
                key.append(acc)
            else:
                raise TypeError(
                    f"seed path parts must be str or int, got {type(part).__name__}"
                )
        return tuple(key)

    def sequence(self, *path: str | int) -> np.random.SeedSequence:
        """Return the seed sequence at ``path``."""
        return np.random.SeedSequence(
            entropy=self._root_seed, spawn_key=self._spawn_key(path)
        )

    def generator(self, *path: str | int) -> np.random.Generator:
        """Return a fresh generator for ``path`` (same path, same stream)."""
        return np.random.Generator(np.random.PCG64(self.sequence(*path)))

    def child(self, *path: str | int) -> "SeedTree":
        """Return a subtree rooted at ``path``.

        The subtree's streams are independent of all other streams in
        the parent, and deterministic in (root seed, path).
        """
        derived = int(self.sequence(*path).generate_state(1, np.uint64)[0])
        return SeedTree(derived)

    def __repr__(self) -> str:
        return f"SeedTree(root_seed={self._root_seed})"
