"""Callback-driven synchronous training loop.

:class:`TrainingLoop` owns the round-by-round execution that used to be
inlined in ``train()``: run cluster rounds, record the paper's per-step
training loss over the honest workers' sampled batches, and fire the
:mod:`repro.pipeline.callbacks` hooks around every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.distributed.cluster import Cluster, StepResult
from repro.exceptions import ConfigurationError
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.pipeline.callbacks import Callback, CallbackList

__all__ = ["LoopState", "TrainingLoop", "record_honest_loss"]


def record_honest_loss(model, history, step, parameters, honest_workers) -> None:
    """Record the mean training loss over ``honest_workers``' last batches.

    Shared by the synchronous :class:`TrainingLoop` and the event-driven
    :class:`repro.simulation.run.SimulationLoop` so both measure the
    paper's Section 5.1 quantity with the identical (stacked) float
    pipeline.  When every worker sampled an equal-shaped batch (the
    common case), the whole cohort is scored with one
    :meth:`repro.models.base.Model.loss_stack` call; ragged or missing
    batches fall back to per-worker evaluation.  Rounds where no honest
    worker sampled record no loss instead of a silent ``NaN``.
    """
    batches = [
        worker.last_batch for worker in honest_workers if worker.last_batch is not None
    ]
    if not batches:
        return
    shapes = {
        (np.asarray(features).shape, np.asarray(labels).shape)
        for features, labels in batches
    }
    if len(shapes) == 1:
        losses = model.loss_stack(
            parameters,
            np.stack([features for features, _ in batches]),
            np.stack([labels for _, labels in batches]),
        )
    else:
        losses = [
            model.loss(parameters, features, labels) for features, labels in batches
        ]
    history.record_loss(step, float(np.mean(losses)))


@dataclass
class LoopState:
    """Mutable view of a running loop, handed to every callback hook."""

    cluster: Cluster
    model: Model
    history: TrainingHistory
    callbacks: CallbackList
    num_steps: int
    last_result: StepResult | None = field(default=None, repr=False)
    stopped_early: bool = False

    @property
    def step(self) -> int:
        """Rounds completed so far (0 before the first round)."""
        return self.cluster.step_count


class TrainingLoop:
    """Run synchronous rounds of a cluster with callback hooks.

    The loop records the mean training loss of the honest workers'
    sampled batches at every step (evaluated at the pre-update
    parameters, per Section 5.1's measurement protocol).  Rounds where
    no honest worker sampled a batch — possible in all-Byzantine
    configurations — record no loss instead of a silent ``NaN``.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: Model,
        history: TrainingHistory | None = None,
        callbacks: Iterable[Callback] = (),
        checkpoint: str | None = None,
        checkpoint_every: int = 1,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._cluster = cluster
        self._model = model
        self._history = history if history is not None else TrainingHistory()
        self._callbacks = (
            callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks)
        )
        self._checkpoint = None if checkpoint is None else str(checkpoint)
        self._checkpoint_every = int(checkpoint_every)

    @property
    def history(self) -> TrainingHistory:
        """The history this loop records into."""
        return self._history

    @property
    def callbacks(self) -> CallbackList:
        """The composed callback list."""
        return self._callbacks

    @property
    def checkpoint_path(self) -> str | None:
        """Where periodic checkpoints are written (``None`` disables)."""
        return self._checkpoint

    def run(self, num_steps: int, record: bool | None = None) -> LoopState:
        """Run up to ``num_steps`` rounds; returns the final state.

        A callback returning True from ``should_stop`` ends the run
        before the next round and sets ``state.stopped_early``.

        Routing: with no callbacks attached, eligible clusters execute
        through the fused :class:`repro.distributed.engine.RoundEngine`
        (blocks of rounds, preallocated buffers, blockwise RNG
        pre-draw) — bit-identical to per-round stepping, including the
        recorded losses.  Any attached callback falls back to per-round
        stepping so ``should_stop`` / ``on_step_end`` fire with their
        historical semantics.

        ``record`` controls the :class:`StepResult` matrix payloads:
        the default ``None`` produces them exactly when some attached
        callback declares ``needs_step_matrices``; pass ``True`` to
        force them (e.g. to read ``state.last_result.honest_submitted``
        after a callback-free run) or ``False`` to suppress them.
        """
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        state = LoopState(
            cluster=self._cluster,
            model=self._model,
            history=self._history,
            callbacks=self._callbacks,
            num_steps=int(num_steps),
        )
        callbacks = self._callbacks
        if record is None:
            record = len(callbacks) > 0 and callbacks.needs_step_matrices
        engine = getattr(self._cluster, "engine", None)
        if (
            len(callbacks) == 0
            # Checkpointing snapshots per-round state the fused engine
            # deliberately keeps in private buffers: step per round.
            and self._checkpoint is None
            and engine is not None
            and engine.supports_fused
            # A probe model differing from the cohort's would record a
            # different loss than the fused shared pass: step per round.
            and engine.cohort_model is self._model
        ):
            callbacks.on_train_start(state)
            state.last_result = engine.run(
                num_steps, model=self._model, history=self._history, record=record
            )
            callbacks.on_train_end(state)
            return state
        self._run_rounds(state, num_steps, record)
        return state

    def resume(self, num_steps: int, record: bool | None = None) -> LoopState:
        """Restore the loop's checkpoint and finish the run.

        Requires a freshly-built loop (same configuration, same seed)
        whose ``checkpoint`` path holds a snapshot written by
        :meth:`run`.  Every RNG stream, momentum buffer and parameter
        is restored bit-for-bit, so the completed run is identical to
        one that never stopped (the differential suite pins this).
        Returns the final state, exactly like :meth:`run`.
        """
        from repro.faults.checkpoint import load_checkpoint, restore_cluster_state

        if self._checkpoint is None:
            raise ConfigurationError("resume() needs a checkpoint path")
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        payload = load_checkpoint(self._checkpoint)
        restore_cluster_state(self._cluster, payload["cluster"])
        restored = TrainingHistory.from_dict(payload["history"])
        # Replace the history contents in place so callers holding the
        # loop's (or Experiment's) history reference see the restored run.
        self._history.__dict__.update(restored.__dict__)
        state = LoopState(
            cluster=self._cluster,
            model=self._model,
            history=self._history,
            callbacks=self._callbacks,
            num_steps=int(num_steps),
        )
        if record is None:
            record = len(self._callbacks) > 0 and self._callbacks.needs_step_matrices
        remaining = num_steps - self._cluster.step_count
        if remaining > 0:
            self._run_rounds(state, remaining, record)
        return state

    def _run_rounds(self, state: LoopState, rounds: int, record: bool) -> None:
        """The per-round loop shared by :meth:`run` and :meth:`resume`."""
        callbacks = self._callbacks
        honest_workers = self._cluster.honest_workers
        callbacks.on_train_start(state)
        for _ in range(rounds):
            if callbacks.should_stop(state):
                state.stopped_early = True
                break
            callbacks.on_step_start(state)
            parameters_before = self._cluster.parameters
            result = self._cluster.step(record=record)
            state.last_result = result
            self._record_honest_loss(parameters_before, honest_workers)
            callbacks.on_step_end(state, result)
            if (
                self._checkpoint is not None
                and self._cluster.step_count % self._checkpoint_every == 0
            ):
                self._save_checkpoint()
        callbacks.on_train_end(state)

    def _save_checkpoint(self) -> None:
        """Snapshot the full training state atomically (see repro.faults)."""
        from repro.faults.checkpoint import capture_cluster_state, save_checkpoint

        save_checkpoint(
            self._checkpoint,
            {
                "step": self._cluster.step_count,
                "cluster": capture_cluster_state(self._cluster),
                "history": self._history.to_dict(),
            },
        )
        telemetry = getattr(self._cluster, "telemetry", None)
        if telemetry is not None:
            telemetry.counter("checkpoint.saved", step=self._cluster.step_count)

    def _record_honest_loss(self, parameters, honest_workers) -> None:
        """Record the honest-batch loss (see :func:`record_honest_loss`).

        Clusters whose workers live in other processes (the multiprocess
        runtime) expose ``last_honest_losses`` — the per-worker batch
        losses already scored shard-side at the pre-update parameters.
        Averaging those reproduces the in-process measurement bit for
        bit (same per-row values, same ``np.mean``), without shipping
        batches across process boundaries.  Rounds where every shard
        has departed record no loss, matching the in-process behaviour
        for rounds where no honest worker sampled.
        """
        if hasattr(self._cluster, "last_honest_losses"):
            losses = self._cluster.last_honest_losses
            if losses is not None and len(losses) > 0:
                self._history.record_loss(
                    self._cluster.step_count, float(np.mean(losses))
                )
            return
        # Under a fault plan the cluster publishes which workers were
        # live this round; absent workers leave the honest mean, exactly
        # as a dead shard's rows leave the multiprocess loss vector.
        live = getattr(self._cluster, "last_live_workers", None)
        if live is not None:
            honest_workers = [honest_workers[index] for index in live]
        record_honest_loss(
            self._model,
            self._history,
            self._cluster.step_count,
            parameters,
            honest_workers,
        )
