"""Parallel multi-seed execution.

The paper repeats every experimental cell over independent seeds; the
runs share no state, so they parallelise perfectly.  A
:class:`TrainingJob` is a picklable description of one run (environment
plus ``train()`` keyword arguments); :func:`run_jobs` executes a batch
of them either serially or on a :mod:`multiprocessing` pool.

Determinism: each job derives all randomness from its own seed, so the
parallel path returns bit-identical results to the serial path, in the
same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.data.datasets import Dataset
from repro.distributed.runtime.context import multiprocessing_context
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.pipeline.builder import Experiment
from repro.pipeline.results import TrainingResult

__all__ = [
    "TrainingJob",
    "default_chunksize",
    "execute_job",
    "jobs_for_seeds",
    "map_tasks",
    "run_jobs",
]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


@dataclass(frozen=True)
class TrainingJob:
    """One self-contained training run, safe to ship to a worker process.

    ``train_kwargs`` holds the keyword arguments of
    :class:`repro.pipeline.builder.Experiment` (equivalently, of the
    legacy ``train()``), minus the environment triple stored explicitly.
    Callbacks are process-local objects and therefore not part of a job.
    """

    model: Model
    train_dataset: Dataset
    test_dataset: Dataset | None = None
    train_kwargs: dict = field(default_factory=dict)


def execute_job(job: TrainingJob) -> TrainingResult:
    """Run one job to completion (module-level, so pools can pickle it)."""
    experiment = Experiment(
        model=job.model,
        train_dataset=job.train_dataset,
        test_dataset=job.test_dataset,
        **job.train_kwargs,
    )
    return experiment.run()


def run_jobs(
    jobs: Iterable[TrainingJob],
    max_workers: int | None = None,
    chunksize: int = 1,
) -> list[TrainingResult]:
    """Execute ``jobs`` and return their results in submission order.

    ``max_workers=None`` (or 1) runs serially in-process; larger values
    fan the jobs out over a :mod:`multiprocessing` pool of at most
    ``min(max_workers, len(jobs))`` processes.  Both paths are
    deterministic and produce identical results: each job's rounds run
    through the same vectorized aggregation engine
    (:mod:`repro.gars.kernels`) regardless of where the job executes.

    ``chunksize`` controls how many jobs a pool worker claims at once.
    The default of 1 maximises load balance — with the engine's batched
    kernels a job's wall-clock is dominated by its ``(n, d)`` shape, so
    heterogeneous grids benefit from fine-grained scheduling — while
    larger values amortise IPC for swarms of tiny jobs.
    """
    return list(map_tasks(execute_job, jobs, max_workers=max_workers, chunksize=chunksize))


def default_chunksize(num_tasks: int, pool_size: int) -> int:
    """Heuristic pool chunk: about four chunks per worker process.

    Swarms of tiny tasks (campaign smoke cells, micro-benchmarks) are
    dominated by per-task IPC when ``chunksize=1``; batching ~4 chunks
    per worker amortises that while still leaving enough chunks for the
    pool to balance moderately uneven task durations.  Small task
    counts degrade to 1, which is the old behaviour.
    """
    if num_tasks < 1 or pool_size < 1:
        return 1
    return max(1, num_tasks // (pool_size * 4))


def map_tasks(
    function: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    max_workers: int | None = None,
    chunksize: int | None = 1,
    ordered: bool = True,
) -> Iterator[_Result]:
    """Apply ``function`` to ``tasks``, yielding results incrementally.

    The generic executor behind :func:`run_jobs` (and the campaign
    runner): ``max_workers`` of ``None``/1 runs serially in-process;
    larger values fan out over a :mod:`multiprocessing` pool.
    ``ordered=True`` yields results in task order; ``ordered=False``
    yields them *as they complete*, so a consumer that persists each
    result loses at most the in-flight work on a crash — one slow task
    never holds finished results hostage inside the pool.  ``function``
    must be a picklable module-level callable and each task's result
    independent of the others, which keeps all paths bit-identical.

    ``chunksize`` controls how many tasks a pool worker claims at once:
    an explicit integer is passed through, and ``None`` applies
    :func:`default_chunksize` (which also coarsens the as-they-complete
    granularity of ``ordered=False`` to one chunk — callers persisting
    per-result should weigh that against the IPC savings).
    """
    tasks = list(tasks)
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if chunksize is not None and chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    if max_workers is None or max_workers == 1 or len(tasks) <= 1:
        for task in tasks:
            yield function(task)
        return
    pool_size = min(max_workers, len(tasks))
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), pool_size)
    # Pinned start method (not the platform default): see
    # repro.distributed.runtime.context for the choice and override.
    context = multiprocessing_context()
    with context.Pool(processes=pool_size) as pool:
        mapper = pool.imap if ordered else pool.imap_unordered
        yield from mapper(function, tasks, chunksize=chunksize)


def jobs_for_seeds(
    model: Model,
    train_dataset: Dataset,
    test_dataset: Dataset | None,
    seeds: Sequence[int],
    **train_kwargs,
) -> list[TrainingJob]:
    """One job per seed, sharing the environment and hyperparameters."""
    return [
        TrainingJob(
            model=model,
            train_dataset=train_dataset,
            test_dataset=test_dataset,
            train_kwargs={**train_kwargs, "seed": seed},
        )
        for seed in seeds
    ]
