"""Unified component registry.

One registry covers every pluggable component family of the library —
aggregation rules, attacks, models, noise mechanisms, learning-rate
schedules, data distributions and networks — so that any component is
constructible from a plain ``{"name": ..., **kwargs}`` spec (or a bare
name string).  This subsumes the ad-hoc ``get_gar``/``get_attack``
dispatch: both now delegate here, and anything registered through this
module becomes reachable from experiment configs and the CLI.

Built-in components are registered lazily on first use, so importing
this module is cheap and free of circular imports.

>>> from repro.pipeline.registry import build_component
>>> gar = build_component("gar", {"name": "mda"}, n=11, f=5)
>>> gar.name
'mda'
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exceptions import ConfigurationError

__all__ = [
    "ComponentRegistry",
    "REGISTRY",
    "register_component",
    "build_component",
    "available_components",
    "component_families",
    "build_mechanism",
    "NOISE_KINDS",
    "MOMENTUM_PLACEMENTS",
]

#: The component families the built-in bootstrap populates.
BUILTIN_FAMILIES = (
    "gar",
    "attack",
    "model",
    "mechanism",
    "schedule",
    "distribution",
    "network",
    "latency",
    "policy",
    "codec",
)

#: Legacy alias kept for the trainer's historical error message.
NOISE_KINDS = ("gaussian", "laplace")

#: Valid values for the momentum buffer placement (not a registry
#: family — placement is a structural choice, not a component).
MOMENTUM_PLACEMENTS = ("server", "worker")


class ComponentRegistry:
    """Name -> factory mapping, grouped by component family.

    A *factory* is any callable returning the component — usually the
    component class itself.  :meth:`build` merges caller-provided
    context keywords (e.g. a GAR's ``n``/``f``) under the spec's own
    keywords, so specs can override the defaults the call site injects.
    """

    def __init__(self, bootstrap: Callable[["ComponentRegistry"], None] | None = None):
        self._families: dict[str, dict[str, Callable[..., Any]]] = {}
        self._bootstrap = bootstrap
        self._bootstrapped = bootstrap is None
        self._bootstrapping = False

    def _ensure_bootstrapped(self) -> None:
        # The flag flips only on success, so a failed bootstrap (e.g. a
        # broken import) is retried rather than leaving the registry
        # permanently half-populated; _bootstrapping guards against
        # recursion from the bootstrap's own register() calls.
        if self._bootstrapped or self._bootstrapping:
            return
        self._bootstrapping = True
        try:
            assert self._bootstrap is not None
            self._bootstrap(self)
            self._bootstrapped = True
        finally:
            self._bootstrapping = False

    @staticmethod
    def parse_spec(spec) -> tuple[str, dict]:
        """Split a spec into ``(name, kwargs)``.

        Accepts a bare name string or a ``{"name": ..., **kwargs}``
        mapping; anything else is a :class:`ConfigurationError`.
        """
        if isinstance(spec, str):
            return spec, {}
        if isinstance(spec, dict):
            if "name" not in spec:
                raise ConfigurationError(
                    f"component spec needs a 'name' key, got {sorted(spec)!r}"
                )
            kwargs = dict(spec)
            name = kwargs.pop("name")
            if not isinstance(name, str):
                raise ConfigurationError(
                    f"component spec 'name' must be a string, got {name!r}"
                )
            return name, kwargs
        raise ConfigurationError(
            f"component spec must be a name or a dict with a 'name' key, "
            f"got {type(spec).__name__}"
        )

    def register(
        self,
        family: str,
        name: str | None = None,
        factory: Callable[..., Any] | None = None,
        *,
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``family``/``name``.

        Usable directly (``register("gar", "mda", MDAGAR)``) or as a
        class decorator (``@register("gar")``, which reads the class's
        ``name`` attribute).  Re-registering an existing name raises
        unless ``overwrite=True``.
        """

        # Bootstrap first so user registrations never collide with the
        # builtin pass later (and overwrite=True can target builtins).
        self._ensure_bootstrapped()

        def _do_register(target: Callable[..., Any]) -> Callable[..., Any]:
            resolved = name if name is not None else getattr(target, "name", None)
            if not resolved or not isinstance(resolved, str):
                raise ConfigurationError(
                    f"cannot infer a registry name for {target!r}; pass name="
                )
            bucket = self._families.setdefault(family, {})
            if resolved in bucket and not overwrite:
                raise ConfigurationError(
                    f"{family} component {resolved!r} is already registered "
                    f"(pass overwrite=True to replace it)"
                )
            bucket[resolved] = target
            return target

        if factory is not None:
            return _do_register(factory)
        return _do_register

    def has(self, family: str, name: str) -> bool:
        """Whether ``name`` is registered under ``family``."""
        self._ensure_bootstrapped()
        return name in self._families.get(family, {})

    def get(self, family: str, name: str) -> Callable[..., Any]:
        """The raw factory for ``family``/``name``."""
        self._ensure_bootstrapped()
        try:
            return self._families[family][name]
        except KeyError:
            if family not in self._families:
                raise ConfigurationError(
                    f"unknown component family {family!r}; "
                    f"available: {', '.join(self.families())}"
                ) from None
            raise ConfigurationError(
                f"unknown {family} {name!r}; "
                f"available: {', '.join(self.available(family))}"
            ) from None

    def build(self, family: str, spec, **context) -> Any:
        """Construct a component from ``spec``.

        ``context`` keywords are call-site defaults (a GAR's ``n``/``f``,
        a distribution's ``dataset``/``rng``); keys in the spec win.
        """
        name, kwargs = self.parse_spec(spec)
        factory = self.get(family, name)
        return factory(**{**context, **kwargs})

    def available(self, family: str) -> tuple[str, ...]:
        """Sorted names registered under ``family``."""
        self._ensure_bootstrapped()
        return tuple(sorted(self._families.get(family, {})))

    def families(self) -> tuple[str, ...]:
        """Sorted family names with at least one registration."""
        self._ensure_bootstrapped()
        return tuple(sorted(self._families))

    def __repr__(self) -> str:
        counts = {family: len(bucket) for family, bucket in sorted(self._families.items())}
        return f"ComponentRegistry({counts})"


def _shared_distribution(dataset, num_shards, rng=None):
    # The paper's data model: every worker samples the full training set.
    del rng
    return [dataset] * num_shards


def _gaussian_mechanism(*, epsilon, delta, g_max, batch_size, dimension=None):
    del dimension  # Gaussian calibration is dimension-free
    from repro.privacy.mechanisms import GaussianMechanism

    return GaussianMechanism.for_clipped_gradients(epsilon, delta, g_max, batch_size)


def _laplace_mechanism(*, epsilon, g_max, batch_size, dimension, delta=None):
    del delta  # pure eps-DP
    from repro.privacy.mechanisms import LaplaceMechanism

    return LaplaceMechanism.for_clipped_gradients(epsilon, g_max, batch_size, dimension)


def _register_builtins(registry: ComponentRegistry) -> None:
    """Populate ``registry`` with every built-in component family."""
    from repro.attacks import ATTACK_REGISTRY
    from repro.data.sharding import shard_by_label, shard_iid
    from repro.distributed.network import LossyNetwork, PerfectNetwork
    from repro.gars import GAR_REGISTRY
    from repro.models import (
        LinearRegressionModel,
        LogisticRegressionModel,
        MLPClassifierModel,
        MeanEstimationModel,
        SoftmaxClassifierModel,
    )
    from repro.optim.schedules import (
        ConstantSchedule,
        InverseTimeSchedule,
        StepDecaySchedule,
    )

    for name, gar_cls in GAR_REGISTRY.items():
        registry.register("gar", name, gar_cls)
    for name, attack_cls in ATTACK_REGISTRY.items():
        registry.register("attack", name, attack_cls)
    for model_cls in (
        LinearRegressionModel,
        LogisticRegressionModel,
        MLPClassifierModel,
        MeanEstimationModel,
        SoftmaxClassifierModel,
    ):
        registry.register("model", model_cls.name, model_cls)
    registry.register("mechanism", "gaussian", _gaussian_mechanism)
    registry.register("mechanism", "laplace", _laplace_mechanism)
    registry.register("schedule", "constant", ConstantSchedule)
    registry.register("schedule", "inverse-time", InverseTimeSchedule)
    registry.register("schedule", "step-decay", StepDecaySchedule)
    registry.register("distribution", "shared", _shared_distribution)
    registry.register("distribution", "iid-shards", shard_iid)
    registry.register("distribution", "label-shards", shard_by_label)
    registry.register("network", "perfect", PerfectNetwork)
    registry.register("network", "lossy", LossyNetwork)

    from repro.simulation.latency import (
        ConstantLatency,
        LognormalLatency,
        StragglerLatency,
    )
    from repro.simulation.policies import (
        AsyncStalenessPolicy,
        BufferedSemiSyncPolicy,
        SyncPolicy,
    )

    for latency_cls in (ConstantLatency, LognormalLatency, StragglerLatency):
        registry.register("latency", latency_cls.name, latency_cls)
    for policy_cls in (SyncPolicy, BufferedSemiSyncPolicy, AsyncStalenessPolicy):
        registry.register("policy", policy_cls.name, policy_cls)

    from repro.compression import (
        DiscreteGaussianCodec,
        IdentityCodec,
        SignCodec,
        StochasticQuantizationCodec,
        TopKCodec,
    )

    for codec_cls in (
        IdentityCodec,
        TopKCodec,
        SignCodec,
        StochasticQuantizationCodec,
        DiscreteGaussianCodec,
    ):
        registry.register("codec", codec_cls.name, codec_cls)


#: The process-wide default registry, lazily seeded with the built-ins.
REGISTRY = ComponentRegistry(bootstrap=_register_builtins)


def register_component(family, name=None, factory=None, *, overwrite=False):
    """Register into the default registry (see :meth:`ComponentRegistry.register`)."""
    return REGISTRY.register(family, name, factory, overwrite=overwrite)


def build_component(family, spec, **context):
    """Build from the default registry (see :meth:`ComponentRegistry.build`)."""
    return REGISTRY.build(family, spec, **context)


def available_components(family: str) -> tuple[str, ...]:
    """Sorted names of the default registry's ``family``."""
    return REGISTRY.available(family)


def component_families() -> tuple[str, ...]:
    """Sorted family names of the default registry."""
    return REGISTRY.families()


def build_mechanism(
    noise_kind: str,
    epsilon: float,
    delta: float,
    g_max: float,
    batch_size: int,
    dimension: int,
) -> Any:
    """Construct the per-worker DP mechanism the paper's Section 2.3 defines.

    Dispatches through the ``"mechanism"`` registry family, so custom
    mechanisms registered there are reachable by name too.
    """
    if not REGISTRY.has("mechanism", noise_kind):
        raise ConfigurationError(
            f"noise_kind must be one of {REGISTRY.available('mechanism')}, "
            f"got {noise_kind!r}"
        )
    return REGISTRY.build(
        "mechanism",
        noise_kind,
        epsilon=epsilon,
        delta=delta,
        g_max=g_max,
        batch_size=batch_size,
        dimension=dimension,
    )
