"""Callback protocol for the training loop.

Everything that used to be an inlined branch of the monolithic
``train()`` — periodic accuracy evaluation, early stopping, gradient
recording, the VN-ratio tracker — is a :class:`Callback` plugged into
:class:`repro.pipeline.loop.TrainingLoop`.  Hooks fire in this order
per run::

    on_train_start
    repeat:  should_stop? -> on_step_start -> (cluster step, loss
             recorded) -> on_step_end
    on_train_end

``on_evaluate`` is broadcast to *all* callbacks whenever any callback
records a test-set evaluation (see :class:`AccuracyCallback`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.analysis.monitor import VNTrajectory
    from repro.data.datasets import Dataset
    from repro.distributed.cluster import StepResult
    from repro.pipeline.loop import LoopState

__all__ = [
    "Callback",
    "CallbackList",
    "AccuracyCallback",
    "EarlyStopping",
    "StepResultRecorder",
    "VNRatioCallback",
]


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    #: Whether this callback reads the per-round ``honest_submitted`` /
    #: ``honest_clean`` matrices off its :class:`StepResult`.  The
    #: training loop passes ``record=False`` to the cluster when no
    #: attached callback needs them, so the default path retains no
    #: instrumentation matrices.  Defaults to ``True`` (safe for any
    #: third-party callback); observers that only read state/history
    #: opt out.
    needs_step_matrices: bool = True

    def on_train_start(self, state: "LoopState") -> None:
        """Called once before the first round (step count is 0)."""

    def on_step_start(self, state: "LoopState") -> None:
        """Called before each synchronous round."""

    def on_step_end(self, state: "LoopState", result: "StepResult") -> None:
        """Called after each round, once the loss is recorded."""

    def on_evaluate(self, state: "LoopState", step: int, accuracy: float) -> None:
        """Broadcast whenever a test-set evaluation is recorded."""

    def on_train_end(self, state: "LoopState") -> None:
        """Called once after the last round (or after an early stop)."""

    def should_stop(self, state: "LoopState") -> bool:
        """Checked before each round; return True to end the run."""
        return False


class CallbackList(Callback):
    """Composes callbacks; broadcasts each hook in registration order."""

    def __init__(self, callbacks: Iterable[Callback] = ()):
        self._callbacks: list[Callback] = list(callbacks)
        for callback in self._callbacks:
            if not isinstance(callback, Callback):
                raise ConfigurationError(
                    f"callbacks must subclass Callback, got {type(callback).__name__}"
                )

    def append(self, callback: Callback) -> None:
        """Add one more callback at the end of the broadcast order."""
        if not isinstance(callback, Callback):
            raise ConfigurationError(
                f"callbacks must subclass Callback, got {type(callback).__name__}"
            )
        self._callbacks.append(callback)

    @property
    def needs_step_matrices(self) -> bool:
        """Whether any composed callback reads the round matrices."""
        return any(callback.needs_step_matrices for callback in self._callbacks)

    def on_train_start(self, state) -> None:
        for callback in self._callbacks:
            callback.on_train_start(state)

    def on_step_start(self, state) -> None:
        for callback in self._callbacks:
            callback.on_step_start(state)

    def on_step_end(self, state, result) -> None:
        for callback in self._callbacks:
            callback.on_step_end(state, result)

    def on_evaluate(self, state, step, accuracy) -> None:
        for callback in self._callbacks:
            callback.on_evaluate(state, step, accuracy)

    def on_train_end(self, state) -> None:
        for callback in self._callbacks:
            callback.on_train_end(state)

    def should_stop(self, state) -> bool:
        return any(callback.should_stop(state) for callback in self._callbacks)

    def __iter__(self) -> Iterator[Callback]:
        return iter(self._callbacks)

    def __len__(self) -> int:
        return len(self._callbacks)


class AccuracyCallback(Callback):
    """Record test accuracy at step 0 and every ``eval_every`` rounds.

    Models that do not implement ``accuracy()`` (pure regression) are
    skipped silently, matching the legacy trainer's behaviour.  Each
    recorded evaluation is re-broadcast via ``on_evaluate``.
    """

    needs_step_matrices = False  # reads only parameters + test data

    def __init__(self, test_dataset: "Dataset", eval_every: int = 50):
        if eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
        self._test_dataset = test_dataset
        self._eval_every = int(eval_every)

    def on_train_start(self, state) -> None:
        # A resumed loop re-enters training mid-run (step > 0); its
        # step-0 accuracy is already in the restored history.
        if state.step == 0:
            self._evaluate(state, step=0)

    def on_step_end(self, state, result) -> None:
        if state.step % self._eval_every == 0:
            self._evaluate(state, step=state.step)

    def _evaluate(self, state, step: int) -> None:
        try:
            accuracy = state.model.accuracy(
                state.cluster.parameters,
                self._test_dataset.features,
                self._test_dataset.labels,
            )
        except NotImplementedError:
            return
        state.history.record_accuracy(step, accuracy)
        state.callbacks.on_evaluate(state, step, accuracy)


class EarlyStopping(Callback):
    """Stop when the training loss hits a target or stops improving.

    Parameters
    ----------
    loss_threshold:
        Stop once the per-step loss is at or below this value.
    patience:
        Stop after this many consecutive steps without the best loss
        improving by more than ``min_delta``.
    min_delta:
        Minimum improvement that resets the patience counter.
    """

    needs_step_matrices = False  # reads only the recorded loss history

    def __init__(
        self,
        loss_threshold: float | None = None,
        patience: int | None = None,
        min_delta: float = 0.0,
    ):
        if loss_threshold is None and patience is None:
            raise ConfigurationError(
                "EarlyStopping needs loss_threshold and/or patience"
            )
        if patience is not None and patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        self._loss_threshold = loss_threshold
        self._patience = patience
        self._min_delta = float(min_delta)
        self._best = float("inf")
        self._steps_since_best = 0
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """Whether this callback requested the stop."""
        return self._triggered

    def on_train_start(self, state) -> None:
        self._best = float("inf")
        self._steps_since_best = 0
        self._triggered = False

    def on_step_end(self, state, result) -> None:
        if len(state.history) == 0:
            return
        loss = state.history.final_loss
        if self._loss_threshold is not None and loss <= self._loss_threshold:
            self._triggered = True
        if loss < self._best - self._min_delta:
            self._best = loss
            self._steps_since_best = 0
        else:
            self._steps_since_best += 1
            if self._patience is not None and self._steps_since_best >= self._patience:
                self._triggered = True

    def should_stop(self, state) -> bool:
        return self._triggered


class StepResultRecorder(Callback):
    """Keep every round's :class:`StepResult` (gradients, aggregate)."""

    def __init__(self):
        self._results: list["StepResult"] = []

    @property
    def results(self) -> list["StepResult"]:
        """The recorded rounds, in order (a copy of the list)."""
        return list(self._results)

    def on_train_start(self, state) -> None:
        self._results = []

    def on_step_end(self, state, result) -> None:
        self._results.append(result)


class VNRatioCallback(Callback):
    """Track the per-round VN ratio (Eq. 8) during a run.

    Wraps :class:`repro.analysis.monitor.VNRatioMonitor` as a pluggable
    callback; read :attr:`trajectory` after the run.
    """

    def __init__(self, zero_threshold: float = 1e-15):
        self._zero_threshold = float(zero_threshold)
        self._monitor = None

    @property
    def trajectory(self) -> "VNTrajectory":
        """The recorded VN trajectory (available once training started)."""
        if self._monitor is None:
            raise ConfigurationError("VNRatioCallback has not observed a run yet")
        return self._monitor.trajectory

    def on_train_start(self, state) -> None:
        from repro.analysis.monitor import VNRatioMonitor

        self._monitor = VNRatioMonitor(state.cluster, self._zero_threshold)

    def on_step_end(self, state, result) -> None:
        assert self._monitor is not None
        self._monitor.observe(result)
