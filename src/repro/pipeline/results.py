"""Training results and privacy reporting.

These types used to live inside :mod:`repro.distributed.trainer`; they
are defined here (a leaf module with no distributed/pipeline imports)
so both the legacy :func:`repro.distributed.trainer.train` wrapper and
the :class:`repro.pipeline.builder.Experiment` builder can share them
without circular imports.  The trainer re-exports them, so
``from repro.distributed.trainer import TrainingResult`` keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.history import TrainingHistory
from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    PrivacySpend,
    RDPAccountant,
)
from repro.privacy.mechanisms import GaussianMechanism, NoiseMechanism
from repro.typing import Vector

__all__ = ["PrivacyReport", "TrainingResult", "privacy_report"]


@dataclass(frozen=True)
class PrivacyReport:
    """End-to-end privacy accounting for one training run."""

    per_step: PrivacySpend
    noise_sigma: float
    basic: PrivacySpend
    advanced: PrivacySpend
    rdp: PrivacySpend | None

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"per-step ({self.per_step.epsilon:.3g}, {self.per_step.delta:.3g})-DP",
            f"basic total ({self.basic.epsilon:.3g}, {self.basic.delta:.3g})",
            f"advanced total ({self.advanced.epsilon:.3g}, {self.advanced.delta:.3g})",
        ]
        if self.rdp is not None:
            parts.append(f"RDP total ({self.rdp.epsilon:.3g}, {self.rdp.delta:.3g})")
        return "; ".join(parts)


@dataclass
class TrainingResult:
    """Everything one training run produces."""

    history: TrainingHistory
    final_parameters: Vector = field(repr=False)
    privacy: PrivacyReport | None
    config: dict = field(repr=False)

    @property
    def final_loss(self) -> float:
        """Training loss at the last step."""
        return self.history.final_loss

    @property
    def final_accuracy(self) -> float:
        """Test accuracy at the last evaluation (if any were recorded)."""
        return self.history.final_accuracy


def privacy_report(
    mechanism: NoiseMechanism | None,
    epsilon: float | None,
    delta: float,
    num_steps: int,
) -> PrivacyReport | None:
    """Compose the per-step budget over ``num_steps`` under every accountant.

    Returns ``None`` when DP is off.  ``num_steps`` is the *configured*
    horizon; an early-stopped run spends at most this much.
    """
    if mechanism is None or epsilon is None:
        return None
    per_step = PrivacySpend(epsilon=mechanism.epsilon, delta=mechanism.delta)
    basic = BasicCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    advanced = AdvancedCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    rdp: PrivacySpend | None = None
    if isinstance(mechanism, GaussianMechanism):
        accountant = RDPAccountant()
        accountant.step_gaussian(mechanism.noise_multiplier, num_steps)
        rdp = accountant.get_privacy_spent(delta)
        sigma = mechanism.sigma
    else:
        sigma = float(np.sqrt(mechanism.per_coordinate_variance))
    return PrivacyReport(
        per_step=per_step, noise_sigma=sigma, basic=basic, advanced=advanced, rdp=rdp
    )
