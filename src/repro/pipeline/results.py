"""Training results and privacy reporting.

These types used to live inside :mod:`repro.distributed.trainer`; they
are defined here (a leaf module with no distributed/pipeline imports)
so both the legacy :func:`repro.distributed.trainer.train` wrapper and
the :class:`repro.pipeline.builder.Experiment` builder can share them
without circular imports.  The trainer re-exports them, so
``from repro.distributed.trainer import TrainingResult`` keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.history import TrainingHistory
from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    PrivacySpend,
    RDPAccountant,
)
from repro.privacy.amplification import amplify_by_rate
from repro.privacy.mechanisms import GaussianMechanism, NoiseMechanism
from repro.typing import Vector

__all__ = [
    "PrivacyReport",
    "TrainingResult",
    "privacy_report",
    "amplified_privacy_report",
]


@dataclass(frozen=True)
class PrivacyReport:
    """End-to-end privacy accounting for one training run.

    ``sampling_rate`` is set (to the subsampling probability ``q``) when
    the per-step budget has been amplified by partial participation /
    subsampling; it stays ``None`` for the classical full-participation
    accounting.
    """

    per_step: PrivacySpend
    noise_sigma: float
    basic: PrivacySpend
    advanced: PrivacySpend
    rdp: PrivacySpend | None
    sampling_rate: float | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"per-step ({self.per_step.epsilon:.3g}, {self.per_step.delta:.3g})-DP",
            f"basic total ({self.basic.epsilon:.3g}, {self.basic.delta:.3g})",
            f"advanced total ({self.advanced.epsilon:.3g}, {self.advanced.delta:.3g})",
        ]
        if self.rdp is not None:
            parts.append(f"RDP total ({self.rdp.epsilon:.3g}, {self.rdp.delta:.3g})")
        if self.sampling_rate is not None:
            parts.append(f"amplified at rate q={self.sampling_rate:.3g}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (the one shape every store uses)."""
        return {
            "per_step": list(self.per_step),
            "noise_sigma": self.noise_sigma,
            "basic": list(self.basic),
            "advanced": list(self.advanced),
            "rdp": list(self.rdp) if self.rdp is not None else None,
            "sampling_rate": self.sampling_rate,
        }


@dataclass
class TrainingResult:
    """Everything one training run produces.

    ``departed`` is multiprocess-only degradation evidence:
    ``shard_id -> reason`` for every shard that crashed, hung, or left
    during the run (``None`` for in-process runs and clean ones).  The
    CLI surfaces it in the run summary so a degraded run is legible
    without opening the trace.

    ``bytes_on_wire`` is the run's total exact encoded wire traffic
    (honest + Byzantine submissions) when a codec was configured;
    ``None`` on raw-wire runs.
    """

    history: TrainingHistory
    final_parameters: Vector = field(repr=False)
    privacy: PrivacyReport | None
    config: dict = field(repr=False)
    departed: dict | None = None
    bytes_on_wire: int | None = None

    @property
    def final_loss(self) -> float:
        """Training loss at the last step."""
        return self.history.final_loss

    @property
    def final_accuracy(self) -> float:
        """Test accuracy at the last evaluation (if any were recorded)."""
        return self.history.final_accuracy


def privacy_report(
    mechanism: NoiseMechanism | None,
    epsilon: float | None,
    delta: float,
    num_steps: int,
) -> PrivacyReport | None:
    """Compose the per-step budget over ``num_steps`` under every accountant.

    Returns ``None`` when DP is off.  ``num_steps`` is the *configured*
    horizon; an early-stopped run spends at most this much.
    """
    if mechanism is None or epsilon is None:
        return None
    per_step = PrivacySpend(epsilon=mechanism.epsilon, delta=mechanism.delta)
    basic = BasicCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    advanced = AdvancedCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_steps
    )
    rdp: PrivacySpend | None = None
    if isinstance(mechanism, GaussianMechanism):
        accountant = RDPAccountant()
        accountant.step_gaussian(mechanism.noise_multiplier, num_steps)
        rdp = accountant.get_privacy_spent(delta)
        sigma = mechanism.sigma
    else:
        sigma = float(np.sqrt(mechanism.per_coordinate_variance))
    return PrivacyReport(
        per_step=per_step, noise_sigma=sigma, basic=basic, advanced=advanced, rdp=rdp
    )


def amplified_privacy_report(
    mechanism: NoiseMechanism | None,
    epsilon: float | None,
    delta: float,
    num_rounds: int,
    sampling_rate: float,
) -> PrivacyReport | None:
    """Accounting for a worker that participates at ``sampling_rate``.

    A worker joining each of ``num_rounds`` rounds independently with
    probability ``q = sampling_rate`` invokes its mechanism on a
    subsampled view of the round stream, so each round costs the
    amplified budget of :func:`repro.privacy.amplification.amplify_by_rate`
    and the total composes over all ``num_rounds`` rounds.  The RDP
    entry is ``None`` — tight subsampled-RDP bounds are out of scope,
    and reporting the unamplified moments bound here would *overstate*
    tightness relative to the amplified per-step budget.

    ``sampling_rate == 0`` (the worker never participated, so nothing
    was released) yields an all-zero report.  Returns ``None`` when DP
    is off.
    """
    if mechanism is None or epsilon is None:
        return None
    if isinstance(mechanism, GaussianMechanism):
        sigma = mechanism.sigma
    else:
        sigma = float(np.sqrt(mechanism.per_coordinate_variance))
    if sampling_rate == 0.0:
        nothing = PrivacySpend(epsilon=0.0, delta=0.0)
        return PrivacyReport(
            per_step=nothing,
            noise_sigma=sigma,
            basic=nothing,
            advanced=nothing,
            rdp=None,
            sampling_rate=0.0,
        )
    per_step = amplify_by_rate(mechanism.epsilon, mechanism.delta, sampling_rate)
    basic = BasicCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_rounds
    )
    advanced = AdvancedCompositionAccountant().compose(
        per_step.epsilon, per_step.delta, num_rounds
    )
    return PrivacyReport(
        per_step=per_step,
        noise_sigma=sigma,
        basic=basic,
        advanced=advanced,
        rdp=None,
        sampling_rate=float(sampling_rate),
    )
