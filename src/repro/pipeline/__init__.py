"""Composable experiment pipeline.

The public experiment API: a unified component registry
(:mod:`repro.pipeline.registry`), a staged :class:`Experiment` builder
(:mod:`repro.pipeline.builder`) with a callback-driven training loop
(:mod:`repro.pipeline.loop`, :mod:`repro.pipeline.callbacks`), and a
parallel multi-seed executor (:mod:`repro.pipeline.parallel`).  The
legacy ``train()`` keyword API is a thin wrapper over this package.
"""

# Import order matters: results and registry are leaves; loop/builder
# pull in the distributed substrate, whose trainer module imports the
# two leaf modules back (already loaded by then).
from repro.pipeline.results import (
    PrivacyReport,
    TrainingResult,
    amplified_privacy_report,
    privacy_report,
)
from repro.pipeline.registry import (
    REGISTRY,
    ComponentRegistry,
    available_components,
    build_component,
    build_mechanism,
    component_families,
    register_component,
)
from repro.pipeline.callbacks import (
    AccuracyCallback,
    Callback,
    CallbackList,
    EarlyStopping,
    StepResultRecorder,
    VNRatioCallback,
)
from repro.pipeline.loop import LoopState, TrainingLoop
from repro.pipeline.builder import Experiment
from repro.pipeline.parallel import TrainingJob, execute_job, jobs_for_seeds, run_jobs

__all__ = [
    "AccuracyCallback",
    "Callback",
    "CallbackList",
    "ComponentRegistry",
    "EarlyStopping",
    "Experiment",
    "LoopState",
    "PrivacyReport",
    "REGISTRY",
    "StepResultRecorder",
    "TrainingJob",
    "TrainingLoop",
    "TrainingResult",
    "VNRatioCallback",
    "amplified_privacy_report",
    "available_components",
    "build_component",
    "build_mechanism",
    "component_families",
    "execute_job",
    "jobs_for_seeds",
    "privacy_report",
    "register_component",
    "run_jobs",
]
