"""Composable experiment builder.

:class:`Experiment` decomposes the monolithic ``train()`` into explicit
stages — :meth:`~Experiment.build_data`, :meth:`~Experiment.build_workers`,
:meth:`~Experiment.build_server`, :meth:`~Experiment.build_cluster`,
:meth:`~Experiment.run` — each cached and independently inspectable.
Every pluggable component (GAR, attack, model, noise mechanism,
learning-rate schedule, data distribution, network) is accepted either
as an instance, a bare name, or a ``{"name": ..., **kwargs}`` spec
resolved through :mod:`repro.pipeline.registry`.

Seed streams come from a path-addressed :class:`repro.rng.SeedTree`, so
the stage *order* never affects randomness: building workers before or
after the server yields bit-identical runs, and an ``Experiment`` built
from the same arguments reproduces ``train()`` exactly.

>>> from repro.pipeline import Experiment
>>> from repro.experiments.runner import phishing_environment
>>> model, train_set, test_set = phishing_environment()
>>> result = Experiment(
...     model=model, train_dataset=train_set, test_dataset=test_set,
...     num_steps=100, gar={"name": "mda"}, attack={"name": "little"},
...     epsilon=0.2, seed=1,
... ).run()  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Iterable

from repro.attacks import ByzantineAttack, get_attack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.cluster import Cluster
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.gars import GAR, get_gar
from repro.gars.average import AverageGAR
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.optim.schedules import LearningRateSchedule
from repro.optim.sgd import SGDOptimizer
from repro.pipeline.callbacks import AccuracyCallback, Callback, CallbackList
from repro.pipeline.loop import LoopState, TrainingLoop
from repro.pipeline.registry import (
    MOMENTUM_PLACEMENTS,
    REGISTRY,
    ComponentRegistry,
    build_mechanism,
)
from repro.pipeline.results import TrainingResult, privacy_report
from repro.privacy.mechanisms import NoiseMechanism
from repro.rng import SeedTree

__all__ = ["Experiment", "MOMENTUM_PLACEMENTS"]


def _resolve_gar(gar, n: int, f: int, gar_kwargs: dict | None) -> GAR:
    if isinstance(gar, GAR):
        if gar.n != n or gar.f != f:
            raise ConfigurationError(
                f"provided GAR is bound to (n={gar.n}, f={gar.f}) but the run "
                f"uses (n={n}, f={f})"
            )
        return gar
    if isinstance(gar, dict):
        name, spec_kwargs = ComponentRegistry.parse_spec(gar)
        kwargs = {**(gar_kwargs or {}), **spec_kwargs}
    else:
        name, kwargs = gar, dict(gar_kwargs or {})
    if name == AverageGAR.name and f > 0:
        # The experiments deliberately run the non-robust baseline.
        kwargs.setdefault("allow_byzantine", True)
    return get_gar(name, n, f, **kwargs)


def _resolve_attack(attack, attack_kwargs: dict | None) -> ByzantineAttack | None:
    if attack is None:
        return None
    if isinstance(attack, ByzantineAttack):
        if attack_kwargs:
            raise ConfigurationError(
                "attack_kwargs only apply when the attack is given by name"
            )
        return attack
    if isinstance(attack, dict):
        name, spec_kwargs = ComponentRegistry.parse_spec(attack)
        return get_attack(name, **{**(attack_kwargs or {}), **spec_kwargs})
    return get_attack(attack, **(attack_kwargs or {}))


def _resolve_schedule(learning_rate):
    if isinstance(learning_rate, dict):
        return REGISTRY.build("schedule", learning_rate)
    return learning_rate  # float or LearningRateSchedule, handled by SGDOptimizer


class Experiment:
    """One distributed training experiment, built stage by stage.

    Accepts exactly the keyword surface of the legacy
    :func:`repro.distributed.trainer.train` (which is now a thin wrapper
    over this class), with three extensions: components may be given as
    registry specs, a ``network`` spec/instance can replace the
    ``drop_probability`` shorthand, and ``callbacks`` hook into the
    training loop.

    Structural parameters and component *names* are validated at
    construction time; component-specific keyword errors surface when
    the owning stage builds.  The build stages are lazy and cached, and
    :meth:`run` re-builds from scratch if the cluster was already
    stepped, so a single ``Experiment`` can be run repeatedly with
    bit-identical results.
    """

    def __init__(
        self,
        *,
        model: Model | str | dict,
        train_dataset: Dataset,
        test_dataset: Dataset | None = None,
        num_steps: int = 1000,
        n: int = 11,
        f: int = 5,
        num_byzantine: int | None = None,
        gar: str | dict | GAR = "mda",
        gar_kwargs: dict | None = None,
        attack: str | dict | ByzantineAttack | None = None,
        attack_kwargs: dict | None = None,
        batch_size: int = 50,
        g_max: float | None = 1e-2,
        epsilon: float | None = None,
        delta: float = 1e-6,
        noise_kind: str | dict = "gaussian",
        learning_rate: float | dict | LearningRateSchedule = 2.0,
        momentum: float = 0.99,
        momentum_at: str = "worker",
        nesterov: bool = False,
        clip_mode: str = "batch",
        drop_probability: float = 0.0,
        data_distribution: str | dict = "shared",
        eval_every: int = 50,
        seed: int = 1,
        record_gradients: bool = False,
        network=None,
        callbacks: Iterable[Callback] = (),
    ):
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        if eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
        if momentum_at not in MOMENTUM_PLACEMENTS:
            raise ConfigurationError(
                f"momentum_at must be one of {MOMENTUM_PLACEMENTS}, got {momentum_at!r}"
            )
        if isinstance(model, (str, dict)):
            model = REGISTRY.build("model", model)
        if num_byzantine is None:
            num_byzantine = f if attack is not None else 0
        if num_byzantine < 0:
            raise ConfigurationError(
                f"num_byzantine must be >= 0, got {num_byzantine}"
            )
        if num_byzantine > f:
            raise ConfigurationError(
                f"num_byzantine ({num_byzantine}) cannot exceed the declared f ({f})"
            )
        num_honest = n - num_byzantine
        if num_honest < 1:
            raise ConfigurationError("need at least one honest worker")

        self.seeds = SeedTree(seed)
        self.gar = _resolve_gar(gar, n, f, gar_kwargs)
        self.attack = _resolve_attack(attack, attack_kwargs)
        if num_byzantine > 0 and self.attack is None:
            raise ConfigurationError("num_byzantine > 0 requires an attack")

        self.mechanism: NoiseMechanism | None = None
        self._noise_kind_name: str | None = None
        if epsilon is not None:
            if g_max is None:
                raise ConfigurationError("DP requires g_max (Assumption 1)")
            if isinstance(noise_kind, dict):
                self._noise_kind_name = ComponentRegistry.parse_spec(noise_kind)[0]
                self.mechanism = REGISTRY.build(
                    "mechanism",
                    noise_kind,
                    epsilon=epsilon,
                    delta=delta,
                    g_max=g_max,
                    batch_size=batch_size,
                    dimension=model.dimension,
                )
            else:
                self._noise_kind_name = noise_kind
                self.mechanism = build_mechanism(
                    noise_kind, epsilon, delta, g_max, batch_size, model.dimension
                )

        distribution_name = ComponentRegistry.parse_spec(data_distribution)[0]
        if not REGISTRY.has("distribution", distribution_name):
            raise ConfigurationError(
                f"data_distribution must be one of "
                f"{REGISTRY.available('distribution')}, got {distribution_name!r}"
            )
        if isinstance(network, (str, dict)):
            network_name = ComponentRegistry.parse_spec(network)[0]
            if not REGISTRY.has("network", network_name):
                raise ConfigurationError(
                    f"network must be one of {REGISTRY.available('network')}, "
                    f"got {network_name!r}"
                )

        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.num_steps = int(num_steps)
        self.n = int(n)
        self.f = int(f)
        self.num_byzantine = int(num_byzantine)
        self.num_honest = int(num_honest)
        self.batch_size = int(batch_size)
        self.g_max = g_max
        self.epsilon = epsilon
        self.delta = delta
        self.learning_rate = _resolve_schedule(learning_rate)
        self.momentum = float(momentum)
        self.momentum_at = momentum_at
        self.nesterov = bool(nesterov)
        self.clip_mode = clip_mode
        self.drop_probability = float(drop_probability)
        self.data_distribution = data_distribution
        self.eval_every = int(eval_every)
        self.seed = seed
        self.record_gradients = bool(record_gradients)
        self.network_spec = network
        self.callbacks: list[Callback] = list(callbacks)

        self._worker_datasets: list[Dataset] | None = None
        self._workers: list[HonestWorker] | None = None
        self._server: ParameterServer | None = None
        self._network = None
        self._cluster: Cluster | None = None

    @classmethod
    def from_config(
        cls,
        config,
        model: Model,
        train_dataset: Dataset,
        test_dataset: Dataset | None = None,
        *,
        seed: int | None = None,
        callbacks: Iterable[Callback] = (),
    ) -> "Experiment":
        """Build one seed's experiment from an :class:`ExperimentConfig` cell.

        ``seed`` defaults to the config's first seed.
        """
        if seed is None:
            seed = config.seeds[0]
        return cls(
            model=model,
            train_dataset=train_dataset,
            test_dataset=test_dataset,
            callbacks=callbacks,
            **config.train_kwargs(seed),
        )

    # ------------------------------------------------------------------
    # build stages (lazy, cached, order-independent thanks to SeedTree)
    # ------------------------------------------------------------------

    def build_data(self) -> list[Dataset]:
        """Stage 1: per-honest-worker datasets from the data distribution.

        The distribution name was validated in ``__init__``; the
        registry itself backstops any later mutation.
        """
        if self._worker_datasets is None:
            self._worker_datasets = REGISTRY.build(
                "distribution",
                self.data_distribution,
                dataset=self.train_dataset,
                num_shards=self.num_honest,
                rng=self.seeds.generator("shards"),
            )
        return list(self._worker_datasets)

    def build_workers(self) -> list[HonestWorker]:
        """Stage 2: the honest workers with their private seed streams."""
        if self._workers is None:
            datasets = self.build_data()
            worker_momentum = self.momentum if self.momentum_at == "worker" else 0.0
            self._workers = [
                HonestWorker(
                    worker_id=index,
                    model=self.model,
                    sampler=BatchSampler(
                        datasets[index],
                        self.batch_size,
                        self.seeds.generator("worker", index, "batch"),
                    ),
                    noise_rng=self.seeds.generator("worker", index, "noise"),
                    g_max=self.g_max,
                    mechanism=self.mechanism,
                    clip_mode=self.clip_mode,
                    momentum=worker_momentum,
                )
                for index in range(self.num_honest)
            ]
        return list(self._workers)

    def build_server(self) -> ParameterServer:
        """Stage 3: the parameter server (GAR + optimizer + init params)."""
        if self._server is None:
            server_momentum = self.momentum if self.momentum_at == "server" else 0.0
            optimizer = SGDOptimizer(
                self.learning_rate, momentum=server_momentum, nesterov=self.nesterov
            )
            self._server = ParameterServer(
                initial_parameters=self.model.initial_parameters(
                    self.seeds.generator("init")
                ),
                gar=self.gar,
                optimizer=optimizer,
                record_received=self.record_gradients,
            )
        return self._server

    def build_network(self):
        """The network model: a spec/instance override, or the
        ``drop_probability`` shorthand (> 0 means a lossy network)."""
        if self._network is None:
            spec = self.network_spec
            if spec is None:
                spec = "lossy" if self.drop_probability > 0.0 else "perfect"
            if isinstance(spec, (str, dict)):
                name, kwargs = ComponentRegistry.parse_spec(spec)
                if name == "lossy":
                    kwargs.setdefault("drop_probability", self.drop_probability)
                    kwargs.setdefault("rng", self.seeds.generator("network"))
                self._network = REGISTRY.build("network", {"name": name, **kwargs})
            else:
                self._network = spec
        return self._network

    def build_cluster(self) -> Cluster:
        """Stage 4: wire workers, adversary, network and server together."""
        if self._cluster is None:
            self._cluster = Cluster(
                server=self.build_server(),
                honest_workers=self.build_workers(),
                num_byzantine=self.num_byzantine,
                attack=self.attack,
                attack_rng=(
                    self.seeds.generator("attack") if self.attack is not None else None
                ),
                network=self.build_network(),
            )
        return self._cluster

    def reset(self) -> None:
        """Drop all built stages; the next build starts fresh.

        Seed streams are path-addressed, so a rebuilt experiment
        reproduces the original bit for bit.
        """
        self._worker_datasets = None
        self._workers = None
        self._server = None
        self._network = None
        self._cluster = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, callbacks: Iterable[Callback] = ()) -> TrainingResult:
        """Final stage: run the training loop and package the result.

        ``callbacks`` are appended after the experiment-level ones.  If
        the cached cluster has already been stepped (a previous
        :meth:`run`), everything is rebuilt first so repeated runs are
        independent and identical.
        """
        if self._cluster is not None and self._cluster.step_count > 0:
            self.reset()
        cluster = self.build_cluster()
        all_callbacks = CallbackList([*self.callbacks, *callbacks])
        if self.test_dataset is not None:
            all_callbacks.append(
                AccuracyCallback(self.test_dataset, eval_every=self.eval_every)
            )
        loop = TrainingLoop(
            cluster=cluster,
            model=self.model,
            history=TrainingHistory(),
            callbacks=all_callbacks,
        )
        state: LoopState = loop.run(self.num_steps)
        privacy = privacy_report(self.mechanism, self.epsilon, self.delta, self.num_steps)
        return TrainingResult(
            history=state.history,
            final_parameters=cluster.parameters,
            privacy=privacy,
            config=self.describe(),
        )

    def describe(self) -> dict:
        """The configuration echo stored on every :class:`TrainingResult`."""
        return {
            "num_steps": self.num_steps,
            "n": self.n,
            "f": self.f,
            "num_byzantine": self.num_byzantine,
            "gar": self.gar.name,
            "attack": self.attack.name if self.attack is not None else None,
            "batch_size": self.batch_size,
            "g_max": self.g_max,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "noise_kind": self._noise_kind_name if self.epsilon is not None else None,
            "momentum": self.momentum,
            "momentum_at": self.momentum_at,
            "clip_mode": self.clip_mode,
            "drop_probability": self.drop_probability,
            "data_distribution": self.data_distribution,
            "seed": self.seed,
            "model_dimension": self.model.dimension,
        }

    def __repr__(self) -> str:
        dp = f"epsilon={self.epsilon}" if self.epsilon is not None else "no-DP"
        return (
            f"Experiment(gar={self.gar.name!r}, n={self.n}, f={self.f}, "
            f"attack={self.attack.name if self.attack else None!r}, {dp}, "
            f"num_steps={self.num_steps}, seed={self.seed})"
        )
