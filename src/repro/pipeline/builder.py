"""Composable experiment builder.

:class:`Experiment` decomposes the monolithic ``train()`` into explicit
stages — :meth:`~Experiment.build_data`, :meth:`~Experiment.build_workers`,
:meth:`~Experiment.build_server`, :meth:`~Experiment.build_cluster`,
:meth:`~Experiment.run` — each cached and independently inspectable.
Every pluggable component (GAR, attack, model, noise mechanism,
learning-rate schedule, data distribution, network) is accepted either
as an instance, a bare name, or a ``{"name": ..., **kwargs}`` spec
resolved through :mod:`repro.pipeline.registry`.

Seed streams come from a path-addressed :class:`repro.rng.SeedTree`, so
the stage *order* never affects randomness: building workers before or
after the server yields bit-identical runs, and an ``Experiment`` built
from the same arguments reproduces ``train()`` exactly.

>>> from repro.pipeline import Experiment
>>> from repro.experiments.runner import phishing_environment
>>> model, train_set, test_set = phishing_environment()
>>> result = Experiment(
...     model=model, train_dataset=train_set, test_dataset=test_set,
...     num_steps=100, gar={"name": "mda"}, attack={"name": "little"},
...     epsilon=0.2, seed=1,
... ).run()  # doctest: +SKIP
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterable

from repro.attacks import ByzantineAttack, get_attack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.distributed.cluster import Cluster
from repro.distributed.runtime import BACKENDS, MultiprocessCluster, WorkerShardSpec
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker
from repro.exceptions import ConfigurationError
from repro.faults import build_fault_plan
from repro.gars import GAR, get_gar
from repro.gars.average import AverageGAR
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.optim.schedules import LearningRateSchedule
from repro.optim.sgd import SGDOptimizer
from repro.pipeline.callbacks import AccuracyCallback, Callback, CallbackList
from repro.pipeline.loop import LoopState, TrainingLoop
from repro.pipeline.registry import (
    MOMENTUM_PLACEMENTS,
    REGISTRY,
    ComponentRegistry,
    build_mechanism,
)
from repro.pipeline.results import TrainingResult, privacy_report
from repro.privacy.mechanisms import NoiseMechanism
from repro.rng import SeedTree

__all__ = ["Experiment", "MOMENTUM_PLACEMENTS", "BACKENDS"]


def _resolve_gar(gar, n: int, f: int, gar_kwargs: dict | None) -> GAR:
    if isinstance(gar, GAR):
        if gar.n != n or gar.f != f:
            raise ConfigurationError(
                f"provided GAR is bound to (n={gar.n}, f={gar.f}) but the run "
                f"uses (n={n}, f={f})"
            )
        return gar
    if isinstance(gar, dict):
        name, spec_kwargs = ComponentRegistry.parse_spec(gar)
        kwargs = {**(gar_kwargs or {}), **spec_kwargs}
    else:
        name, kwargs = gar, dict(gar_kwargs or {})
    if name == AverageGAR.name and f > 0:
        # The experiments deliberately run the non-robust baseline.
        kwargs.setdefault("allow_byzantine", True)
    return get_gar(name, n, f, **kwargs)


def _resolve_attack(attack, attack_kwargs: dict | None) -> ByzantineAttack | None:
    if attack is None:
        return None
    if isinstance(attack, ByzantineAttack):
        if attack_kwargs:
            raise ConfigurationError(
                "attack_kwargs only apply when the attack is given by name"
            )
        return attack
    if isinstance(attack, dict):
        name, spec_kwargs = ComponentRegistry.parse_spec(attack)
        return get_attack(name, **{**(attack_kwargs or {}), **spec_kwargs})
    return get_attack(attack, **(attack_kwargs or {}))


def _resolve_schedule(learning_rate):
    if isinstance(learning_rate, dict):
        return REGISTRY.build("schedule", learning_rate)
    return learning_rate  # float or LearningRateSchedule, handled by SGDOptimizer


class Experiment:
    """One distributed training experiment, built stage by stage.

    Accepts exactly the keyword surface of the legacy
    :func:`repro.distributed.trainer.train` (which is now a thin wrapper
    over this class), with three extensions: components may be given as
    registry specs, a ``network`` spec/instance can replace the
    ``drop_probability`` shorthand, and ``callbacks`` hook into the
    training loop.

    Structural parameters and component *names* are validated at
    construction time; component-specific keyword errors surface when
    the owning stage builds.  The build stages are lazy and cached, and
    :meth:`run` re-builds from scratch if the cluster was already
    stepped, so a single ``Experiment`` can be run repeatedly with
    bit-identical results.
    """

    def __init__(
        self,
        *,
        model: Model | str | dict,
        train_dataset: Dataset,
        test_dataset: Dataset | None = None,
        num_steps: int = 1000,
        n: int = 11,
        f: int = 5,
        num_byzantine: int | None = None,
        gar: str | dict | GAR = "mda",
        gar_kwargs: dict | None = None,
        attack: str | dict | ByzantineAttack | None = None,
        attack_kwargs: dict | None = None,
        batch_size: int = 50,
        g_max: float | None = 1e-2,
        epsilon: float | None = None,
        delta: float = 1e-6,
        noise_kind: str | dict = "gaussian",
        learning_rate: float | dict | LearningRateSchedule = 2.0,
        momentum: float = 0.99,
        momentum_at: str = "worker",
        nesterov: bool = False,
        clip_mode: str = "batch",
        drop_probability: float = 0.0,
        data_distribution: str | dict = "shared",
        eval_every: int = 50,
        seed: int = 1,
        record_gradients: bool = False,
        network=None,
        callbacks: Iterable[Callback] = (),
        policy=None,
        policy_kwargs: dict | None = None,
        latency=None,
        latency_kwargs: dict | None = None,
        codec=None,
        codec_kwargs: dict | None = None,
        participation_rate: float = 1.0,
        participation_kind: str = "poisson",
        backend: str = "inprocess",
        num_shards: int | None = None,
        round_timeout: float = 30.0,
        telemetry=None,
        faults=None,
        faults_kwargs: dict | None = None,
        checkpoint: str | Path | None = None,
        checkpoint_every: int = 1,
    ):
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        if eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {eval_every}")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if num_shards is not None and num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if round_timeout <= 0:
            raise ConfigurationError(
                f"round_timeout must be > 0, got {round_timeout}"
            )
        if momentum_at not in MOMENTUM_PLACEMENTS:
            raise ConfigurationError(
                f"momentum_at must be one of {MOMENTUM_PLACEMENTS}, got {momentum_at!r}"
            )
        if isinstance(model, (str, dict)):
            model = REGISTRY.build("model", model)
        if num_byzantine is None:
            num_byzantine = f if attack is not None else 0
        if num_byzantine < 0:
            raise ConfigurationError(
                f"num_byzantine must be >= 0, got {num_byzantine}"
            )
        if num_byzantine > f:
            raise ConfigurationError(
                f"num_byzantine ({num_byzantine}) cannot exceed the declared f ({f})"
            )
        num_honest = n - num_byzantine
        if num_honest < 1:
            raise ConfigurationError("need at least one honest worker")
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint is not None and backend != "inprocess":
            raise ConfigurationError(
                "checkpointing requires the inprocess backend (shard-process "
                "state lives behind the fault plane's respawn path instead)"
            )

        self.seeds = SeedTree(seed)
        self.gar = _resolve_gar(gar, n, f, gar_kwargs)
        self.attack = _resolve_attack(attack, attack_kwargs)
        if num_byzantine > 0 and self.attack is None:
            raise ConfigurationError("num_byzantine > 0 requires an attack")

        self.mechanism: NoiseMechanism | None = None
        self._noise_kind_name: str | None = None
        if epsilon is not None:
            if g_max is None:
                raise ConfigurationError("DP requires g_max (Assumption 1)")
            if isinstance(noise_kind, dict):
                self._noise_kind_name = ComponentRegistry.parse_spec(noise_kind)[0]
                self.mechanism = REGISTRY.build(
                    "mechanism",
                    noise_kind,
                    epsilon=epsilon,
                    delta=delta,
                    g_max=g_max,
                    batch_size=batch_size,
                    dimension=model.dimension,
                )
            else:
                self._noise_kind_name = noise_kind
                self.mechanism = build_mechanism(
                    noise_kind, epsilon, delta, g_max, batch_size, model.dimension
                )

        distribution_name = ComponentRegistry.parse_spec(data_distribution)[0]
        if not REGISTRY.has("distribution", distribution_name):
            raise ConfigurationError(
                f"data_distribution must be one of "
                f"{REGISTRY.available('distribution')}, got {distribution_name!r}"
            )
        if isinstance(network, (str, dict)):
            network_name = ComponentRegistry.parse_spec(network)[0]
            if not REGISTRY.has("network", network_name):
                raise ConfigurationError(
                    f"network must be one of {REGISTRY.available('network')}, "
                    f"got {network_name!r}"
                )
        if isinstance(policy, (str, dict)):
            policy_name = ComponentRegistry.parse_spec(policy)[0]
            if not REGISTRY.has("policy", policy_name):
                raise ConfigurationError(
                    f"policy must be one of {REGISTRY.available('policy')}, "
                    f"got {policy_name!r}"
                )
        if isinstance(latency, (str, dict)):
            latency_name = ComponentRegistry.parse_spec(latency)[0]
            if not REGISTRY.has("latency", latency_name):
                raise ConfigurationError(
                    f"latency must be one of {REGISTRY.available('latency')}, "
                    f"got {latency_name!r}"
                )
        if isinstance(codec, (str, dict)):
            codec_name = ComponentRegistry.parse_spec(codec)[0]
            if not REGISTRY.has("codec", codec_name):
                raise ConfigurationError(
                    f"codec must be one of {REGISTRY.available('codec')}, "
                    f"got {codec_name!r}"
                )
        if not 0.0 < participation_rate <= 1.0:
            raise ConfigurationError(
                f"participation_rate must be in (0, 1], got {participation_rate}"
            )
        from repro.simulation.participation import PARTICIPATION_KINDS

        if participation_kind not in PARTICIPATION_KINDS:
            raise ConfigurationError(
                f"participation_kind must be one of {PARTICIPATION_KINDS}, "
                f"got {participation_kind!r}"
            )
        if participation_rate < 1.0:
            # Per-round sampling needs rounds: a non-barrier policy would
            # freeze the round-1 draw for the whole run (the engine also
            # enforces this; checking here fails fast at construction).
            if isinstance(policy, (str, dict)):
                factory = REGISTRY.get("policy", ComponentRegistry.parse_spec(policy)[0])
                policy_is_barrier = getattr(factory, "barrier", True)
            else:
                policy_is_barrier = getattr(policy, "barrier", True)
            if not policy_is_barrier:
                raise ConfigurationError(
                    "participation_rate < 1 requires a barrier-style policy "
                    "(sync / semi-sync); non-barrier policies drive workers "
                    "individually, so per-round sampling is undefined"
                )

        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.num_steps = int(num_steps)
        self.n = int(n)
        self.f = int(f)
        self.num_byzantine = int(num_byzantine)
        self.num_honest = int(num_honest)
        self.batch_size = int(batch_size)
        self.g_max = g_max
        self.epsilon = epsilon
        self.delta = delta
        self.learning_rate = _resolve_schedule(learning_rate)
        self.momentum = float(momentum)
        self.momentum_at = momentum_at
        self.nesterov = bool(nesterov)
        self.clip_mode = clip_mode
        self.drop_probability = float(drop_probability)
        self.data_distribution = data_distribution
        self.eval_every = int(eval_every)
        self.seed = seed
        self.record_gradients = bool(record_gradients)
        self.network_spec = network
        self.callbacks: list[Callback] = list(callbacks)
        self.policy_spec = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.latency_spec = latency
        self.latency_kwargs = dict(latency_kwargs or {})
        self.codec_spec = codec
        self.codec_kwargs = dict(codec_kwargs or {})
        self.participation_rate = float(participation_rate)
        self.participation_kind = participation_kind
        self.backend = backend
        self.num_shards = num_shards if num_shards is None else int(num_shards)
        self.round_timeout = float(round_timeout)
        self.checkpoint = None if checkpoint is None else str(checkpoint)
        self.checkpoint_every = int(checkpoint_every)
        self.faults_spec = faults
        self.faults_kwargs = dict(faults_kwargs or {})
        self.fault_plan = None
        self._resolved_faults = None
        if faults is not None:
            spec = faults
            if isinstance(spec, str):
                spec = {"name": spec, **self.faults_kwargs}
            elif isinstance(spec, dict):
                spec = {**self.faults_kwargs, **spec}
            elif self.faults_kwargs:
                raise ConfigurationError(
                    "faults_kwargs only apply when faults is given by name/spec"
                )
            plan = build_fault_plan(
                spec,
                num_rounds=self.num_steps,
                num_workers=self.num_honest,
                seeds=self.seeds,
            )
            if backend == "multiprocess":
                effective_shards = (
                    self.num_honest
                    if self.num_shards is None
                    else min(self.num_shards, self.num_honest)
                )
                if plan.num_shards != effective_shards:
                    raise ConfigurationError(
                        f"fault plan targets {plan.num_shards} shards but the "
                        f"multiprocess backend launches {effective_shards}; "
                        "set num_shards to match the plan"
                    )
            self.fault_plan = plan
            self._resolved_faults = plan.resolve(self.num_honest)
        elif faults_kwargs:
            raise ConfigurationError("faults_kwargs require faults")
        # None | Telemetry instance | trace path.  A path means each
        # run()/simulate() opens a fresh run-owned handle writing one
        # JSONL trace there; an instance is caller-owned (we open/close
        # the run on it but never close its sinks).
        if telemetry is not None and not isinstance(telemetry, (str, Path)):
            from repro.telemetry import Telemetry

            if not isinstance(telemetry, Telemetry):
                raise ConfigurationError(
                    "telemetry must be None, a Telemetry instance, or a "
                    f"trace path, got {type(telemetry).__name__}"
                )
        self.telemetry = telemetry

        self._worker_datasets: list[Dataset] | None = None
        self._workers: list[HonestWorker] | None = None
        self._server: ParameterServer | None = None
        self._network = None
        self._codec = None
        self._cluster: Cluster | None = None
        self._mp_cluster: MultiprocessCluster | None = None
        self._simulator = None

    @classmethod
    def from_config(
        cls,
        config,
        model: Model,
        train_dataset: Dataset,
        test_dataset: Dataset | None = None,
        *,
        seed: int | None = None,
        callbacks: Iterable[Callback] = (),
        telemetry=None,
    ) -> "Experiment":
        """Build one seed's experiment from an :class:`ExperimentConfig` cell.

        ``seed`` defaults to the config's first seed.  The config's
        simulation fields (policy/latency/participation) are carried
        over too, so the same cell drives :meth:`run` and
        :meth:`simulate` alike.  ``telemetry`` is run infrastructure,
        not part of the cell (it never enters the config's identity).
        """
        if seed is None:
            seed = config.seeds[0]
        return cls(
            model=model,
            train_dataset=train_dataset,
            test_dataset=test_dataset,
            callbacks=callbacks,
            telemetry=telemetry,
            **config.train_kwargs(seed),
            **config.simulation_kwargs(),
        )

    # ------------------------------------------------------------------
    # build stages (lazy, cached, order-independent thanks to SeedTree)
    # ------------------------------------------------------------------

    def build_data(self) -> list[Dataset]:
        """Stage 1: per-honest-worker datasets from the data distribution.

        The distribution name was validated in ``__init__``; the
        registry itself backstops any later mutation.
        """
        if self._worker_datasets is None:
            self._worker_datasets = REGISTRY.build(
                "distribution",
                self.data_distribution,
                dataset=self.train_dataset,
                num_shards=self.num_honest,
                rng=self.seeds.generator("shards"),
            )
        return list(self._worker_datasets)

    def build_workers(self) -> list[HonestWorker]:
        """Stage 2: the honest workers with their private seed streams."""
        if self._workers is None:
            datasets = self.build_data()
            worker_momentum = self.momentum if self.momentum_at == "worker" else 0.0
            self._workers = [
                HonestWorker(
                    worker_id=index,
                    model=self.model,
                    sampler=BatchSampler(
                        datasets[index],
                        self.batch_size,
                        self.seeds.generator("worker", index, "batch"),
                    ),
                    noise_rng=self.seeds.generator("worker", index, "noise"),
                    g_max=self.g_max,
                    mechanism=self.mechanism,
                    clip_mode=self.clip_mode,
                    momentum=worker_momentum,
                )
                for index in range(self.num_honest)
            ]
        return list(self._workers)

    def build_server(self) -> ParameterServer:
        """Stage 3: the parameter server (GAR + optimizer + init params)."""
        if self._server is None:
            server_momentum = self.momentum if self.momentum_at == "server" else 0.0
            optimizer = SGDOptimizer(
                self.learning_rate, momentum=server_momentum, nesterov=self.nesterov
            )
            self._server = ParameterServer(
                initial_parameters=self.model.initial_parameters(
                    self.seeds.generator("init")
                ),
                gar=self.gar,
                optimizer=optimizer,
                record_received=self.record_gradients,
            )
        return self._server

    def build_network(self):
        """The network model: a spec/instance override, or the
        ``drop_probability`` shorthand (> 0 means a lossy network)."""
        if self._network is None:
            spec = self.network_spec
            if spec is None:
                spec = "lossy" if self.drop_probability > 0.0 else "perfect"
            if isinstance(spec, (str, dict)):
                name, kwargs = ComponentRegistry.parse_spec(spec)
                if name == "lossy":
                    kwargs.setdefault("drop_probability", self.drop_probability)
                    kwargs.setdefault("rng", self.seeds.generator("network"))
                self._network = REGISTRY.build("network", {"name": name, **kwargs})
            else:
                self._network = spec
        return self._network

    def build_codec(self):
        """The wire codec: a registry spec/instance, or ``None`` (raw wire).

        Stochastic codecs that arrive without an explicit ``seed`` get
        their root seed from the seed tree's ``"codec"`` stream, so
        sync, simulator and multiprocess builds of the same experiment
        encode identically.
        """
        if self.codec_spec is None:
            return None
        if self._codec is None:
            spec = self.codec_spec
            if isinstance(spec, (str, dict)):
                name, spec_kwargs = ComponentRegistry.parse_spec(spec)
                kwargs = {**self.codec_kwargs, **spec_kwargs}
                if "seed" not in kwargs:
                    kwargs.setdefault("rng", self.seeds.generator("codec"))
                self._codec = REGISTRY.build("codec", {"name": name, **kwargs})
            else:
                self._codec = spec
        return self._codec

    def build_cluster(self) -> Cluster:
        """Stage 4: wire workers, adversary, network and server together."""
        if self._cluster is None:
            self._cluster = Cluster(
                server=self.build_server(),
                honest_workers=self.build_workers(),
                num_byzantine=self.num_byzantine,
                attack=self.attack,
                attack_rng=(
                    self.seeds.generator("attack") if self.attack is not None else None
                ),
                network=self.build_network(),
                codec=self.build_codec(),
                faults=self._resolved_faults,
            )
        return self._cluster

    def build_shard_specs(self) -> list[WorkerShardSpec]:
        """Stage 2 (multiprocess variant): picklable worker-shard recipes.

        The honest cohort is split into ``num_shards`` contiguous slices
        (``None`` means process-per-worker); each spec carries the data,
        hyperparameters and the experiment's *root seed*, from which the
        shard process re-derives the exact per-worker seed streams that
        :meth:`build_workers` would use — path-addressing makes the two
        constructions interchangeable.
        """
        datasets = self.build_data()
        worker_momentum = self.momentum if self.momentum_at == "worker" else 0.0
        num_shards = self.num_honest if self.num_shards is None else self.num_shards
        num_shards = min(num_shards, self.num_honest)
        base, extra = divmod(self.num_honest, num_shards)
        codec = self.build_codec()
        specs = []
        start = 0
        for shard_id in range(num_shards):
            size = base + (1 if shard_id < extra else 0)
            ids = tuple(range(start, start + size))
            specs.append(
                WorkerShardSpec(
                    shard_id=shard_id,
                    worker_ids=ids,
                    model=self.model,
                    datasets=tuple(datasets[index] for index in ids),
                    batch_size=self.batch_size,
                    root_seed=self.seed,
                    g_max=self.g_max,
                    mechanism=self.mechanism,
                    clip_mode=self.clip_mode,
                    momentum=worker_momentum,
                    codec=codec,
                )
            )
            start += size
        return specs

    def build_multiprocess_cluster(self) -> MultiprocessCluster:
        """Stage 4 (multiprocess variant): the chief-side cluster runtime.

        Wires the same server, adversary and network objects as
        :meth:`build_cluster` — the aggregation half of every round is
        chief-local and shared with the in-process path — around worker
        shards described by :meth:`build_shard_specs`.  The returned
        cluster is a context manager; callers own its lifecycle
        (:meth:`run` wraps it in ``with`` so shard processes and the
        shared-memory segment are released on any exit, including
        SIGINT).
        """
        if self._mp_cluster is None:
            self._mp_cluster = MultiprocessCluster(
                server=self.build_server(),
                shard_specs=self.build_shard_specs(),
                num_byzantine=self.num_byzantine,
                attack=self.attack,
                attack_rng=(
                    self.seeds.generator("attack") if self.attack is not None else None
                ),
                network=self.build_network(),
                codec=self.build_codec(),
                round_timeout=self.round_timeout,
                faults=self._resolved_faults,
            )
        return self._mp_cluster

    def build_simulation(self):
        """Stage 4 (event-driven variant): the discrete-event simulator.

        Wires the same workers, adversary, network and server as
        :meth:`build_cluster`, but under the
        :class:`repro.simulation.engine.ClusterSimulator` with this
        experiment's server policy, latency model and participation
        sampler.  The simulator's private streams live under the seed
        tree's ``"simulation"`` subtree, so enabling simulation never
        perturbs the training streams — which is what keeps the
        zero-latency sync policy bit-identical to :meth:`run`.
        """
        if self._simulator is None:
            from repro.simulation.engine import ClusterSimulator
            from repro.simulation.latency import ConstantLatency, LatencyModel
            from repro.simulation.participation import make_participation
            from repro.simulation.policies import ServerPolicy, SyncPolicy

            def resolve(family, spec, kwargs, default_cls, base_cls):
                if spec is None:
                    return default_cls(**kwargs)
                if isinstance(spec, (str, dict)):
                    name, spec_kwargs = ComponentRegistry.parse_spec(spec)
                    return REGISTRY.build(
                        family, {"name": name, **{**kwargs, **spec_kwargs}}
                    )
                if isinstance(spec, base_cls):
                    return spec
                raise ConfigurationError(
                    f"{family} must be a name, spec or {base_cls.__name__}, "
                    f"got {type(spec).__name__}"
                )

            policy = resolve(
                "policy", self.policy_spec, self.policy_kwargs, SyncPolicy, ServerPolicy
            )
            latency = resolve(
                "latency",
                self.latency_spec,
                self.latency_kwargs,
                ConstantLatency,
                LatencyModel,
            )
            self._simulator = ClusterSimulator(
                server=self.build_server(),
                honest_workers=self.build_workers(),
                num_byzantine=self.num_byzantine,
                attack=self.attack,
                attack_rng=(
                    self.seeds.generator("attack") if self.attack is not None else None
                ),
                network=self.build_network(),
                codec=self.build_codec(),
                policy=policy,
                latency=latency,
                participation=make_participation(
                    self.participation_kind, self.participation_rate
                ),
                seeds=self.seeds.child("simulation"),
                faults=self._resolved_faults,
            )
        return self._simulator

    def reset(self) -> None:
        """Drop all built stages; the next build starts fresh.

        Seed streams are path-addressed, so a rebuilt experiment
        reproduces the original bit for bit.
        """
        self._worker_datasets = None
        self._workers = None
        self._server = None
        self._network = None
        self._codec = None
        self._cluster = None
        self._mp_cluster = None
        self._simulator = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    @contextmanager
    def _telemetry_run(self, mode: str):
        """Run-scoped telemetry handle (or ``None`` when disabled).

        Emits ``run_start``/``run_end`` around the body.  A path spec
        builds a fresh run-owned :class:`~repro.telemetry.Telemetry`
        writing one JSONL trace, closed on exit; a caller-provided
        instance keeps its sinks open (flushed only), so one handle can
        observe several runs or feed custom sinks.
        """
        spec = self.telemetry
        if spec is None:
            yield None
            return
        from repro.telemetry import JsonlSink, Telemetry

        if isinstance(spec, Telemetry):
            handle, owned = spec, False
        else:
            handle, owned = Telemetry(sinks=[JsonlSink(spec)]), True
        handle.open_run(
            mode=mode,
            gar=self.gar.name,
            attack=self.attack.name if self.attack is not None else None,
            n=self.n,
            f=self.f,
            num_steps=self.num_steps,
            seed=self.seed,
            backend=self.backend,
            epsilon=self.epsilon,
        )
        try:
            yield handle
        finally:
            handle.close_run()
            if owned:
                handle.close()
            else:
                handle.flush()

    def run(self, callbacks: Iterable[Callback] = ()) -> TrainingResult:
        """Final stage: run the training loop and package the result.

        ``callbacks`` are appended after the experiment-level ones.  If
        the cached stages have already been stepped (a previous
        :meth:`run` or :meth:`simulate`), everything is rebuilt first so
        repeated runs are independent and identical.
        """
        if self._server is not None and self._server.step_count > 0:
            self.reset()
        all_callbacks = CallbackList([*self.callbacks, *callbacks])
        if self.test_dataset is not None:
            all_callbacks.append(
                AccuracyCallback(self.test_dataset, eval_every=self.eval_every)
            )
        with self._telemetry_run("train") as telemetry:
            if self.backend == "multiprocess":
                cluster = self.build_multiprocess_cluster()
                # Installed before the context manager starts the
                # runtime: shard processes are launched with the
                # telemetry queue.
                cluster.telemetry = telemetry
                loop = TrainingLoop(
                    cluster=cluster,
                    model=self.model,
                    history=TrainingHistory(),
                    callbacks=all_callbacks,
                )
                # The context manager guarantees shard teardown and
                # shared-memory release on every exit path (including
                # KeyboardInterrupt); the server keeps the final parameters.
                with cluster:
                    state = loop.run(self.num_steps)
                departed = cluster.departed or None
            else:
                cluster = self.build_cluster()
                cluster.telemetry = telemetry
                loop = TrainingLoop(
                    cluster=cluster,
                    model=self.model,
                    history=TrainingHistory(),
                    callbacks=all_callbacks,
                    checkpoint=self.checkpoint,
                    checkpoint_every=self.checkpoint_every,
                )
                state = loop.run(self.num_steps)
                departed = None
            privacy = privacy_report(
                self.mechanism, self.epsilon, self.delta, self.num_steps
            )
            if telemetry is not None and privacy is not None:
                telemetry.gauge("privacy.epsilon_spent", privacy.basic.epsilon)
        return TrainingResult(
            history=state.history,
            final_parameters=cluster.parameters,
            privacy=privacy,
            config=self.describe(),
            departed=departed,
            bytes_on_wire=(
                cluster.bytes_on_wire_total if cluster.codec is not None else None
            ),
        )

    def resume(self, callbacks: Iterable[Callback] = ()) -> TrainingResult:
        """Restore this experiment's checkpoint and finish the run.

        Build the experiment exactly as :meth:`run` would (same
        arguments, same seed), then let
        :meth:`repro.pipeline.loop.TrainingLoop.resume` restore every
        parameter, momentum buffer and RNG stream from the snapshot at
        ``checkpoint`` and execute the remaining rounds.  The completed
        history and final parameters are bit-identical to an
        uninterrupted :meth:`run` (the differential suite pins this).
        """
        if self.checkpoint is None:
            raise ConfigurationError("resume() requires checkpoint=")
        if self._server is not None and self._server.step_count > 0:
            self.reset()
        all_callbacks = CallbackList([*self.callbacks, *callbacks])
        if self.test_dataset is not None:
            all_callbacks.append(
                AccuracyCallback(self.test_dataset, eval_every=self.eval_every)
            )
        with self._telemetry_run("resume") as telemetry:
            cluster = self.build_cluster()
            cluster.telemetry = telemetry
            loop = TrainingLoop(
                cluster=cluster,
                model=self.model,
                history=TrainingHistory(),
                callbacks=all_callbacks,
                checkpoint=self.checkpoint,
                checkpoint_every=self.checkpoint_every,
            )
            state = loop.resume(self.num_steps)
            privacy = privacy_report(
                self.mechanism, self.epsilon, self.delta, self.num_steps
            )
            if telemetry is not None and privacy is not None:
                telemetry.gauge("privacy.epsilon_spent", privacy.basic.epsilon)
        return TrainingResult(
            history=state.history,
            final_parameters=cluster.parameters,
            privacy=privacy,
            config=self.describe(),
            departed=None,
            bytes_on_wire=(
                cluster.bytes_on_wire_total if cluster.codec is not None else None
            ),
        )

    def simulate(self, callbacks: Iterable[Callback] = ()):
        """Run the experiment on the discrete-event simulator.

        The event-driven twin of :meth:`run`: same components, same
        callbacks surface, but executed by
        :class:`repro.simulation.engine.ClusterSimulator` under this
        experiment's policy/latency/participation configuration.
        ``num_steps`` counts *server updates* (rounds for the barrier
        policies, arrivals for the async policy).  Returns a
        :class:`repro.simulation.run.SimulationResult` whose
        ``per_worker_privacy`` reports are amplified by each worker's
        realized participation rate.

        With the default sync policy at zero latency and full
        participation this reproduces :meth:`run` bit for bit (the
        golden-trace suite enforces it).
        """
        from repro.pipeline.results import amplified_privacy_report
        from repro.simulation.run import SimulationLoop, SimulationResult

        if self._server is not None and self._server.step_count > 0:
            self.reset()
        simulator = self.build_simulation()
        all_callbacks = CallbackList([*self.callbacks, *callbacks])
        if self.test_dataset is not None:
            all_callbacks.append(
                AccuracyCallback(self.test_dataset, eval_every=self.eval_every)
            )
        with self._telemetry_run("simulate") as telemetry:
            simulator.telemetry = telemetry
            loop = SimulationLoop(
                simulator=simulator,
                model=self.model,
                history=TrainingHistory(),
                callbacks=all_callbacks,
            )
            state: LoopState = loop.run(self.num_steps)
            privacy = privacy_report(
                self.mechanism, self.epsilon, self.delta, self.num_steps
            )
            if telemetry is not None and privacy is not None:
                telemetry.gauge("privacy.epsilon_spent", privacy.basic.epsilon)
        rates = simulator.participation_rates
        per_worker = None
        if self.mechanism is not None and self.epsilon is not None:
            if simulator.policy.barrier:
                # Barrier policies: each sampled round invokes the
                # mechanism with probability q, so the amplified
                # per-round budget composes over the sampled rounds.
                rounds = max(1, simulator.sampling_round_count)
                per_worker = {
                    worker: amplified_privacy_report(
                        self.mechanism, self.epsilon, self.delta, rounds, rate
                    )
                    for worker, rate in rates.items()
                }
            else:
                # Non-barrier policies have no per-round sampling to
                # amplify over; compose unamplified over each worker's
                # actual mechanism invocations (gradient computations).
                counts = simulator.computation_counts
                per_worker = {
                    worker: amplified_privacy_report(
                        self.mechanism,
                        self.epsilon,
                        self.delta,
                        max(1, int(counts[worker])),
                        1.0 if counts[worker] else 0.0,
                    )
                    for worker in range(simulator.num_honest)
                }
        config = self.describe()
        config.update(
            {
                "policy": simulator.policy.name,
                "latency": getattr(self.latency_spec, "name", self.latency_spec),
                "participation_rate": self.participation_rate,
                "participation_kind": self.participation_kind,
            }
        )
        return SimulationResult(
            history=state.history,
            final_parameters=simulator.parameters,
            privacy=privacy,
            per_worker_privacy=per_worker,
            participation_rates=rates,
            virtual_time=simulator.clock,
            rounds=simulator.round_count,
            policy_stats=simulator.stats(),
            config=config,
            bytes_on_wire=(
                simulator.bytes_on_wire_total if simulator.codec is not None else None
            ),
        )

    def describe(self) -> dict:
        """The configuration echo stored on every :class:`TrainingResult`."""
        return {
            "num_steps": self.num_steps,
            "n": self.n,
            "f": self.f,
            "num_byzantine": self.num_byzantine,
            "gar": self.gar.name,
            "attack": self.attack.name if self.attack is not None else None,
            "batch_size": self.batch_size,
            "g_max": self.g_max,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "noise_kind": self._noise_kind_name if self.epsilon is not None else None,
            "momentum": self.momentum,
            "momentum_at": self.momentum_at,
            "clip_mode": self.clip_mode,
            "drop_probability": self.drop_probability,
            "data_distribution": self.data_distribution,
            "seed": self.seed,
            "model_dimension": self.model.dimension,
            "backend": self.backend,
            "codec": self._codec_name(),
            "faults": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
        }

    def _codec_name(self) -> str | None:
        """The configured codec's registry name (``None`` when raw)."""
        if self.codec_spec is None:
            return None
        if isinstance(self.codec_spec, (str, dict)):
            return ComponentRegistry.parse_spec(self.codec_spec)[0]
        return getattr(self.codec_spec, "name", type(self.codec_spec).__name__)

    def __repr__(self) -> str:
        dp = f"epsilon={self.epsilon}" if self.epsilon is not None else "no-DP"
        return (
            f"Experiment(gar={self.gar.name!r}, n={self.n}, f={self.f}, "
            f"attack={self.attack.name if self.attack else None!r}, {dp}, "
            f"num_steps={self.num_steps}, seed={self.seed})"
        )
