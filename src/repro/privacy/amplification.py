"""Privacy amplification by subsampling.

When each step's batch is a uniform random subsample of rate
``q = b / N`` from a worker's local dataset, an ``(epsilon, delta)``-DP
mechanism on the batch is

.. math::

    (\\log(1 + q (e^{\\epsilon} - 1)),\\; q \\delta)\\text{-DP}

with respect to the full local dataset (Balle, Barthe & Gaboardi 2018;
the paper's Section 7 points to amplification techniques as a future
direction — this module lets the benchmarks quantify how much
amplification buys).

The same bound applies to *partial participation*: a worker that joins
each round independently with probability ``q`` releases a subsampled
view of its update stream, so its per-round budget amplifies by the
identical formula.  :func:`amplify_by_rate` exposes the bound directly
in terms of the rate, which the event-driven simulator
(:mod:`repro.simulation`) feeds with each worker's *realized*
participation rate to produce amplified per-worker
:class:`~repro.pipeline.results.PrivacyReport` entries.
"""

from __future__ import annotations

import math

from repro.exceptions import PrivacyError
from repro.privacy.accountants import PrivacySpend

__all__ = ["amplify_by_rate", "amplify_by_subsampling"]


def amplify_by_rate(epsilon: float, delta: float, rate: float) -> PrivacySpend:
    """Amplified budget for an ``(epsilon, delta)`` mechanism sampled at ``rate``.

    ``rate`` is the subsampling probability ``q`` in ``(0, 1]``; a rate
    of exactly 1 returns the input budget unchanged (no subsampling, no
    amplification — bit-exact identity, not just mathematical).
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if not 0 <= delta < 1:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    if not 0.0 < rate <= 1.0:
        raise PrivacyError(f"rate must be in (0, 1], got {rate}")
    if rate == 1.0:
        return PrivacySpend(epsilon=float(epsilon), delta=float(delta))
    amplified_epsilon = math.log(1.0 + rate * (math.exp(epsilon) - 1.0))
    return PrivacySpend(epsilon=amplified_epsilon, delta=rate * delta)


def amplify_by_subsampling(
    epsilon: float, delta: float, batch_size: int, dataset_size: int
) -> PrivacySpend:
    """Amplified budget for a subsampled ``(epsilon, delta)`` mechanism.

    Parameters
    ----------
    epsilon, delta:
        The mechanism's guarantee on the batch.
    batch_size, dataset_size:
        Define the sampling rate ``q = batch_size / dataset_size``;
        requires ``batch_size <= dataset_size``.
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if not 0 <= delta < 1:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    if batch_size < 1:
        raise PrivacyError(f"batch_size must be >= 1, got {batch_size}")
    if dataset_size < batch_size:
        raise PrivacyError(
            f"dataset_size ({dataset_size}) must be >= batch_size ({batch_size})"
        )
    return amplify_by_rate(epsilon, delta, batch_size / dataset_size)
