"""Privacy amplification by subsampling.

When each step's batch is a uniform random subsample of rate
``q = b / N`` from a worker's local dataset, an ``(epsilon, delta)``-DP
mechanism on the batch is

.. math::

    (\\log(1 + q (e^{\\epsilon} - 1)),\\; q \\delta)\\text{-DP}

with respect to the full local dataset (Balle, Barthe & Gaboardi 2018;
the paper's Section 7 points to amplification techniques as a future
direction — this module lets the benchmarks quantify how much
amplification buys).
"""

from __future__ import annotations

import math

from repro.exceptions import PrivacyError
from repro.privacy.accountants import PrivacySpend

__all__ = ["amplify_by_subsampling"]


def amplify_by_subsampling(
    epsilon: float, delta: float, batch_size: int, dataset_size: int
) -> PrivacySpend:
    """Amplified budget for a subsampled ``(epsilon, delta)`` mechanism.

    Parameters
    ----------
    epsilon, delta:
        The mechanism's guarantee on the batch.
    batch_size, dataset_size:
        Define the sampling rate ``q = batch_size / dataset_size``;
        requires ``batch_size <= dataset_size``.
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if not 0 <= delta < 1:
        raise PrivacyError(f"delta must be in [0, 1), got {delta}")
    if batch_size < 1:
        raise PrivacyError(f"batch_size must be >= 1, got {batch_size}")
    if dataset_size < batch_size:
        raise PrivacyError(
            f"dataset_size ({dataset_size}) must be >= batch_size ({batch_size})"
        )
    rate = batch_size / dataset_size
    amplified_epsilon = math.log(1.0 + rate * (math.exp(epsilon) - 1.0))
    return PrivacySpend(epsilon=amplified_epsilon, delta=rate * delta)
