"""L2-norm gradient clipping.

Clipping enforces Assumption 1 (bounded gradient norm ``G_max``), which
the DP noise calibration requires.  The paper clips the mini-batch
averaged gradient ("stochastic gradients are clipped to a maximum
l2-norm of G_max", Section 5.1); per-example clipping is also provided
because it is the variant under which the ``2 G_max / b`` sensitivity
bound holds without further assumptions.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PrivacyError
from repro.typing import Vector

__all__ = ["clip_by_l2_norm", "clip_per_example"]


def clip_by_l2_norm(vector: Vector, max_norm: float) -> Vector:
    """Scale ``vector`` down so its L2 norm is at most ``max_norm``.

    Returns the input unchanged (not a copy) when already within the
    bound; otherwise returns ``vector * max_norm / ||vector||``.
    """
    if max_norm <= 0:
        raise PrivacyError(f"max_norm must be positive, got {max_norm}")
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    if norm <= max_norm or norm == 0.0:
        return vector
    return vector * (max_norm / norm)


def clip_per_example(gradients: np.ndarray, max_norm: float) -> np.ndarray:
    """Clip each row of an ``(batch, d)`` matrix to L2 norm ``max_norm``.

    Vectorised: computes all row norms at once and rescales only the
    rows that exceed the bound.
    """
    if max_norm <= 0:
        raise PrivacyError(f"max_norm must be positive, got {max_norm}")
    gradients = np.asarray(gradients, dtype=np.float64)
    if gradients.ndim != 2:
        raise ValueError(f"gradients must be 2-D (batch, d), got shape {gradients.shape}")
    norms = np.linalg.norm(gradients, axis=1)
    # Avoid division by zero on all-zero rows; their scale stays 1.
    safe_norms = np.where(norms > 0.0, norms, 1.0)
    scales = np.minimum(1.0, max_norm / safe_norms)
    return gradients * scales[:, None]
