"""Privacy composition accountants.

The paper analyses a *per-step* budget ``(epsilon, delta)`` and notes
(Section 2.3) that the overall training budget follows from
composition: linearly under the classical theorem, or more tightly via
advanced composition or moments accounting.  All three are implemented:

* :class:`BasicCompositionAccountant` — Dwork & Roth Thm 3.16:
  ``(sum eps_i, sum delta_i)``.
* :class:`AdvancedCompositionAccountant` — Dwork & Roth Thm 3.20: for
  ``k``-fold composition of an ``(eps, delta)`` mechanism with slack
  ``delta'``, the total is
  ``(eps sqrt(2 k ln(1/delta')) + k eps (e^eps - 1), k delta + delta')``.
* :class:`RDPAccountant` — moments-accountant style tracking for the
  Gaussian mechanism: a mechanism with noise multiplier ``sigma_tilde``
  has Renyi-DP ``eps_RDP(a) = a / (2 sigma_tilde^2)``; RDP composes
  additively, and converts to ``(eps, delta)``-DP via Mironov's bound
  ``eps = eps_RDP(a) + log(1/delta)/(a - 1)`` minimised over orders.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.exceptions import PrivacyError

__all__ = [
    "PrivacySpend",
    "BasicCompositionAccountant",
    "AdvancedCompositionAccountant",
    "RDPAccountant",
    "DEFAULT_RDP_ORDERS",
]


class PrivacySpend(NamedTuple):
    """An ``(epsilon, delta)`` pair."""

    epsilon: float
    delta: float


def _validate_per_step(epsilon: float, delta: float) -> None:
    if epsilon <= 0:
        raise PrivacyError(f"per-step epsilon must be positive, got {epsilon}")
    if not 0 <= delta < 1:
        raise PrivacyError(f"per-step delta must be in [0, 1), got {delta}")


def _validate_steps(steps: int) -> None:
    if steps < 1:
        raise PrivacyError(f"steps must be >= 1, got {steps}")


class BasicCompositionAccountant:
    """Classical (linear) composition."""

    def compose(self, epsilon: float, delta: float, steps: int) -> PrivacySpend:
        """Total budget after ``steps`` invocations of an (eps, delta) mechanism."""
        _validate_per_step(epsilon, delta)
        _validate_steps(steps)
        return PrivacySpend(epsilon=steps * epsilon, delta=steps * delta)

    def max_steps(self, epsilon: float, delta: float, epsilon_budget: float) -> int:
        """Largest ``T`` keeping the total epsilon within ``epsilon_budget``."""
        _validate_per_step(epsilon, delta)
        if epsilon_budget <= 0:
            raise PrivacyError(f"epsilon_budget must be positive, got {epsilon_budget}")
        return max(0, int(math.floor(epsilon_budget / epsilon)))


class AdvancedCompositionAccountant:
    """Strong composition (Dwork & Roth, Theorem 3.20).

    Parameters
    ----------
    slack_delta:
        The extra failure probability ``delta'`` the theorem grants in
        exchange for the ``sqrt(k)`` epsilon growth.
    """

    def __init__(self, slack_delta: float = 1e-6):
        if not 0 < slack_delta < 1:
            raise PrivacyError(f"slack_delta must be in (0, 1), got {slack_delta}")
        self._slack_delta = float(slack_delta)

    @property
    def slack_delta(self) -> float:
        """The composition slack ``delta'``."""
        return self._slack_delta

    def compose(self, epsilon: float, delta: float, steps: int) -> PrivacySpend:
        """Total budget after ``steps`` invocations of an (eps, delta) mechanism."""
        _validate_per_step(epsilon, delta)
        _validate_steps(steps)
        total_epsilon = epsilon * math.sqrt(
            2.0 * steps * math.log(1.0 / self._slack_delta)
        ) + steps * epsilon * (math.exp(epsilon) - 1.0)
        total_delta = steps * delta + self._slack_delta
        return PrivacySpend(epsilon=total_epsilon, delta=total_delta)


# Renyi orders used when minimising the conversion bound; the classic
# Opacus/TF-Privacy grid.
DEFAULT_RDP_ORDERS: tuple[float, ...] = tuple(
    [1.0 + x / 10.0 for x in range(1, 100)] + list(range(11, 64)) + [128.0, 256.0, 512.0]
)


class RDPAccountant:
    """Moments-accountant style tracking for Gaussian mechanisms.

    Track steps with :meth:`step_gaussian`, then query
    :meth:`get_privacy_spent`.
    """

    def __init__(self, orders: tuple[float, ...] = DEFAULT_RDP_ORDERS):
        for order in orders:
            if order <= 1.0:
                raise PrivacyError(f"RDP orders must exceed 1, got {order}")
        if not orders:
            raise PrivacyError("orders must be non-empty")
        self._orders = tuple(float(order) for order in orders)
        self._rdp = [0.0 for _ in self._orders]

    @property
    def orders(self) -> tuple[float, ...]:
        """The Renyi orders tracked."""
        return self._orders

    def step_gaussian(self, noise_multiplier: float, steps: int = 1) -> None:
        """Account for ``steps`` Gaussian queries with the given multiplier.

        ``noise_multiplier`` is ``sigma / sensitivity``; the Gaussian
        mechanism's RDP at order ``a`` is ``a / (2 multiplier^2)``.
        """
        if noise_multiplier <= 0:
            raise PrivacyError(
                f"noise_multiplier must be positive, got {noise_multiplier}"
            )
        _validate_steps(steps)
        for index, order in enumerate(self._orders):
            self._rdp[index] += steps * order / (2.0 * noise_multiplier**2)

    def get_privacy_spent(self, delta: float) -> PrivacySpend:
        """Best ``(epsilon, delta)`` conversion over all tracked orders."""
        if not 0 < delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {delta}")
        if all(value == 0.0 for value in self._rdp):
            return PrivacySpend(epsilon=0.0, delta=delta)
        best = math.inf
        log_inverse_delta = math.log(1.0 / delta)
        for order, rdp in zip(self._orders, self._rdp):
            candidate = rdp + log_inverse_delta / (order - 1.0)
            best = min(best, candidate)
        return PrivacySpend(epsilon=best, delta=delta)

    def reset(self) -> None:
        """Forget all tracked steps."""
        self._rdp = [0.0 for _ in self._orders]
