"""Sensitivity of the batch-mean gradient map.

Section 2.3 of the paper: with batches adjacent when they differ in at
most one sample, and per-sample gradients bounded in L2 norm by
``G_max``, the map

.. math::

    h : \\xi \\mapsto \\frac{1}{b} \\sum_{j=1}^{b} \\nabla Q(w, x_j)

has L2 sensitivity at most ``2 G_max / b``: swapping one sample changes
one summand, and two vectors of norm at most ``G_max`` differ by at
most ``2 G_max``, scaled by ``1/b``.

The L1 sensitivity (needed by the Laplace mechanism) follows from the
norm inequality ``||v||_1 <= sqrt(d) ||v||_2``.
"""

from __future__ import annotations

import math

from repro.exceptions import PrivacyError

__all__ = ["batch_mean_l2_sensitivity", "batch_mean_l1_sensitivity"]


def _validate(g_max: float, batch_size: int) -> None:
    if g_max <= 0:
        raise PrivacyError(f"g_max must be positive, got {g_max}")
    if batch_size < 1:
        raise PrivacyError(f"batch_size must be >= 1, got {batch_size}")


def batch_mean_l2_sensitivity(g_max: float, batch_size: int) -> float:
    """L2 sensitivity ``2 G_max / b`` of the batch-mean gradient."""
    _validate(g_max, batch_size)
    return 2.0 * g_max / batch_size


def batch_mean_l1_sensitivity(g_max: float, batch_size: int, dimension: int) -> float:
    """L1 sensitivity ``2 sqrt(d) G_max / b`` of the batch-mean gradient."""
    _validate(g_max, batch_size)
    if dimension < 1:
        raise PrivacyError(f"dimension must be >= 1, got {dimension}")
    return 2.0 * math.sqrt(dimension) * g_max / batch_size
