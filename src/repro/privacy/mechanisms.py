"""Noise-injection mechanisms for local differential privacy.

The Gaussian mechanism implements Eq. (6) of the paper exactly:

.. math::

    M(\\xi) = h(\\xi) + y, \\quad y \\sim N(0, s^2 I_d), \\quad
    s = \\frac{\\Delta_2 h \\sqrt{2 \\log(1.25/\\delta)}}{\\epsilon}

which with ``Delta_2 h = 2 G_max / b`` gives the paper's
``s = 2 G_max sqrt(2 log(1.25/delta)) / (b epsilon)``.  It is
``(epsilon, delta)``-DP for ``(epsilon, delta) in (0, 1)^2``
(Dwork & Roth 2014, Appendix A).

The Laplace mechanism (Remark 3's alternative) adds per-coordinate
``Laplace(Delta_1 h / epsilon)`` noise and is pure ``epsilon``-DP.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import PrivacyError
from repro.privacy.sensitivity import (
    batch_mean_l1_sensitivity,
    batch_mean_l2_sensitivity,
)
from repro.typing import Vector

__all__ = ["NoiseMechanism", "GaussianMechanism", "LaplaceMechanism"]


class NoiseMechanism(ABC):
    """A local randomizer: adds calibrated noise to a gradient vector."""

    @property
    @abstractmethod
    def epsilon(self) -> float:
        """Per-invocation privacy parameter ``epsilon``."""

    @property
    @abstractmethod
    def delta(self) -> float:
        """Per-invocation failure parameter ``delta`` (0 for pure DP)."""

    @property
    @abstractmethod
    def per_coordinate_variance(self) -> float:
        """Variance of the injected noise on each coordinate."""

    @abstractmethod
    def sample_noise(self, dimension: int, rng: np.random.Generator) -> Vector:
        """Draw a noise vector of the given dimension."""

    def sample_noise_block(
        self, rounds: int, dimension: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw a ``(rounds, dimension)`` block of noise in one call.

        Bit-identical to ``rounds`` sequential :meth:`sample_noise`
        calls on the same generator: row ``r`` of the block equals the
        ``r``-th sequential draw, and the generator is left in the same
        state either way.  The fused round engine pre-draws each
        worker's whole block of per-round noise up front, which is only
        sound because of this equivalence (pinned by the hypothesis
        property suite).

        The base implementation literally performs the sequential
        draws, so any custom mechanism is block-safe by construction;
        :class:`GaussianMechanism` and :class:`LaplaceMechanism`
        override it with a single vectorized draw, which is equivalent
        because NumPy ``Generator`` streams are consumed value-by-value
        in C order — an ``(R, d)`` fill reads the identical stream as
        ``R`` sequential ``(d,)`` fills.
        """
        if rounds < 1:
            raise PrivacyError(f"rounds must be >= 1, got {rounds}")
        return np.stack(
            [self.sample_noise(dimension, rng) for _ in range(rounds)]
        )

    def privatize(self, gradient: Vector, rng: np.random.Generator) -> Vector:
        """Return ``gradient + noise``; does not modify the input."""
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.ndim != 1:
            raise ValueError(f"gradient must be 1-D, got shape {gradient.shape}")
        return gradient + self.sample_noise(gradient.shape[0], rng)

    def total_noise_variance(self, dimension: int) -> float:
        """``E ||y||^2 = d * (per-coordinate variance)``.

        This is the quantity that enters the numerator of the VN ratio
        in Eq. (8).
        """
        if dimension < 1:
            raise PrivacyError(f"dimension must be >= 1, got {dimension}")
        return dimension * self.per_coordinate_variance


class GaussianMechanism(NoiseMechanism):
    """The Gaussian mechanism of Section 2.3.

    Parameters
    ----------
    epsilon, delta:
        Per-step privacy budget; the classical calibration requires
        both in ``(0, 1)`` (Remark 3), enforced here.
    l2_sensitivity:
        L2 sensitivity ``Delta_2 h`` of the query being privatised.
    """

    def __init__(self, epsilon: float, delta: float, l2_sensitivity: float):
        if not 0.0 < epsilon < 1.0:
            raise PrivacyError(
                f"the Gaussian mechanism requires epsilon in (0, 1), got {epsilon}"
            )
        if not 0.0 < delta < 1.0:
            raise PrivacyError(
                f"the Gaussian mechanism requires delta in (0, 1), got {delta}"
            )
        if l2_sensitivity <= 0:
            raise PrivacyError(f"l2_sensitivity must be positive, got {l2_sensitivity}")
        self._epsilon = float(epsilon)
        self._delta = float(delta)
        self._sensitivity = float(l2_sensitivity)
        self._sigma = (
            self._sensitivity * math.sqrt(2.0 * math.log(1.25 / self._delta)) / self._epsilon
        )

    @classmethod
    def for_clipped_gradients(
        cls, epsilon: float, delta: float, g_max: float, batch_size: int
    ) -> "GaussianMechanism":
        """Calibrate for the batch-mean of ``G_max``-clipped gradients.

        Uses the ``2 G_max / b`` sensitivity of Section 2.3, yielding
        the paper's noise scale
        ``s = 2 G_max sqrt(2 log(1.25/delta)) / (b epsilon)``.
        """
        return cls(epsilon, delta, batch_mean_l2_sensitivity(g_max, batch_size))

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def l2_sensitivity(self) -> float:
        """The calibrated query sensitivity."""
        return self._sensitivity

    @property
    def sigma(self) -> float:
        """Per-coordinate noise standard deviation ``s``."""
        return self._sigma

    @property
    def noise_multiplier(self) -> float:
        """``sigma / sensitivity`` — the RDP accountant's parameter."""
        return self._sigma / self._sensitivity

    @property
    def per_coordinate_variance(self) -> float:
        return self._sigma**2

    def sample_noise(self, dimension: int, rng: np.random.Generator) -> Vector:
        if dimension < 1:
            raise PrivacyError(f"dimension must be >= 1, got {dimension}")
        return self._sigma * rng.standard_normal(dimension)

    def sample_noise_block(
        self, rounds: int, dimension: int, rng: np.random.Generator
    ) -> np.ndarray:
        # One (R, d) ziggurat fill consumes the identical stream as R
        # sequential (d,) fills; IEEE-754 multiplication is commutative,
        # so the in-place scale matches ``sigma * draw`` bit for bit.
        if rounds < 1:
            raise PrivacyError(f"rounds must be >= 1, got {rounds}")
        if dimension < 1:
            raise PrivacyError(f"dimension must be >= 1, got {dimension}")
        block = rng.standard_normal((rounds, dimension))
        block *= self._sigma
        return block

    def __repr__(self) -> str:
        return (
            f"GaussianMechanism(epsilon={self._epsilon}, delta={self._delta}, "
            f"l2_sensitivity={self._sensitivity:.3g}, sigma={self._sigma:.3g})"
        )


class LaplaceMechanism(NoiseMechanism):
    """Per-coordinate Laplace noise: pure ``epsilon``-DP.

    The scale is ``b = Delta_1 h / epsilon`` per coordinate, giving
    per-coordinate variance ``2 b^2``.
    """

    def __init__(self, epsilon: float, l1_sensitivity: float):
        if epsilon <= 0.0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if l1_sensitivity <= 0:
            raise PrivacyError(f"l1_sensitivity must be positive, got {l1_sensitivity}")
        self._epsilon = float(epsilon)
        self._sensitivity = float(l1_sensitivity)
        self._scale = self._sensitivity / self._epsilon

    @classmethod
    def for_clipped_gradients(
        cls, epsilon: float, g_max: float, batch_size: int, dimension: int
    ) -> "LaplaceMechanism":
        """Calibrate via the L1 sensitivity ``2 sqrt(d) G_max / b``."""
        return cls(epsilon, batch_mean_l1_sensitivity(g_max, batch_size, dimension))

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def delta(self) -> float:
        return 0.0

    @property
    def l1_sensitivity(self) -> float:
        """The calibrated query sensitivity."""
        return self._sensitivity

    @property
    def scale(self) -> float:
        """Per-coordinate Laplace scale parameter."""
        return self._scale

    @property
    def per_coordinate_variance(self) -> float:
        return 2.0 * self._scale**2

    def sample_noise(self, dimension: int, rng: np.random.Generator) -> Vector:
        if dimension < 1:
            raise PrivacyError(f"dimension must be >= 1, got {dimension}")
        return rng.laplace(loc=0.0, scale=self._scale, size=dimension)

    def sample_noise_block(
        self, rounds: int, dimension: int, rng: np.random.Generator
    ) -> np.ndarray:
        # Inverse-CDF sampling is per-value sequential, so the (R, d)
        # fill reads the same stream as R sequential (d,) fills.
        if rounds < 1:
            raise PrivacyError(f"rounds must be >= 1, got {rounds}")
        if dimension < 1:
            raise PrivacyError(f"dimension must be >= 1, got {dimension}")
        return rng.laplace(loc=0.0, scale=self._scale, size=(rounds, dimension))

    def __repr__(self) -> str:
        return (
            f"LaplaceMechanism(epsilon={self._epsilon}, "
            f"l1_sensitivity={self._sensitivity:.3g}, scale={self._scale:.3g})"
        )
