"""Differential-privacy substrate.

Implements Section 2.3 of the paper from first principles: L2 gradient
clipping, the sensitivity of the batch-mean gradient, the Gaussian
mechanism with the paper's exact calibration

.. math::

    s = \\frac{2 G_{max} \\sqrt{2 \\log(1.25/\\delta)}}{b \\epsilon},

the Laplace alternative mentioned in Remark 3, and composition
accounting (basic, advanced, and RDP/moments style) for end-to-end
budgets over ``T`` steps.
"""

from repro.privacy.accountants import (
    AdvancedCompositionAccountant,
    BasicCompositionAccountant,
    PrivacySpend,
    RDPAccountant,
)
from repro.privacy.amplification import amplify_by_rate, amplify_by_subsampling
from repro.privacy.clipping import clip_by_l2_norm, clip_per_example
from repro.privacy.mechanisms import GaussianMechanism, LaplaceMechanism, NoiseMechanism
from repro.privacy.sensitivity import batch_mean_l1_sensitivity, batch_mean_l2_sensitivity

__all__ = [
    "AdvancedCompositionAccountant",
    "BasicCompositionAccountant",
    "GaussianMechanism",
    "LaplaceMechanism",
    "NoiseMechanism",
    "PrivacySpend",
    "RDPAccountant",
    "amplify_by_rate",
    "amplify_by_subsampling",
    "batch_mean_l1_sensitivity",
    "batch_mean_l2_sensitivity",
    "clip_by_l2_norm",
    "clip_per_example",
]
