"""Experiment configuration.

An :class:`ExperimentConfig` captures one cell of the paper's
experimental grid — the training hyperparameters, the GAR, the attack,
the DP budget — plus the seed list over which it is repeated (the paper
uses seeds 1..5).  Defaults reproduce Section 5.1's setup.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.exceptions import ConfigurationError

__all__ = ["ExperimentConfig", "PAPER_SEEDS"]

#: The paper's "specified seeds (in 1 to 5)".
PAPER_SEEDS: tuple[int, ...] = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experimental cell, repeated over ``seeds``."""

    name: str
    num_steps: int = 1000
    n: int = 11
    f: int = 5
    num_byzantine: int | None = None
    gar: str = "mda"
    attack: str | None = None
    attack_kwargs: tuple[tuple[str, object], ...] = ()
    batch_size: int = 50
    g_max: float = 1e-2
    epsilon: float | None = None
    delta: float = 1e-6
    noise_kind: str = "gaussian"
    learning_rate: float = 2.0
    momentum: float = 0.99
    momentum_at: str = "worker"
    clip_mode: str = "batch"
    drop_probability: float = 0.0
    eval_every: int = 50
    seeds: tuple[int, ...] = PAPER_SEEDS
    # Event-driven simulation knobs (consumed by ``python -m repro
    # simulate`` / :meth:`Experiment.simulate`; the synchronous train
    # path ignores them).  The defaults replay the paper's protocol.
    policy: str = "sync"
    policy_kwargs: tuple[tuple[str, object], ...] = ()
    latency: str | None = None
    latency_kwargs: tuple[tuple[str, object], ...] = ()
    participation_rate: float = 1.0
    participation_kind: str = "poisson"
    # Wire-compression codec (a semantic knob: lossy codecs change what
    # the server aggregates, so — unlike the backend fields below — it
    # IS part of the campaign cell key).
    codec: str | None = None
    codec_kwargs: tuple[tuple[str, object], ...] = ()
    # Execution backend knobs (where the rounds run, not what they
    # compute: the multiprocess backend is bit-identical to in-process,
    # so these fields are excluded from campaign cell keys).
    backend: str = "inprocess"
    num_shards: int | None = None
    round_timeout: float = 30.0
    # Fault-injection plan: a model name ("random") or a full plan dict
    # ({"events": [...], "num_shards": k}).  A semantic knob when set —
    # faulty rounds change what the server aggregates — so it IS part
    # of the campaign cell key (when set; absent/None keeps old keys).
    faults: str | dict | None = None
    faults_kwargs: tuple[tuple[str, object], ...] = ()
    # Checkpointing is run infrastructure (where snapshots land, not
    # what the run computes): excluded from campaign cell keys.
    checkpoint: str | None = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("config name must be non-empty")
        if not self.seeds:
            raise ConfigurationError("config needs at least one seed")
        if self.num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {self.num_steps}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 < self.participation_rate <= 1.0:
            raise ConfigurationError(
                f"participation_rate must be in (0, 1], got {self.participation_rate}"
            )
        if self.backend not in ("inprocess", "multiprocess"):
            raise ConfigurationError(
                f"backend must be 'inprocess' or 'multiprocess', got {self.backend!r}"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.round_timeout <= 0:
            raise ConfigurationError(
                f"round_timeout must be > 0, got {self.round_timeout}"
            )
        if self.faults is not None and not isinstance(self.faults, (str, dict)):
            raise ConfigurationError(
                "faults must be a model name or a plan dict, got "
                f"{type(self.faults).__name__}"
            )
        if self.faults is None and self.faults_kwargs:
            raise ConfigurationError("faults_kwargs require faults")
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.checkpoint is not None and self.backend != "inprocess":
            raise ConfigurationError(
                "checkpoint requires the inprocess backend"
            )

    @property
    def uses_dp(self) -> bool:
        """Whether this cell injects DP noise."""
        return self.epsilon is not None

    @property
    def under_attack(self) -> bool:
        """Whether this cell has active Byzantine workers."""
        if self.attack is None:
            return False
        return self.num_byzantine is None or self.num_byzantine > 0

    def train_kwargs(self, seed: int) -> dict:
        """Keyword arguments for :class:`repro.pipeline.Experiment`.

        (Historically the surface of :func:`repro.distributed.train`;
        the backend keys are an ``Experiment``-only extension and every
        consumer of this method builds an ``Experiment``.)
        """
        return {
            "num_steps": self.num_steps,
            "n": self.n,
            "f": self.f,
            "num_byzantine": self.num_byzantine,
            "gar": self.gar,
            "attack": self.attack,
            "attack_kwargs": dict(self.attack_kwargs) or None,
            "batch_size": self.batch_size,
            "g_max": self.g_max,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "noise_kind": self.noise_kind,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "momentum_at": self.momentum_at,
            "clip_mode": self.clip_mode,
            "drop_probability": self.drop_probability,
            "eval_every": self.eval_every,
            "seed": seed,
            "codec": self.codec,
            "codec_kwargs": dict(self.codec_kwargs) or None,
            "backend": self.backend,
            "num_shards": self.num_shards,
            "round_timeout": self.round_timeout,
            "faults": self.faults,
            "faults_kwargs": dict(self.faults_kwargs) or None,
            "checkpoint": self.checkpoint,
            "checkpoint_every": self.checkpoint_every,
        }

    def simulation_kwargs(self) -> dict:
        """Extra keyword arguments for :class:`repro.pipeline.Experiment`
        that configure the event-driven simulator (policy, latency,
        participation).  Kept out of :meth:`train_kwargs`, whose surface
        is the legacy ``train()`` signature."""
        return {
            "policy": self.policy,
            "policy_kwargs": dict(self.policy_kwargs) or None,
            "latency": self.latency,
            "latency_kwargs": dict(self.latency_kwargs) or None,
            "participation_rate": self.participation_rate,
            "participation_kind": self.participation_kind,
        }

    def with_updates(self, **changes) -> "ExperimentConfig":
        """A copy with some fields replaced (dataclasses.replace wrapper)."""
        payload = asdict(self)
        payload.update(changes)
        return ExperimentConfig(**payload)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (inverse: :meth:`from_dict`)."""
        payload = asdict(self)
        payload["seeds"] = [int(seed) for seed in self.seeds]
        payload["attack_kwargs"] = [list(pair) for pair in self.attack_kwargs]
        payload["policy_kwargs"] = [list(pair) for pair in self.policy_kwargs]
        payload["latency_kwargs"] = [list(pair) for pair in self.latency_kwargs]
        payload["codec_kwargs"] = [list(pair) for pair in self.codec_kwargs]
        payload["faults_kwargs"] = [list(pair) for pair in self.faults_kwargs]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output or hand-written JSON.

        ``attack_kwargs`` may be a mapping (the natural JSON form) or a
        list of ``[key, value]`` pairs; ``seeds`` any integer sequence.
        """
        data = dict(payload)
        unknown = set(data) - {field_.name for field_ in fields(cls)}
        if unknown:
            raise ConfigurationError(
                f"unknown config fields: {', '.join(sorted(unknown))}"
            )
        if "seeds" in data:
            data["seeds"] = tuple(int(seed) for seed in data["seeds"])
        for kwargs_field in (
            "attack_kwargs",
            "policy_kwargs",
            "latency_kwargs",
            "codec_kwargs",
            "faults_kwargs",
        ):
            if kwargs_field not in data:
                continue
            kwargs = data[kwargs_field]
            if kwargs is None:  # JSON null means "no kwargs"
                data[kwargs_field] = ()
            elif isinstance(kwargs, dict):
                data[kwargs_field] = tuple(kwargs.items())
            else:
                data[kwargs_field] = tuple((key, value) for key, value in kwargs)
        return cls(**data)

    def describe(self) -> str:
        """Compact human-readable summary."""
        dp = f"eps={self.epsilon}" if self.uses_dp else "no-DP"
        attack = self.attack if self.attack is not None else "no-attack"
        extras = ""
        if self.policy != "sync" or self.latency is not None or self.participation_rate < 1.0:
            extras = (
                f", policy={self.policy}, latency={self.latency or 'zero'}, "
                f"q={self.participation_rate:g}"
            )
        if self.backend != "inprocess":
            extras += f", backend={self.backend}"
        if self.codec is not None:
            extras += f", codec={self.codec}"
        if self.faults is not None:
            faults = self.faults if isinstance(self.faults, str) else "schedule"
            extras += f", faults={faults}"
        return (
            f"{self.name}: {self.gar} (n={self.n}, f={self.f}), {attack}, "
            f"b={self.batch_size}, {dp}, T={self.num_steps}, "
            f"{len(self.seeds)} seeds{extras}"
        )
