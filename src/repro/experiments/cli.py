"""Command-line interface: regenerate paper artifacts without pytest.

Usage (installed package)::

    python -m repro table1
    python -m repro figure2 --steps 200 --seeds 2
    python -m repro figure4 --output out/fig4.txt
    python -m repro run my_experiments.json --max-workers 4
    python -m repro simulate examples/simulate_async.json --smoke
    python -m repro campaign examples/campaign_paper_grid.json --smoke
    python -m repro campaign examples/campaign_paper_grid.json --report
    python -m repro bench --smoke
    python -m repro run my_experiments.json --telemetry out/trace.jsonl
    python -m repro trace summarize out/trace.jsonl
    python -m repro components
    python -m repro list

Figures print the same ASCII panels + summary tables the benchmark
harness produces; ``--steps``/``--seeds`` trim the grid for quick looks.
``run`` executes arbitrary experiment grids from a JSON config file —
a single :class:`ExperimentConfig` object, a list of them, or
``{"configs": [...], "model": {...}, "data_seed": ...}`` — with every
component resolved through the unified registry.  ``simulate`` runs the
same config format on the discrete-event asynchronous simulator
(:mod:`repro.simulation`), honouring each cell's policy / latency /
participation fields; ``campaign`` expands a scenario-matrix manifest
and runs it against a content-addressed, resumable result store
(:mod:`repro.campaign`); ``components`` lists every registry family and
its registered names.

Exit codes: 0 on success, 1 when runs completed but produced non-finite
losses (divergence), when a fault plan left no honest worker alive
(:class:`~repro.exceptions.DegradedRunError`), or when a campaign
quarantined permanently failing cells, 2 on expected errors (bad files,
invalid configs, unknown components).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.exceptions import DegradedRunError, ReproError
from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURE_BATCH_SIZES, figure_configs
from repro.experiments.io import save_outcomes
from repro.experiments.runner import (
    RunOutcome,
    build_environment,
    phishing_environment,
    run_grid,
    telemetry_path_for,
)
from repro.experiments.tables import format_table1, table1_rows

__all__ = [
    "main",
    "console_main",
    "build_parser",
    "render_figure_text",
    "load_run_file",
    "render_run_summary",
    "render_simulate_summary",
]

FIGURES = tuple(FIGURE_BATCH_SIZES)  # ("figure2", "figure3", "figure4")


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'DP and Byzantine "
        "Resilience in SGD: Do They Add Up?' (PODC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available artifacts")

    table = subparsers.add_parser("table1", help="necessary conditions per GAR")
    table.add_argument("--dimension", type=int, default=69)
    table.add_argument("--batch-size", type=int, default=50)
    table.add_argument("--epsilon", type=float, default=0.2)
    table.add_argument("--delta", type=float, default=1e-6)
    table.add_argument("--n", type=int, default=11)
    table.add_argument("--f", type=int, default=5)
    table.add_argument("--output", type=Path, default=None)

    for name in FIGURES:
        figure = subparsers.add_parser(
            name, help=f"reproduce {name} (b = {FIGURE_BATCH_SIZES[name]})"
        )
        figure.add_argument("--steps", type=int, default=1000)
        figure.add_argument("--seeds", type=int, default=5, help="number of seeds (1..k)")
        figure.add_argument("--output", type=Path, default=None)

    bench = subparsers.add_parser(
        "bench",
        help="benchmark the vectorized GAR kernels (default) or the fused "
        "training engine (--training) against their kept reference paths",
    )
    bench.add_argument(
        "--training",
        action="store_true",
        help="benchmark end-to-end training rounds (fused engine vs the "
        "pre-fusion reference loop) instead of the aggregation kernels",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale subset of the grid (for CI)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per case (best-of)"
    )
    bench.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    bench.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the benchmark JSON (default BENCH_kernels.json, "
        "or BENCH_training.json with --training)",
    )
    bench.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="after running, fail (exit 1) if any cell's speedup regressed "
        "more than the tolerance against this committed baseline JSON",
    )
    bench.add_argument(
        "--check-tolerance",
        type=float,
        default=0.30,
        help="fractional speedup regression allowed by --check (default 0.30)",
    )

    run = subparsers.add_parser(
        "run", help="run experiment configs from a JSON file"
    )
    run.add_argument("config", type=Path, help="JSON config file (cell, list, or grid)")
    run.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="parallelise each cell's seeds over this many processes",
    )
    run.add_argument(
        "--data-seed",
        type=int,
        default=None,
        help="environment data seed (overrides the config file's; default 0)",
    )
    run.add_argument(
        "--backend",
        choices=("inprocess", "multiprocess"),
        default=None,
        help="execution backend for every cell (overrides the config "
        "file's; results are bit-identical either way)",
    )
    run.add_argument(
        "--codec",
        default=None,
        metavar="NAME",
        help="wire-compression codec for every cell (overrides the config "
        "file's \"codec\" key; see `repro components` for names)",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="fault plan for every cell: a model name (e.g. \"random\") or "
        "an inline JSON plan/spec object (overrides the config file's "
        "\"faults\" key)",
    )
    run.add_argument(
        "--save", type=Path, default=None, help="write full outcomes JSON here"
    )
    run.add_argument("--output", type=Path, default=None, help="write the summary here")
    run.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="OUT.JSONL",
        help="write one JSONL trace per run here (multi-cell/multi-seed "
        "invocations derive -{name}/-s{seed} suffixed paths; overrides "
        "the config file's \"telemetry\" key)",
    )

    simulate = subparsers.add_parser(
        "simulate",
        help="run experiment configs on the discrete-event async simulator",
    )
    simulate.add_argument(
        "config", type=Path, help="JSON config file (cell, list, or grid)"
    )
    simulate.add_argument(
        "--smoke",
        action="store_true",
        help="trim every cell to <= 5 steps and 1 seed (for CI)",
    )
    simulate.add_argument(
        "--data-seed",
        type=int,
        default=None,
        help="environment data seed (overrides the config file's; default 0)",
    )
    simulate.add_argument(
        "--output", type=Path, default=None, help="write the summary here"
    )
    simulate.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="OUT.JSONL",
        help="write one JSONL trace per simulated run here (suffixed as "
        "in `run`; overrides the config file's \"telemetry\" key)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run a scenario-matrix manifest against a resumable result store",
    )
    campaign.add_argument("matrix", type=Path, help="JSON scenario-matrix manifest")
    campaign.add_argument(
        "--store",
        type=Path,
        default=Path("campaign-store"),
        help="result store directory (default ./campaign-store)",
    )
    campaign.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="shard pending (cell, seed) runs over this many processes",
    )
    campaign.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="runs claimed per pool worker at once (default: task-count "
        "heuristic; 1 restores per-run persistence granularity)",
    )
    campaign.add_argument(
        "--smoke",
        action="store_true",
        help="trim every cell to <= 5 steps and 1 seed (for CI); smoke "
        "runs use distinct store keys",
    )
    campaign.add_argument(
        "--dry-run",
        action="store_true",
        help="expand the matrix and show the cache join without running",
    )
    campaign.add_argument(
        "--report",
        action="store_true",
        help="only render the report from the store's current contents",
    )
    campaign.add_argument(
        "--output", type=Path, default=None, help="write the report here"
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=2,
        help="transient-failure re-attempts per (cell, seed) run before "
        "the run is quarantined (default 2)",
    )
    campaign.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one JSONL trace per (cell, seed) run into this "
        "directory, named by the run's store key; the path is stamped "
        "into each result record",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect JSONL telemetry traces"
    )
    trace.add_argument(
        "action",
        choices=("summarize",),
        help="summarize: validate the trace and render phase timings, "
        "counters, gauges and warnings",
    )
    trace.add_argument("trace", type=Path, help="JSONL trace file to read")
    trace.add_argument(
        "--output", type=Path, default=None, help="write the summary here"
    )

    subparsers.add_parser(
        "components", help="list every registry family and its registered names"
    )
    return parser


def _figure_outcomes(name: str, steps: int, num_seeds: int) -> dict[str, RunOutcome]:
    model, train_set, test_set = phishing_environment()
    configs: list[ExperimentConfig] = figure_configs(
        batch_size=FIGURE_BATCH_SIZES[name],
        num_steps=steps,
        seeds=tuple(range(1, num_seeds + 1)),
    )
    return run_grid(configs, model, train_set, test_set, verbose=True)


def render_figure_text(name: str, outcomes: dict[str, RunOutcome]) -> str:
    """ASCII panels + summary rows for one reproduced figure.

    Cells without accuracy curves (models whose ``accuracy()`` is not
    implemented, or runs without a test set) are skipped in the panels
    and render "n/a" in the summary instead of crashing.
    """
    sections = [f"=== {name} (b = {FIGURE_BATCH_SIZES[name]}) ==="]
    for dp_label, suffix in (("without DP", "nodp"), ("with DP (eps=0.2)", "dp")):
        series = {}
        for cell_name, outcome in outcomes.items():
            stats = outcome.accuracy_stats
            if cell_name.endswith("-" + suffix) and stats is not None:
                series[cell_name.rsplit("-", 1)[0]] = (
                    stats.steps.tolist(),
                    stats.mean.tolist(),
                )
        if series:
            sections.append(
                ascii_line_plot(series, title=f"{dp_label} — test accuracy (mean)")
            )
        else:
            sections.append(f"{dp_label} — test accuracy: n/a (no curves recorded)")
    rows = [f"{'cell':<24}{'min loss':>10}{'max acc':>9}"]
    for cell_name, outcome in outcomes.items():
        stats = outcome.accuracy_stats
        max_accuracy = "n/a" if stats is None else f"{float(stats.mean.max()):.3f}"
        rows.append(
            f"{cell_name:<24}{outcome.min_loss_mean:>10.4f}{max_accuracy:>9}"
        )
    sections.append("\n".join(rows))
    return "\n\n".join(sections)


def load_run_file(
    path: Path,
) -> tuple[list[ExperimentConfig], dict | str | None, int | None, str | None]:
    """Parse a ``run`` config file.

    Returns ``(configs, model_spec, data_seed, telemetry)``.  The file
    may be one config object, a list of them, or a grid document
    ``{"configs": [...], "model": <registry spec>, "data_seed": int,
    "telemetry": "trace.jsonl"}``.  ``telemetry`` is the trace-path
    request (the ``--telemetry`` flag overrides it).
    """
    payload = json.loads(Path(path).read_text())
    model_spec: dict | str | None = None
    data_seed: int | None = None
    telemetry: str | None = None
    if isinstance(payload, list):
        entries = payload
    elif isinstance(payload, dict) and "configs" in payload:
        entries = payload["configs"]
        model_spec = payload.get("model")
        data_seed = payload.get("data_seed")
        telemetry = payload.get("telemetry")
    else:
        entries = [payload]
    return (
        [ExperimentConfig.from_dict(entry) for entry in entries],
        model_spec,
        data_seed,
        telemetry,
    )


def _parse_faults(value: str) -> str | dict:
    """A ``--faults`` value: inline JSON object, or a fault-model name."""
    text = value.strip()
    if text.startswith("{"):
        return json.loads(text)
    return text


def _resolve_telemetry(flag_value, file_value) -> str | None:
    """The explicit ``--telemetry`` flag beats the file's key."""
    if flag_value is not None:
        return str(flag_value)
    return file_value


def _resolve_data_seed(flag_value: int | None, file_value: int | None) -> int:
    """The explicit flag beats the file; the default is 0."""
    if flag_value is not None:
        return flag_value
    if file_value is not None:
        return file_value
    return 0


def _build_environment(model_spec, data_seed: int):
    """The shared task environment for ``run``/``simulate`` configs."""
    return build_environment(model_spec, data_seed)


def _non_finite_cells(histories_by_name: dict[str, list]) -> list[str]:
    """Cells whose recorded losses went non-finite (diverged runs)."""
    failed = []
    for name, histories in histories_by_name.items():
        for history in histories:
            losses = history.losses
            if len(losses) and not bool(np.isfinite(losses).all()):
                failed.append(name)
                break
    return failed


def _report_divergence(failed: list[str]) -> int:
    """Print the divergence notice; returns the CLI exit code."""
    if not failed:
        return 0
    print(
        f"error: non-finite losses in {len(failed)} cell(s): "
        + ", ".join(failed),
        file=sys.stderr,
    )
    return 1


def render_simulate_summary(results: dict[str, list]) -> str:
    """One row per (cell, seed): policy, losses, clock, amplified budget.

    ``eps*`` is the per-worker amplified basic-composition epsilon
    (worst worker, i.e. the cohort's guarantee); "-" without DP.
    """
    rows = [
        f"{'cell':<24}{'seed':>5}{'policy':>16}{'final loss':>12}"
        f"{'final acc':>11}{'v-time':>9}{'rounds':>8}{'eps*':>9}"
    ]
    for name, cell_results in results.items():
        for result in cell_results:
            config = result.config
            accuracy = (
                f"{result.final_accuracy:.3f}"
                if len(result.history.accuracies)
                else "n/a"
            )
            if result.per_worker_privacy:
                worst = max(
                    report.basic.epsilon
                    for report in result.per_worker_privacy.values()
                )
                epsilon = f"{worst:.3g}"
            else:
                epsilon = "-"
            rows.append(
                f"{name:<24}{config['seed']:>5}{config['policy']:>16}"
                f"{result.final_loss:>12.4f}{accuracy:>11}"
                f"{result.virtual_time:>9.2f}{result.rounds:>8}{epsilon:>9}"
            )
    return "\n".join(rows)


def render_run_summary(outcomes: dict[str, RunOutcome]) -> str:
    """One row per cell: losses, accuracy ("n/a" when absent), privacy.

    Degraded multiprocess runs (shards that crashed, hung or left)
    append one ``degraded:`` line per affected seed, so the summary
    never silently presents a short-cohort run as a clean one.
    """
    rows = [
        f"{'cell':<24}{'gar':>8}{'attack':>10}{'eps':>7}"
        f"{'final loss':>12}{'min loss':>10}{'final acc':>11}"
    ]
    for name, outcome in outcomes.items():
        row = outcome.summary_row()
        epsilon = "-" if row["epsilon"] is None else f"{row['epsilon']:g}"
        accuracy = (
            "n/a"
            if row["final_accuracy"] is None
            else f"{row['final_accuracy']:.3f}"
        )
        rows.append(
            f"{name:<24}{row['gar']:>8}{row['attack']:>10}{epsilon:>7}"
            f"{row['final_loss']:>12.4f}{row['min_loss']:>10.4f}{accuracy:>11}"
        )
    for name, outcome in outcomes.items():
        for seed, departed in outcome.departures:
            details = "; ".join(
                f"shard {shard_id}: {reason}"
                for shard_id, reason in sorted(departed.items())
            )
            rows.append(f"degraded: {name} seed {seed} — {details}")
    return "\n".join(rows)


def _emit(text: str, output: Path | None) -> None:
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Expected failures (bad config files, unknown components, invalid
    options) print a one-line ``error:`` message and return 2 instead
    of a traceback.
    """
    try:
        return _dispatch(build_parser().parse_args(argv))
    except DegradedRunError as error:
        # A run that lost every honest worker is a *result* (the fault
        # plan was too aggressive), not a usage error: exit 1, like
        # divergence, so chaos harnesses can tell the two apart.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ReproError, OSError, json.JSONDecodeError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def console_main(argv: list[str] | None = None) -> int:
    """Process entry point (``python -m repro`` / the ``repro`` script).

    Converts ^C into the conventional exit code 130 instead of a
    traceback; :func:`main` itself lets ``KeyboardInterrupt`` propagate
    so programmatic callers (and the campaign resume tests) observe the
    interrupt.  Multiprocess runs release their shard processes and
    unlink their shared-memory segments on the way out (context
    managers on the interrupt path, atexit as backstop) — see
    :mod:`repro.distributed.runtime.wire`.
    """
    try:
        return main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _dispatch(arguments: argparse.Namespace) -> int:

    if arguments.command == "list":
        print("available artifacts: table1, " + ", ".join(FIGURES))
        return 0

    if arguments.command == "table1":
        rows = table1_rows(
            arguments.dimension,
            arguments.n,
            arguments.f,
            arguments.batch_size,
            arguments.epsilon,
            arguments.delta,
        )
        _emit(format_table1(rows, arguments.dimension, arguments.batch_size), arguments.output)
        return 0

    if arguments.command in FIGURES:
        outcomes = _figure_outcomes(arguments.command, arguments.steps, arguments.seeds)
        _emit(render_figure_text(arguments.command, outcomes), arguments.output)
        return 0

    if arguments.command == "bench":
        from repro.distributed.benchmark import check_speedup_regressions

        baseline = None
        if arguments.check is not None:
            # Load before the (multi-minute) run so a bad path or file
            # fails in milliseconds, not after the measurement.
            baseline = json.loads(Path(arguments.check).read_text())
        if arguments.training:
            from repro.distributed.benchmark import (
                default_training_grid,
                format_training_table,
                run_training_benchmarks,
                save_benchmarks,
                smoke_training_grid,
            )

            grid = smoke_training_grid() if arguments.smoke else default_training_grid()
            if arguments.seed != 0:
                print(
                    "note: --seed applies to the kernel workload; training "
                    "cells pin their own seeds so runs stay comparable to "
                    "the committed baseline",
                    file=sys.stderr,
                )
            print(
                f"benchmarking {len(grid)} training cases "
                f"(repeats={arguments.repeats})"
            )
            payload = run_training_benchmarks(
                grid, repeats=arguments.repeats, verbose=True
            )
            output = arguments.output or Path("BENCH_training.json")
            save_benchmarks(payload, output)
            print(f"wrote {output}")
            print(format_training_table(payload))
        else:
            from repro.gars.benchmark import (
                default_grid,
                format_bench_table,
                run_kernel_benchmarks,
                save_benchmarks,
                smoke_grid,
            )

            grid = smoke_grid() if arguments.smoke else default_grid()
            print(
                f"benchmarking {len(grid)} kernel cases (repeats={arguments.repeats})"
            )
            payload = run_kernel_benchmarks(
                grid, repeats=arguments.repeats, seed=arguments.seed, verbose=True
            )
            output = arguments.output or Path("BENCH_kernels.json")
            save_benchmarks(payload, output)
            print(f"wrote {output}")
            print(format_bench_table(payload))
        if baseline is not None:
            failures = check_speedup_regressions(
                payload, baseline, tolerance=arguments.check_tolerance
            )
            if failures:
                for failure in failures:
                    print(f"regression: {failure}", file=sys.stderr)
                return 1
            print(f"no speedup regressions against {arguments.check}")
        return 0

    if arguments.command == "run":
        configs, model_spec, file_data_seed, file_telemetry = load_run_file(
            arguments.config
        )
        if arguments.backend is not None:
            configs = [
                config.with_updates(backend=arguments.backend) for config in configs
            ]
        if arguments.codec is not None:
            configs = [
                config.with_updates(codec=arguments.codec) for config in configs
            ]
        if arguments.faults is not None:
            faults = _parse_faults(arguments.faults)
            configs = [
                config.with_updates(faults=faults) for config in configs
            ]
        data_seed = _resolve_data_seed(arguments.data_seed, file_data_seed)
        telemetry = _resolve_telemetry(arguments.telemetry, file_telemetry)
        model, train_set, test_set = _build_environment(model_spec, data_seed)
        outcomes = run_grid(
            configs,
            model,
            train_set,
            test_set,
            verbose=True,
            max_workers=arguments.max_workers,
            telemetry=telemetry,
        )
        if arguments.save is not None:
            save_outcomes(outcomes, arguments.save)
            print(f"wrote {arguments.save}")
        _emit(render_run_summary(outcomes), arguments.output)
        return _report_divergence(
            _non_finite_cells(
                {name: outcome.histories for name, outcome in outcomes.items()}
            )
        )

    if arguments.command == "simulate":
        from repro.pipeline.builder import Experiment

        configs, model_spec, file_data_seed, file_telemetry = load_run_file(
            arguments.config
        )
        data_seed = _resolve_data_seed(arguments.data_seed, file_data_seed)
        telemetry = _resolve_telemetry(arguments.telemetry, file_telemetry)
        model, train_set, test_set = _build_environment(model_spec, data_seed)
        multi_config = len(configs) > 1
        results: dict[str, list] = {}
        for config in configs:
            if config.name in results:
                raise ValueError(f"duplicate config name {config.name!r}")
            if arguments.smoke:
                config = config.with_updates(
                    num_steps=min(config.num_steps, 5),
                    eval_every=min(config.eval_every, 5),
                    seeds=config.seeds[:1],
                )
            print(f"simulating {config.describe()}")
            multi_seed = len(config.seeds) > 1
            cell_results = []
            for seed in config.seeds:
                run_telemetry = None
                if telemetry is not None:
                    run_telemetry = telemetry_path_for(
                        telemetry,
                        name=config.name if multi_config else None,
                        seed=seed if multi_seed else None,
                    )
                cell_results.append(
                    Experiment.from_config(
                        config,
                        model,
                        train_set,
                        test_set,
                        seed=seed,
                        telemetry=run_telemetry,
                    ).simulate()
                )
            results[config.name] = cell_results
        _emit(render_simulate_summary(results), arguments.output)
        return _report_divergence(
            _non_finite_cells(
                {
                    name: [result.history for result in cell_results]
                    for name, cell_results in results.items()
                }
            )
        )

    if arguments.command == "campaign":
        from repro.campaign import (
            ResultStore,
            ScenarioMatrix,
            plan_campaign,
            render_campaign_report,
            run_campaign,
        )

        matrix = ScenarioMatrix.from_file(arguments.matrix)
        store = ResultStore(arguments.store)
        if arguments.dry_run:
            plan = plan_campaign(matrix, store, smoke=arguments.smoke)
            lines = [
                f"campaign {plan.matrix.name!r}: {len(plan.pending)} pending "
                f"run(s), {len(plan.completed)} cached, {plan.total_runs} total"
            ]
            lines += [
                f"  miss  {job.name:<28} seed {job.seed:<11} "
                f"{job.mode:<9} {job.key[:12]}"
                for job in plan.pending
            ]
            lines += [
                f"  hit   {name:<28} seed {seed:<11} {'':<9} {key[:12]}"
                for name, seed, key in plan.completed
            ]
            _emit("\n".join(lines), arguments.output)
            return 0
        effective = matrix.smoke() if arguments.smoke else matrix
        if arguments.report:
            _emit(render_campaign_report(effective, store), arguments.output)
            return 0
        summary = run_campaign(
            matrix,
            store,
            max_workers=arguments.max_workers,
            chunksize=arguments.chunksize,
            smoke=arguments.smoke,
            verbose=True,
            telemetry=(
                str(arguments.telemetry) if arguments.telemetry is not None else None
            ),
            retries=arguments.retries,
        )
        print(summary.describe())
        _emit(render_campaign_report(effective, store), arguments.output)
        return 1 if summary.diverged or summary.quarantined else 0

    if arguments.command == "trace":
        from repro.telemetry import read_trace, render_trace_summary, summarize_trace

        events = read_trace(arguments.trace)
        summary = summarize_trace(events)
        _emit(render_trace_summary(summary), arguments.output)
        return 0

    if arguments.command == "components":
        from repro.pipeline.registry import REGISTRY

        lines = [
            f"{family}: {', '.join(REGISTRY.available(family))}"
            for family in REGISTRY.families()
        ]
        print("\n".join(lines))
        return 0

    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":
    sys.exit(main())
