"""Command-line interface: regenerate paper artifacts without pytest.

Usage (installed package)::

    python -m repro table1
    python -m repro figure2 --steps 200 --seeds 2
    python -m repro figure4 --output out/fig4.txt
    python -m repro list

Figures print the same ASCII panels + summary tables the benchmark
harness produces; ``--steps``/``--seeds`` trim the grid for quick looks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURE_BATCH_SIZES, figure_configs
from repro.experiments.runner import RunOutcome, phishing_environment, run_grid
from repro.experiments.tables import format_table1, table1_rows

__all__ = ["main", "build_parser", "render_figure_text"]

FIGURES = tuple(FIGURE_BATCH_SIZES)  # ("figure2", "figure3", "figure4")


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'DP and Byzantine "
        "Resilience in SGD: Do They Add Up?' (PODC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available artifacts")

    table = subparsers.add_parser("table1", help="necessary conditions per GAR")
    table.add_argument("--dimension", type=int, default=69)
    table.add_argument("--batch-size", type=int, default=50)
    table.add_argument("--epsilon", type=float, default=0.2)
    table.add_argument("--delta", type=float, default=1e-6)
    table.add_argument("--n", type=int, default=11)
    table.add_argument("--f", type=int, default=5)
    table.add_argument("--output", type=Path, default=None)

    for name in FIGURES:
        figure = subparsers.add_parser(
            name, help=f"reproduce {name} (b = {FIGURE_BATCH_SIZES[name]})"
        )
        figure.add_argument("--steps", type=int, default=1000)
        figure.add_argument("--seeds", type=int, default=5, help="number of seeds (1..k)")
        figure.add_argument("--output", type=Path, default=None)
    return parser


def _figure_outcomes(name: str, steps: int, num_seeds: int) -> dict[str, RunOutcome]:
    model, train_set, test_set = phishing_environment()
    configs: list[ExperimentConfig] = figure_configs(
        batch_size=FIGURE_BATCH_SIZES[name],
        num_steps=steps,
        seeds=tuple(range(1, num_seeds + 1)),
    )
    return run_grid(configs, model, train_set, test_set, verbose=True)


def render_figure_text(name: str, outcomes: dict[str, RunOutcome]) -> str:
    """ASCII panels + summary rows for one reproduced figure."""
    sections = [f"=== {name} (b = {FIGURE_BATCH_SIZES[name]}) ==="]
    for dp_label, suffix in (("without DP", "nodp"), ("with DP (eps=0.2)", "dp")):
        series = {}
        for cell_name, outcome in outcomes.items():
            if cell_name.endswith("-" + suffix):
                stats = outcome.accuracy_stats
                series[cell_name.rsplit("-", 1)[0]] = (
                    stats.steps.tolist(),
                    stats.mean.tolist(),
                )
        sections.append(
            ascii_line_plot(series, title=f"{dp_label} — test accuracy (mean)")
        )
    rows = [f"{'cell':<24}{'min loss':>10}{'max acc':>9}"]
    for cell_name, outcome in outcomes.items():
        rows.append(
            f"{cell_name:<24}{outcome.min_loss_mean:>10.4f}"
            f"{float(outcome.accuracy_stats.mean.max()):>9.3f}"
        )
    sections.append("\n".join(rows))
    return "\n\n".join(sections)


def _emit(text: str, output: Path | None) -> None:
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)

    if arguments.command == "list":
        print("available artifacts: table1, " + ", ".join(FIGURES))
        return 0

    if arguments.command == "table1":
        rows = table1_rows(
            arguments.dimension,
            arguments.n,
            arguments.f,
            arguments.batch_size,
            arguments.epsilon,
            arguments.delta,
        )
        _emit(format_table1(rows, arguments.dimension, arguments.batch_size), arguments.output)
        return 0

    if arguments.command in FIGURES:
        outcomes = _figure_outcomes(arguments.command, arguments.steps, arguments.seeds)
        _emit(render_figure_text(arguments.command, outcomes), arguments.output)
        return 0

    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":
    sys.exit(main())
