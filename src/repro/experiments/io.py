"""Result persistence: save/load experiment outcomes as JSON.

Keeps EXPERIMENTS.md honest: every number in the write-up can be
regenerated and diffed against a stored artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunOutcome
from repro.metrics.aggregate import SeriesStats
from repro.metrics.history import TrainingHistory

__all__ = ["outcome_to_dict", "outcome_from_dict", "save_outcomes", "load_outcomes"]


def outcome_to_dict(outcome: RunOutcome) -> dict:
    """JSON-serialisable representation of a :class:`RunOutcome`."""
    return {
        "config": outcome.config.to_dict(),
        "histories": [history.to_dict() for history in outcome.histories],
        "loss_stats": outcome.loss_stats.to_dict(),
        "accuracy_stats": (
            outcome.accuracy_stats.to_dict() if outcome.accuracy_stats is not None else None
        ),
        "privacy": (
            outcome.privacy.to_dict() if outcome.privacy is not None else None
        ),
        "departures": [
            [seed, departed] for seed, departed in outcome.departures
        ],
    }


def outcome_from_dict(payload: dict) -> RunOutcome:
    """Inverse of :func:`outcome_to_dict` (privacy report is not restored)."""
    config = ExperimentConfig.from_dict(payload["config"])
    histories = [TrainingHistory.from_dict(entry) for entry in payload["histories"]]
    loss_stats = SeriesStats.from_dict(payload["loss_stats"])
    accuracy_stats = (
        SeriesStats.from_dict(payload["accuracy_stats"])
        if payload.get("accuracy_stats") is not None
        else None
    )
    return RunOutcome(
        config=config,
        histories=histories,
        loss_stats=loss_stats,
        accuracy_stats=accuracy_stats,
        privacy=None,
        departures=[
            (int(seed), {int(shard): reason for shard, reason in departed.items()})
            for seed, departed in payload.get("departures", [])
        ],
    )


def save_outcomes(outcomes: dict[str, RunOutcome], path: str | Path) -> None:
    """Write ``{name: outcome}`` to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: outcome_to_dict(outcome) for name, outcome in outcomes.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_outcomes(path: str | Path) -> dict[str, RunOutcome]:
    """Inverse of :func:`save_outcomes`."""
    payload = json.loads(Path(path).read_text())
    return {name: outcome_from_dict(entry) for name, entry in payload.items()}
