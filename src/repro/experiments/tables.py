"""Table 1 reproduction: per-GAR necessary conditions under DP.

For each of the paper's seven GARs, produce the symbolic condition
(Table 1), its numeric value for a concrete ``(d, n, f, b, eps,
delta)``, and whether the master feasibility inequality says the noisy
VN condition can hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import feasibility
from repro.gars import GAR_REGISTRY

__all__ = [
    "Table1Row",
    "format_campaign_cells",
    "format_campaign_grid",
    "format_table1",
    "table1_rows",
]

# (gar registry name, Table-1 condition as printed in the paper)
_TABLE1_GARS: tuple[tuple[str, str], ...] = (
    ("krum", "b in Omega(sqrt(n d))"),
    ("median", "b in Omega(sqrt(n d))"),
    ("bulyan", "b in Omega(sqrt(n d))"),
    ("meamed", "b in Omega(sqrt(n d))"),
    ("mda", "f/n in O(b / (sqrt(d) + b))"),
    ("trimmed-mean", "f/n in O(b^2 / (d + b^2))"),
    ("phocas", "f/n in O(b^2 / (d + b^2))"),
)


@dataclass(frozen=True)
class Table1Row:
    """One GAR's row of the reproduced Table 1."""

    gar: str
    symbolic_condition: str
    applicable: bool
    k_f: float | None
    min_batch_size: float | None
    max_byzantine_fraction: float | None
    feasible_at_configuration: bool | None
    note: str = ""


def _closed_form_threshold(
    name: str, dimension: int, n: int, f: int, batch_size: int, epsilon: float, delta: float
) -> tuple[float | None, float | None]:
    """Returns (min batch size, max Byzantine fraction) from the
    propositions' closed forms; ``None`` where the proposition bounds
    the other quantity."""
    if name in ("krum", "bulyan"):
        min_b = feasibility.krum_min_batch_size(dimension, n, f, epsilon, delta)
        return min_b, None
    if name == "median":
        return feasibility.median_min_batch_size(dimension, n, epsilon, delta), None
    if name == "meamed":
        return feasibility.meamed_min_batch_size(dimension, n, epsilon, delta), None
    if name == "mda":
        return None, feasibility.mda_max_byzantine_fraction(
            dimension, batch_size, epsilon, delta
        )
    if name == "trimmed-mean":
        return None, feasibility.trimmed_mean_max_byzantine_fraction(
            dimension, batch_size, epsilon, delta
        )
    if name == "phocas":
        return None, feasibility.phocas_max_byzantine_fraction(
            dimension, batch_size, epsilon, delta
        )
    raise ValueError(f"no Table 1 closed form for {name!r}")


def table1_rows(
    dimension: int,
    n: int,
    f: int,
    batch_size: int,
    epsilon: float,
    delta: float,
) -> list[Table1Row]:
    """Reproduce Table 1 numerically at a concrete configuration."""
    rows: list[Table1Row] = []
    for name, symbolic in _TABLE1_GARS:
        gar_class = GAR_REGISTRY[name]
        if not gar_class.supports(n, f):
            rows.append(
                Table1Row(
                    gar=name,
                    symbolic_condition=symbolic,
                    applicable=False,
                    k_f=None,
                    min_batch_size=None,
                    max_byzantine_fraction=None,
                    feasible_at_configuration=None,
                    note=f"precondition fails for (n={n}, f={f})",
                )
            )
            continue
        gar = gar_class(n, f)
        min_b, max_tau = _closed_form_threshold(
            name, dimension, n, f, batch_size, epsilon, delta
        )
        feasible = feasibility.master_condition_can_hold(
            gar.k_f(), dimension, batch_size, epsilon, delta
        )
        rows.append(
            Table1Row(
                gar=name,
                symbolic_condition=symbolic,
                applicable=True,
                k_f=gar.k_f(),
                min_batch_size=min_b,
                max_byzantine_fraction=max_tau,
                feasible_at_configuration=feasible,
            )
        )
    return rows


def _cell_number(value, precision: str = ".4f") -> str:
    """A numeric table cell: formatted float, or '-' when missing."""
    if value is None:
        return "-"
    if not math.isfinite(value):
        return str(value)
    return format(value, precision)


def format_campaign_cells(rows: list[dict]) -> str:
    """Per-cell summary table of a campaign (one row per cell).

    Each row dict carries ``name``, ``mode``, ``seeds_done``,
    ``seeds_total`` and the cross-seed means ``final_loss``,
    ``min_loss``, ``final_accuracy``, ``epsilon`` (basic-composition
    total; ``None`` renders "-"), ``vn_submitted`` (median VN ratio)
    and ``virtual_time``.
    """
    header = (
        f"{'cell':<28}{'mode':>10}{'seeds':>8}{'final loss':>12}"
        f"{'min loss':>10}{'final acc':>11}{'eps':>9}{'vn':>9}{'v-time':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        seeds = f"{row['seeds_done']}/{row['seeds_total']}"
        lines.append(
            f"{row['name']:<28}{row['mode']:>10}{seeds:>8}"
            f"{_cell_number(row.get('final_loss')):>12}"
            f"{_cell_number(row.get('min_loss')):>10}"
            f"{_cell_number(row.get('final_accuracy'), '.3f'):>11}"
            f"{_cell_number(row.get('epsilon'), '.3g'):>9}"
            f"{_cell_number(row.get('vn_submitted'), '.3g'):>9}"
            f"{_cell_number(row.get('virtual_time'), '.1f'):>9}"
        )
    return "\n".join(lines)


def format_campaign_grid(
    metric: str,
    row_field: str,
    col_field: str,
    row_values: list,
    col_values: list,
    values: dict[tuple, float | None],
    precision: str = ".4f",
) -> str:
    """A paper-style pivot grid: ``metric`` by ``row_field`` x ``col_field``.

    ``values`` maps ``(row_value, col_value)`` to the aggregated metric
    (``None``/missing renders "-"), mirroring the paper's GAR x attack
    grids.
    """

    def label(value) -> str:
        return "none" if value is None else str(value)

    width = max(12, max((len(label(value)) for value in col_values), default=0) + 2)
    left = max(14, max((len(label(value)) for value in row_values), default=0) + 2)
    corner = row_field + " x " + col_field
    header = f"{corner:<{left}}" + "".join(
        f"{label(value):>{width}}" for value in col_values
    )
    lines = [f"{metric} grid", header, "-" * len(header)]
    for row_value in row_values:
        cells = "".join(
            f"{_cell_number(values.get((row_value, col_value)), precision):>{width}}"
            for col_value in col_values
        )
        lines.append(f"{label(row_value):<{left}}" + cells)
    return "\n".join(lines)


def format_table1(rows: list[Table1Row], dimension: int, batch_size: int) -> str:
    """Render the reproduced Table 1 as fixed-width text."""
    header = (
        f"{'GAR':<14}{'condition':<30}{'k_F':>10}{'min b':>14}"
        f"{'max f/n':>10}{'holds?':>8}"
    )
    lines = [f"Table 1 at d={dimension}, b={batch_size}", header, "-" * len(header)]
    for row in rows:
        if not row.applicable:
            lines.append(f"{row.gar:<14}{row.symbolic_condition:<30}{row.note:>42}")
            continue
        k_f = f"{row.k_f:.4g}" if row.k_f is not None and math.isfinite(row.k_f) else "inf"
        min_b = f"{row.min_batch_size:,.0f}" if row.min_batch_size is not None else "-"
        max_tau = (
            f"{row.max_byzantine_fraction:.2e}"
            if row.max_byzantine_fraction is not None
            else "-"
        )
        holds = "yes" if row.feasible_at_configuration else "NO"
        lines.append(
            f"{row.gar:<14}{row.symbolic_condition:<30}{k_f:>10}{min_b:>14}"
            f"{max_tau:>10}{holds:>8}"
        )
    return "\n".join(lines)
