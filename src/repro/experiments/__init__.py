"""Experiment harness: configs, runner, figure/table builders, plotting, IO."""

from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.config import PAPER_SEEDS, ExperimentConfig
from repro.experiments.figures import (
    FIGURE_BATCH_SIZES,
    PAPER_EPSILON,
    figure2_configs,
    figure3_configs,
    figure4_configs,
    figure_configs,
)
from repro.experiments.io import (
    load_outcomes,
    outcome_from_dict,
    outcome_to_dict,
    save_outcomes,
)
from repro.experiments.runner import (
    RunOutcome,
    phishing_environment,
    run_config,
    run_grid,
    telemetry_path_for,
)
from repro.experiments.tables import Table1Row, format_table1, table1_rows

__all__ = [
    "FIGURE_BATCH_SIZES",
    "PAPER_EPSILON",
    "PAPER_SEEDS",
    "ExperimentConfig",
    "RunOutcome",
    "Table1Row",
    "ascii_line_plot",
    "figure2_configs",
    "figure3_configs",
    "figure4_configs",
    "figure_configs",
    "format_table1",
    "load_outcomes",
    "outcome_from_dict",
    "outcome_to_dict",
    "phishing_environment",
    "run_config",
    "run_grid",
    "save_outcomes",
    "table1_rows",
    "telemetry_path_for",
]
