"""Experiment runner: config -> multi-seed results.

:func:`phishing_environment` builds the paper's task (synthetic
phishing stand-in + logistic regression with MSE loss);
:func:`run_config` repeats one cell over its seeds and aggregates the
curves; :func:`run_grid` handles a list of cells.  Both accept
``max_workers`` to fan the per-seed runs out over a
:mod:`multiprocessing` pool (see :mod:`repro.pipeline.parallel`);
results are bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.data.datasets import Dataset, train_test_split
from repro.data.phishing import PHISHING_TRAIN_SIZE, make_phishing_dataset
from repro.distributed.trainer import PrivacyReport, TrainingResult
from repro.experiments.config import ExperimentConfig
from repro.metrics.aggregate import SeriesStats, aggregate_accuracy, aggregate_losses
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.parallel import TrainingJob, run_jobs
from repro.rng import generator_from_seed

__all__ = [
    "RunOutcome",
    "build_environment",
    "phishing_environment",
    "run_config",
    "run_grid",
    "telemetry_path_for",
]


@dataclass
class RunOutcome:
    """Aggregated results of one config across its seeds."""

    config: ExperimentConfig
    histories: list[TrainingHistory] = field(repr=False)
    loss_stats: SeriesStats = field(repr=False)
    accuracy_stats: SeriesStats | None = field(repr=False)
    privacy: PrivacyReport | None
    #: Multiprocess-backend degradation evidence: ``(seed, departed)``
    #: for every seed whose run lost shards (empty for clean runs and
    #: the in-process backend).  The CLI prints these in the summary.
    departures: list[tuple[int, dict]] = field(default_factory=list)

    @property
    def final_loss_mean(self) -> float:
        """Mean final training loss across seeds."""
        return self.loss_stats.final_mean

    @property
    def min_loss_mean(self) -> float:
        """Mean of per-seed minimum losses."""
        return float(sum(h.min_loss for h in self.histories) / len(self.histories))

    @property
    def final_accuracy_mean(self) -> float | None:
        """Mean final test accuracy across seeds (None if not measured)."""
        if self.accuracy_stats is None:
            return None
        return self.accuracy_stats.final_mean

    def summary_row(self) -> dict:
        """Flat dict for table printing / JSON export."""
        return {
            "name": self.config.name,
            "gar": self.config.gar,
            "attack": self.config.attack or "none",
            "batch_size": self.config.batch_size,
            "epsilon": self.config.epsilon,
            "final_loss": self.final_loss_mean,
            "min_loss": self.min_loss_mean,
            "final_accuracy": self.final_accuracy_mean,
        }


def phishing_environment(
    data_seed: int = 0,
) -> tuple[LogisticRegressionModel, Dataset, Dataset]:
    """The paper's task: phishing (synthetic stand-in), 8400/2655 split,
    logistic regression with MSE loss (d = 69).

    ``data_seed`` fixes the dataset; the paper varies only the training
    seeds, keeping the data fixed, so all experiment cells should share
    one ``data_seed``.
    """
    dataset = make_phishing_dataset(seed=data_seed)
    train_set, test_set = train_test_split(
        dataset, PHISHING_TRAIN_SIZE, generator_from_seed(data_seed + 1)
    )
    model = LogisticRegressionModel(num_features=dataset.num_features, loss_kind="mse")
    return model, train_set, test_set


def build_environment(
    model_spec: dict | str | None = None, data_seed: int = 0
) -> tuple[Model, Dataset, Dataset]:
    """The shared task environment for a config grid or campaign.

    The phishing dataset/split at ``data_seed``, with the model either
    the paper's logistic regression or, when ``model_spec`` is given, a
    registry build of that spec (``num_features`` injected when the
    factory accepts it).
    """
    model, train_set, test_set = phishing_environment(data_seed)
    if model_spec is not None:
        import inspect

        from repro.pipeline.registry import REGISTRY, ComponentRegistry

        factory = REGISTRY.get("model", ComponentRegistry.parse_spec(model_spec)[0])
        context = {}
        if "num_features" in inspect.signature(factory).parameters:
            context["num_features"] = train_set.num_features
        model = REGISTRY.build("model", model_spec, **context)
    return model, train_set, test_set


def telemetry_path_for(
    base: str | Path, *, name: str | None = None, seed: int | None = None
) -> str:
    """Derive a per-run trace path from a requested base path.

    Each run owns exactly one JSONL trace file, so a multi-config or
    multi-seed invocation cannot write every run to the same ``base``.
    ``name`` (the config's) and ``seed`` are appended as ``-{name}`` /
    ``-s{seed}`` suffixes before the extension; passing neither returns
    ``base`` unchanged (the single-run case keeps the exact path the
    user asked for).
    """
    base = Path(base)
    suffix = base.suffix or ".jsonl"
    stem = base.name[: -len(base.suffix)] if base.suffix else base.name
    if name is not None:
        stem = f"{stem}-{name}"
    if seed is not None:
        stem = f"{stem}-s{seed}"
    return str(base.with_name(stem + suffix))


def run_config(
    config: ExperimentConfig,
    model: Model,
    train_dataset: Dataset,
    test_dataset: Dataset | None = None,
    *,
    max_workers: int | None = None,
    telemetry: str | Path | None = None,
) -> RunOutcome:
    """Run one cell over all its seeds and aggregate the curves.

    ``max_workers`` > 1 runs the seeds on a multiprocessing pool;
    histories are bit-identical to the serial default.

    ``telemetry`` is a trace-path request: each seed's run writes one
    JSONL trace, at ``telemetry`` itself for a single-seed cell and at
    :func:`telemetry_path_for`'s ``-s{seed}`` derivation otherwise.
    The path rides inside the job's ``train_kwargs`` (a plain string,
    so jobs stay picklable) and never enters the config's identity.
    """
    multi_seed = len(config.seeds) > 1
    jobs = []
    for seed in config.seeds:
        train_kwargs = config.train_kwargs(seed)
        if telemetry is not None:
            train_kwargs["telemetry"] = telemetry_path_for(
                telemetry, seed=seed if multi_seed else None
            )
        jobs.append(
            TrainingJob(
                model=model,
                train_dataset=train_dataset,
                test_dataset=test_dataset,
                train_kwargs=train_kwargs,
            )
        )
    results: list[TrainingResult] = run_jobs(jobs, max_workers=max_workers)
    histories = [result.history for result in results]
    loss_stats = aggregate_losses(histories)
    if test_dataset is not None and len(histories[0].accuracies) > 0:
        accuracy_stats = aggregate_accuracy(histories)
    else:
        accuracy_stats = None
    return RunOutcome(
        config=config,
        histories=histories,
        loss_stats=loss_stats,
        accuracy_stats=accuracy_stats,
        privacy=results[0].privacy,
        departures=[
            (seed, result.departed)
            for seed, result in zip(config.seeds, results)
            if result.departed
        ],
    )


def run_grid(
    configs: list[ExperimentConfig],
    model: Model,
    train_dataset: Dataset,
    test_dataset: Dataset | None = None,
    verbose: bool = False,
    *,
    max_workers: int | None = None,
    telemetry: str | Path | None = None,
) -> dict[str, RunOutcome]:
    """Run several cells; returns ``{config.name: outcome}``.

    ``max_workers`` parallelises each cell's seeds (cells themselves
    run in order, so progress output stays readable).  ``telemetry``
    requests per-run traces: with more than one config each cell's
    trace base gets a ``-{config.name}`` suffix (and each seed its
    ``-s{seed}``, as in :func:`run_config`).
    """
    multi_config = len(configs) > 1
    outcomes: dict[str, RunOutcome] = {}
    for config in configs:
        if config.name in outcomes:
            raise ValueError(f"duplicate config name {config.name!r}")
        if verbose:
            print(f"running {config.describe()}")
        cell_telemetry = telemetry
        if telemetry is not None and multi_config:
            cell_telemetry = telemetry_path_for(telemetry, name=config.name)
        outcomes[config.name] = run_config(
            config,
            model,
            train_dataset,
            test_dataset,
            max_workers=max_workers,
            telemetry=cell_telemetry,
        )
    return outcomes
