"""Minimal ASCII line plots for terminal-friendly figure output.

The benchmark harness prints the figures' loss/accuracy series as text
so the reproduction is inspectable without matplotlib (not available
offline).  This is intentionally small: multiple named series, linear
or log y-axis, fixed-size character canvas.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_line_plot"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Render named ``(x, y)`` series on one character canvas.

    Parameters
    ----------
    series:
        ``{label: (xs, ys)}``; all series share the axes.
    width, height:
        Canvas size in characters (axes excluded).
    title:
        Optional heading line.
    log_y:
        Plot ``log10(y)``; non-positive values are dropped.
    """
    if width < 8 or height < 4:
        raise ValueError("canvas must be at least 8x4")
    if not series:
        raise ValueError("need at least one series")

    cleaned: dict[str, tuple[list[float], list[float]]] = {}
    for label, (xs, ys) in series.items():
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r} has mismatched x/y lengths")
        if log_y:
            pairs = [(x, math.log10(y)) for x, y in zip(xs, ys) if y > 0]
        else:
            pairs = [(x, y) for x, y in zip(xs, ys) if math.isfinite(y)]
        if pairs:
            cleaned[label] = ([p[0] for p in pairs], [p[1] for p in pairs])
    if not cleaned:
        raise ValueError("no finite data to plot")

    all_x = [x for xs, _ in cleaned.values() for x in xs]
    all_y = [y for _, ys in cleaned.values() for y in ys]
    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(all_y), max(all_y)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5

    canvas = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(cleaned.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            canvas[row][column] = marker

    y_label_high = f"{y_high:.3g}" if not log_y else f"1e{y_high:.2f}"
    y_label_low = f"{y_low:.3g}" if not log_y else f"1e{y_low:.2f}"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label_high:>10} +" + "-" * width)
    for row_index, row in enumerate(canvas):
        prefix = " " * 10 + " |"
        if row_index == height - 1:
            prefix = f"{y_label_low:>10} +"
        lines.append(prefix + "".join(row))
    lines.append(
        " " * 12 + f"{x_low:<12.4g}" + " " * max(0, width - 24) + f"{x_high:>12.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(cleaned)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
