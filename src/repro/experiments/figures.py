"""Config builders for the paper's Figures 2, 3 and 4.

Each figure is the same 2 x 4 grid at a different batch size:

* columns: without DP noise / with DP noise (eps = 0.2, delta = 1e-6);
* curves: averaging with no attack (the honest baseline — the paper's
  "when averaging is used, the f workers behave as honest workers"),
  MDA with no attack, MDA under *A Little Is Enough*, MDA under
  *Fall of Empires*.

Figure 2 uses b = 50 (the "reasonable" batch), Figure 3 b = 10 (DP
hurts even unattacked), Figure 4 b = 500 (everything tolerated).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.experiments.config import PAPER_SEEDS, ExperimentConfig

__all__ = [
    "FIGURE_BATCH_SIZES",
    "PAPER_EPSILON",
    "figure_configs",
    "figure2_configs",
    "figure3_configs",
    "figure4_configs",
]

#: Batch size per paper figure.
FIGURE_BATCH_SIZES: dict[str, int] = {"figure2": 50, "figure3": 10, "figure4": 500}

#: The privacy parameter the figures use.
PAPER_EPSILON = 0.2


def figure_configs(
    batch_size: int,
    epsilon: float = PAPER_EPSILON,
    num_steps: int = 1000,
    seeds: tuple[int, ...] = PAPER_SEEDS,
    eval_every: int = 50,
) -> list[ExperimentConfig]:
    """The eight cells of one figure at the given batch size."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    shared = {
        "num_steps": num_steps,
        "batch_size": batch_size,
        "seeds": seeds,
        "eval_every": eval_every,
    }
    cells: list[ExperimentConfig] = []
    for dp_label, dp_epsilon in (("nodp", None), ("dp", epsilon)):
        cells.append(
            ExperimentConfig(
                name=f"avg-noattack-{dp_label}",
                gar="average",
                f=0,
                attack=None,
                epsilon=dp_epsilon,
                **shared,
            )
        )
        cells.append(
            ExperimentConfig(
                name=f"mda-noattack-{dp_label}",
                gar="mda",
                f=5,
                num_byzantine=0,
                attack=None,
                epsilon=dp_epsilon,
                **shared,
            )
        )
        cells.append(
            ExperimentConfig(
                name=f"mda-little-{dp_label}",
                gar="mda",
                f=5,
                attack="little",
                epsilon=dp_epsilon,
                **shared,
            )
        )
        cells.append(
            ExperimentConfig(
                name=f"mda-empire-{dp_label}",
                gar="mda",
                f=5,
                attack="empire",
                epsilon=dp_epsilon,
                **shared,
            )
        )
    return cells


def figure2_configs(**overrides) -> list[ExperimentConfig]:
    """Figure 2: b = 50."""
    return figure_configs(FIGURE_BATCH_SIZES["figure2"], **overrides)


def figure3_configs(**overrides) -> list[ExperimentConfig]:
    """Figure 3: b = 10."""
    return figure_configs(FIGURE_BATCH_SIZES["figure3"], **overrides)


def figure4_configs(**overrides) -> list[ExperimentConfig]:
    """Figure 4: b = 500."""
    return figure_configs(FIGURE_BATCH_SIZES["figure4"], **overrides)
