"""Reading and summarising JSONL run traces.

``read_trace`` loads a trace file strictly (any unparseable line is an
error), ``summarize_trace`` folds validated events into per-phase
totals and metric snapshots, and ``render_trace_summary`` turns that
summary into the flamegraph-style table behind
``repro trace summarize``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import TraceError, validate_events

__all__ = ["read_trace", "summarize_trace", "render_trace_summary"]


def read_trace(path) -> list[dict]:
    """The events of the JSONL trace at ``path``, in file order.

    Blank lines are ignored; any other unparseable line raises
    :class:`~repro.telemetry.events.TraceError` naming the line number
    — a truncated or corrupted trace must fail loudly, not summarise
    partially.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise TraceError(f"trace file not found: {path}") from None
    events = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceError(f"{path}:{number}: unparseable trace line ({error})") from None
        events.append(event)
    return events


def summarize_trace(events) -> dict:
    """Fold a validated event sequence into a summary dict.

    Validates first (see
    :func:`~repro.telemetry.events.validate_events`), then aggregates:

    * ``phases`` — per span name: event count, rounds covered, total
      nanoseconds, and share of the summed span time;
    * ``counters`` — final cumulative value per name, summed across
      sources (each source's registry is independent);
    * ``gauges`` — last observed value per name;
    * ``warnings`` — every warning event, in trace order;
    * plus ``srcs``, ``steps`` (max round seen), ``events`` (total),
      ``meta`` (from ``run_start``) and ``elapsed_ns`` (from
      ``run_end``, when present).
    """
    events = validate_events(events)
    phases: dict[str, dict] = {}
    counter_finals: dict[tuple[str, str], int] = {}
    gauges: dict[str, object] = {}
    warnings: list[dict] = []
    srcs: set[str] = set()
    max_step = 0
    meta: dict = {}
    elapsed_ns = None
    for event in events:
        kind = event["kind"]
        srcs.add(event["src"])
        max_step = max(max_step, event["step"])
        if kind == "span":
            entry = phases.setdefault(event["name"], {"count": 0, "rounds": 0, "total_ns": 0})
            entry["count"] += 1
            entry["rounds"] += int(event.get("attrs", {}).get("rounds", 1))
            entry["total_ns"] += event["dur_ns"]
        elif kind == "counter":
            counter_finals[(event["src"], event["name"])] = event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "warning":
            warnings.append(event)
        elif kind == "run_start":
            meta = dict(event.get("meta", {}))
        elif kind == "run_end":
            elapsed_ns = event["elapsed_ns"]
            for name, value in event["counters"].items():
                key = (event["src"], name)
                counter_finals[key] = max(counter_finals.get(key, 0), value)
            for name, value in event["gauges"].items():
                if value is not None:
                    gauges.setdefault(name, value)
    counters: dict[str, int] = {}
    for (_, name), value in counter_finals.items():
        counters[name] = counters.get(name, 0) + value
    total_span_ns = sum(entry["total_ns"] for entry in phases.values())
    for entry in phases.values():
        entry["share"] = entry["total_ns"] / total_span_ns if total_span_ns else 0.0
    return {
        "events": len(events),
        "srcs": sorted(srcs),
        "steps": max_step,
        "meta": meta,
        "elapsed_ns": elapsed_ns,
        "phases": {name: phases[name] for name in sorted(phases)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "warnings": warnings,
    }


def _format_ms(nanoseconds: int) -> str:
    return f"{nanoseconds / 1e6:.2f}"


def render_trace_summary(summary: dict, bar_width: int = 28) -> str:
    """The human-readable phase/counter report for a trace summary.

    Phases sort by total time descending with a proportional ``#`` bar
    (the flamegraph-style view); counters, gauges, and warnings follow.
    """
    lines = []
    srcs = summary["srcs"]
    lines.append(
        f"trace: {summary['events']} events from {len(srcs)} source(s) "
        f"({', '.join(srcs)}), {summary['steps']} step(s)"
    )
    meta = summary.get("meta") or {}
    if meta:
        described = ", ".join(f"{key}={meta[key]}" for key in sorted(meta))
        lines.append(f"run: {described}")
    if summary.get("elapsed_ns"):
        lines.append(f"elapsed: {summary['elapsed_ns'] / 1e9:.3f} s")
    phases = summary["phases"]
    if phases:
        ordered = sorted(phases.items(), key=lambda item: item[1]["total_ns"], reverse=True)
        name_width = max(len("phase"), max(len(name) for name, _ in ordered))
        lines.append("")
        lines.append(
            f"{'phase':<{name_width}}  {'count':>7}  {'rounds':>7}  "
            f"{'total ms':>10}  {'share':>6}"
        )
        for name, entry in ordered:
            bar = "#" * max(1, round(entry["share"] * bar_width)) if entry["total_ns"] else ""
            lines.append(
                f"{name:<{name_width}}  {entry['count']:>7}  {entry['rounds']:>7}  "
                f"{_format_ms(entry['total_ns']):>10}  {entry['share']:>6.1%}  {bar}"
            )
    counters = summary["counters"]
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
    gauges = summary["gauges"]
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name, value in gauges.items():
            rendered = f"{value:.6g}" if isinstance(value, float) else repr(value)
            lines.append(f"  {name} = {rendered}")
    warnings = summary["warnings"]
    if warnings:
        lines.append("")
        lines.append(f"warnings ({len(warnings)}):")
        for event in warnings:
            lines.append(
                f"  [{event['src']} step {event['step']}] {event['name']}: {event['message']}"
            )
    return "\n".join(lines)
