"""Shared timing primitives — one clock discipline for the repo.

Both benchmark modules (:mod:`repro.gars.benchmark`,
:mod:`repro.distributed.benchmark`) and the telemetry spans themselves
time with ``time.perf_counter_ns``: the monotonic, highest-resolution
clock the stdlib offers.  Keeping the discipline here means a bench
table and a run trace measure with the same clock and the same
best-of-N convention.
"""

from __future__ import annotations

import time

__all__ = ["best_of_ns", "Stopwatch"]


def best_of_ns(fn, repeats: int) -> float:
    """Best wall time of ``repeats`` calls to ``fn``, in nanoseconds.

    One untimed warm-up call first (caches, allocators, JIT-ish numpy
    paths), then the minimum over ``repeats`` timed calls — the
    standard micro-benchmark estimator, robust to scheduler noise.
    """
    fn()
    best = float("inf")
    for _ in range(max(1, int(repeats))):
        start = time.perf_counter_ns()
        fn()
        best = min(best, float(time.perf_counter_ns() - start))
    return best


class Stopwatch:
    """A restartable interval timer on the shared clock.

    ``restart()`` marks the start of an interval; ``elapsed_ns()`` /
    ``elapsed_seconds()`` read the interval without stopping it.  Used
    where the measured region cannot be expressed as a closure (the
    training benchmark's interleaved engine/reference repeats).
    """

    __slots__ = ("_start",)

    def __init__(self):
        self._start = time.perf_counter_ns()

    def restart(self) -> None:
        """Begin a new interval at the current instant."""
        self._start = time.perf_counter_ns()

    def elapsed_ns(self) -> int:
        """Nanoseconds since the last restart (or construction)."""
        return time.perf_counter_ns() - self._start

    def elapsed_seconds(self) -> float:
        """Seconds since the last restart (or construction)."""
        return self.elapsed_ns() / 1e9
