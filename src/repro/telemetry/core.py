"""The :class:`Telemetry` handle and typed :class:`MetricsRegistry`.

Design constraints, in order:

1. **Bit-identity** — telemetry never touches an RNG stream; it only
   observes values the training path already computed.
2. **Null by default** — instrumented hot paths hold a plain
   ``_telemetry = None`` attribute and guard with a single ``is None``
   check; nothing here is imported or called until a handle is
   actually installed (pinned by the off-path overhead test).
3. **Zero dependencies** — stdlib + the event dicts of
   :mod:`repro.telemetry.events` only.

One :class:`Telemetry` instance represents one *source* (the chief, or
one shard) and owns that source's monotonic ``seq`` counter, current
``step``, metrics registry, and sink list.
"""

from __future__ import annotations

import time

from repro.exceptions import ConfigurationError
from repro.telemetry.events import TRACE_SCHEMA

__all__ = ["Counter", "Gauge", "MetricsRegistry", "Telemetry"]


class Counter:
    """A monotonically increasing count (messages dropped, rounds, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, delta: int = 1) -> int:
        """Increase by ``delta`` (>= 0); returns the new cumulative value."""
        if delta < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (delta={delta})")
        self.value += delta
        return self.value


class Gauge:
    """A last-write-wins measurement (epsilon spent, rounds/sec, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> None:
        """Record the latest value."""
        self.value = value


class MetricsRegistry:
    """Named, typed metric instruments for one telemetry source.

    A name is bound to its instrument type on first use; asking for the
    same name as a different type is a configuration error (it would
    silently fork the metric's meaning).
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if name in self._gauges:
            raise ConfigurationError(f"metric {name!r} is already registered as a gauge")
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        if name in self._counters:
            raise ConfigurationError(f"metric {name!r} is already registered as a counter")
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def counter_values(self) -> dict[str, int]:
        """Snapshot of every counter's cumulative value, sorted by name."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def gauge_values(self) -> dict:
        """Snapshot of every gauge's latest value, sorted by name."""
        return {name: self._gauges[name].value for name in sorted(self._gauges)}


class _Span(object):
    """Context manager timing one named phase; emits on exit."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict | None):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        duration = time.perf_counter_ns() - self._start
        self._telemetry.span_ns(self._name, duration, **(self._attrs or {}))


class Telemetry:
    """One source's handle into the telemetry plane.

    Construct with the sinks that should receive this source's events
    and a ``src`` tag (``"chief"`` by default; shards use
    ``"shard:<id>"``).  All emission goes through :meth:`_emit`, which
    stamps ``src``/``seq``/``step`` so every event satisfies the trace
    schema's per-source monotonicity invariants by construction.
    """

    def __init__(self, sinks=(), src: str = "chief", metrics: MetricsRegistry | None = None):
        self._sinks = list(sinks)
        self._src = str(src)
        self._seq = 0
        self._step = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._run_started_ns = None

    @property
    def src(self) -> str:
        """This source's tag, stamped into every event it emits."""
        return self._src

    @property
    def sinks(self) -> list:
        """The sinks receiving this source's events."""
        return list(self._sinks)

    @property
    def step(self) -> int:
        """The training round currently stamped into emitted events."""
        return self._step

    def set_step(self, step: int) -> None:
        """Advance the round stamp (steps never go backwards per source)."""
        self._step = int(step)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> dict:
        event = {"kind": kind, "src": self._src, "seq": self._seq, "step": self._step}
        self._seq += 1
        event.update(fields)
        for sink in self._sinks:
            sink.emit(event)
        return event

    def forward(self, event: dict) -> None:
        """Pass a foreign source's finished event through to the sinks.

        The chief uses this to merge drained shard events into the run
        trace; the event keeps its original ``src`` and ``seq`` so the
        per-source ordering invariants survive the merge.
        """
        for sink in self._sinks:
            sink.emit(event)

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing the enclosed block as span ``name``."""
        return _Span(self, name, attrs or None)

    def span_ns(self, name: str, dur_ns: int, **attrs) -> None:
        """Emit an already-measured span (block paths accumulate first)."""
        event_fields = {"name": name, "dur_ns": int(dur_ns)}
        if attrs:
            event_fields["attrs"] = attrs
        self._emit("span", **event_fields)

    def counter(self, name: str, delta: int = 1, **attrs) -> None:
        """Increment counter ``name`` and emit its new cumulative value."""
        value = self.metrics.counter(name).add(delta)
        fields = {"name": name, "value": value, "delta": int(delta)}
        if attrs:
            fields["attrs"] = attrs
        self._emit("counter", **fields)

    def gauge(self, name: str, value, **attrs) -> None:
        """Set gauge ``name`` and emit the new value."""
        self.metrics.gauge(name).set(value)
        fields = {"name": name, "value": value}
        if attrs:
            fields["attrs"] = attrs
        self._emit("gauge", **fields)

    def warning(self, name: str, message: str, **attrs) -> None:
        """Emit a structured warning (shard death, timeout, ...)."""
        fields = {"name": name, "message": str(message)}
        if attrs:
            fields["attrs"] = attrs
        self._emit("warning", **fields)

    def mark(self, name: str, **attrs) -> None:
        """Emit a named point event (milestones, shard start/stop)."""
        fields = {"name": name}
        if attrs:
            fields["attrs"] = attrs
        self._emit("mark", **fields)

    # ------------------------------------------------------------------
    # run lifecycle
    # ------------------------------------------------------------------

    def open_run(self, **meta) -> None:
        """Open the trace: emit the schema-stamped ``run_start`` event."""
        self._run_started_ns = time.perf_counter_ns()
        self._emit("run_start", schema=TRACE_SCHEMA, meta=meta)

    def close_run(self) -> None:
        """Close the trace: snapshot metrics and emit ``run_end``.

        Derives the ``rounds_per_sec`` gauge from the ``rounds``
        counter and the elapsed wall time since :meth:`open_run`.
        """
        elapsed_ns = 0
        if self._run_started_ns is not None:
            elapsed_ns = time.perf_counter_ns() - self._run_started_ns
        rounds = self.metrics.counter_values().get("rounds", 0)
        if rounds and elapsed_ns > 0:
            self.gauge("rounds_per_sec", rounds / (elapsed_ns / 1e9))
        self._emit(
            "run_end",
            counters=self.metrics.counter_values(),
            gauges=self.metrics.gauge_values(),
            elapsed_ns=int(elapsed_ns),
        )

    def flush(self) -> None:
        """Flush every sink."""
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self._sinks:
            sink.close()
