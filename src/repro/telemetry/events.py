"""Event model and schema validation for the telemetry plane.

A *trace* is an ordered sequence of flat, JSON-serialisable event
dicts.  Every event carries:

* ``kind`` — one of :data:`EVENT_KINDS`;
* ``src`` — the emitting actor (``"chief"`` or ``"shard:<id>"``);
* ``seq`` — a per-``src`` sequence number, strictly increasing;
* ``step`` — the training round the actor was in when it emitted
  (0 before the first round).

Kind-specific fields:

* ``run_start`` — ``schema`` (:data:`TRACE_SCHEMA`) plus a ``meta``
  dict describing the run (gar, attack, backend, ...);
* ``span`` — ``name`` and ``dur_ns`` (>= 0); block-path spans carry a
  ``rounds`` attribute covering several rounds in one event;
* ``counter`` — ``name``, cumulative ``value``, and the ``delta`` that
  produced it;
* ``gauge`` — ``name`` and the new ``value``;
* ``warning`` — ``name`` and a human-readable ``message`` (structured
  detail goes in ``attrs``);
* ``mark`` — a named point event (shard start/stop, run milestones);
* ``run_end`` — final ``counters``/``gauges`` snapshots and the run's
  ``elapsed_ns``.

Optional structured detail rides in an ``attrs`` sub-dict so it can
never collide with the core fields above.

The merged multiprocess trace interleaves chief and shard events in
drain order, which is causal per source but not globally: validation
therefore requires monotonicity (``seq`` strictly increasing, ``step``
non-decreasing) *per source*, never across sources.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["TRACE_SCHEMA", "EVENT_KINDS", "TraceError", "validate_events"]

#: Schema tag stamped into every ``run_start`` event (and therefore the
#: first line of every JSONL trace file).  Bump on incompatible changes.
TRACE_SCHEMA = "repro.trace/1"

#: The closed vocabulary of event kinds.
EVENT_KINDS = ("run_start", "span", "counter", "gauge", "warning", "mark", "run_end")

#: Fields every event must carry, whatever its kind.
_CORE_FIELDS = ("kind", "src", "seq", "step")

#: Kind-specific required fields (beyond the core fields).
_REQUIRED = {
    "run_start": ("schema",),
    "span": ("name", "dur_ns"),
    "counter": ("name", "value", "delta"),
    "gauge": ("name", "value"),
    "warning": ("name", "message"),
    "mark": ("name",),
    "run_end": ("counters", "gauges", "elapsed_ns"),
}


class TraceError(ConfigurationError):
    """A trace violated the event schema or its ordering invariants."""


def _fail(index: int, event: object, reason: str) -> None:
    raise TraceError(f"trace event {index}: {reason} (event: {event!r})")


def validate_events(events) -> list[dict]:
    """Check a trace against the schema; returns the events on success.

    Raises :class:`TraceError` on the first violation: unknown kind,
    missing field, wrong schema tag, a ``seq`` that fails to strictly
    increase within its source, or a ``step`` that goes backwards
    within its source.  The CLI's ``trace summarize`` and the CI
    telemetry-smoke job both route through here, so an out-of-order or
    truncated trace fails loudly instead of summarising garbage.
    """
    events = list(events)
    if not events:
        raise TraceError("trace is empty")
    first = events[0]
    if not isinstance(first, dict) or first.get("kind") != "run_start":
        _fail(0, first, "trace must open with a run_start event")
    if first.get("schema") != TRACE_SCHEMA:
        _fail(0, first, f"unsupported trace schema {first.get('schema')!r} (expected {TRACE_SCHEMA!r})")
    last_seq: dict[str, int] = {}
    last_step: dict[str, int] = {}
    run_starts = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(index, event, "event is not an object")
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            _fail(index, event, f"unknown event kind {kind!r}")
        for field in _CORE_FIELDS + _REQUIRED[kind]:
            if field not in event:
                _fail(index, event, f"missing required field {field!r}")
        if kind == "run_start":
            run_starts += 1
            if run_starts > 1:
                _fail(index, event, "duplicate run_start")
        src = event["src"]
        if not isinstance(src, str) or not src:
            _fail(index, event, f"src must be a non-empty string, got {src!r}")
        seq = event["seq"]
        if not isinstance(seq, int) or seq < 0:
            _fail(index, event, f"seq must be a non-negative integer, got {seq!r}")
        if src in last_seq and seq <= last_seq[src]:
            _fail(index, event, f"seq {seq} does not increase after {last_seq[src]} for src {src!r}")
        last_seq[src] = seq
        step = event["step"]
        if not isinstance(step, int) or step < 0:
            _fail(index, event, f"step must be a non-negative integer, got {step!r}")
        if step < last_step.get(src, 0):
            _fail(index, event, f"step {step} goes backwards after {last_step[src]} for src {src!r}")
        last_step[src] = step
        if kind == "span":
            dur = event["dur_ns"]
            if not isinstance(dur, int) or dur < 0:
                _fail(index, event, f"dur_ns must be a non-negative integer, got {dur!r}")
    return events
