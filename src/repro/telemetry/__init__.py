"""Unified telemetry plane: structured tracing, metrics, and sinks.

Zero-dependency observability for every execution surface of the
reproduction — the in-process :class:`~repro.distributed.cluster.Cluster`,
the fused :class:`~repro.distributed.engine.RoundEngine`, the
multiprocess runtime, the event-driven simulator, and campaign cells —
all emitting one schema-versioned event stream
(:data:`~repro.telemetry.events.TRACE_SCHEMA`).

The contract that makes telemetry safe to leave wired in everywhere:

* **disabled is free** — hot paths keep a ``None`` attribute and pay a
  single ``is None`` check (pinned by the off-path overhead test and a
  bench-cell guard);
* **enabled is bit-identical** — no telemetry code path ever draws
  from an RNG stream, so traces observe training without perturbing it
  (pinned by the golden-trace replay and the differential suites).
"""

from repro.telemetry.core import Counter, Gauge, MetricsRegistry, Telemetry
from repro.telemetry.events import EVENT_KINDS, TRACE_SCHEMA, TraceError, validate_events
from repro.telemetry.sinks import JsonlSink, MemorySink, QueueSink, Sink, StderrProgressSink
from repro.telemetry.timing import Stopwatch, best_of_ns
from repro.telemetry.trace import read_trace, render_trace_summary, summarize_trace

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "QueueSink",
    "Sink",
    "StderrProgressSink",
    "Stopwatch",
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceError",
    "best_of_ns",
    "read_trace",
    "render_trace_summary",
    "summarize_trace",
    "validate_events",
]
