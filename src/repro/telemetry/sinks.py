"""Pluggable event sinks for the telemetry plane.

A sink receives finished event dicts (see
:mod:`repro.telemetry.events`) and stores, forwards, or renders them.
Four are provided:

* :class:`JsonlSink` — one schema-versioned JSONL file per run, the
  durable trace the CLI's ``trace summarize`` reads back;
* :class:`MemorySink` — an in-process list, for tests and benchmarks;
* :class:`StderrProgressSink` — a rate-limited one-line progress
  reporter for long runs;
* :class:`QueueSink` — batches events onto a ``multiprocessing`` queue,
  the shard side of the runtime's telemetry merge.

Sinks never inspect or mutate events beyond serialisation, and none of
them touches an RNG stream — a sink can therefore never perturb
training results.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = ["Sink", "JsonlSink", "MemorySink", "StderrProgressSink", "QueueSink"]


class Sink:
    """Base sink: the three-method contract (`emit`, `flush`, `close`)."""

    def emit(self, event: dict) -> None:
        """Receive one finished event dict."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push any buffered events to their destination (default no-op)."""

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""
        self.flush()


class JsonlSink(Sink):
    """Write events to a JSONL file, one JSON object per line.

    One file per run: the file is truncated when the first event
    arrives (opened lazily, so a run that never emits leaves no file
    behind) and parent directories are created on demand.  Writes stay
    unbuffered-ish (flushed on demand), so a crashed run's trace is
    readable up to its final event.
    """

    def __init__(self, path):
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        """Where the trace is (or will be) written."""
        return self._path

    def emit(self, event: dict) -> None:
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.flush()
            handle.close()


class MemorySink(Sink):
    """Collect events in a list (`.events`) — the test double."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> list[dict]:
        """Every collected event of the given kind, in emission order."""
        return [event for event in self.events if event.get("kind") == kind]

    def named(self, name: str) -> list[dict]:
        """Every collected event with the given ``name`` field."""
        return [event for event in self.events if event.get("name") == name]


class StderrProgressSink(Sink):
    """Periodic one-line progress reports on stderr.

    Prints at most one line per ``interval`` seconds (wall clock),
    summarising the latest step seen; warnings always print
    immediately.  Meant for long interactive runs — it renders, it
    never stores.
    """

    def __init__(self, interval: float = 5.0, stream=None):
        self._interval = float(interval)
        self._stream = stream if stream is not None else sys.stderr
        self._last_report = 0.0

    def emit(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "warning":
            print(
                f"[telemetry] warning {event.get('name')}: {event.get('message')}",
                file=self._stream,
            )
            return
        now = time.monotonic()
        if now - self._last_report < self._interval:
            return
        self._last_report = now
        print(
            f"[telemetry] {event.get('src')} step {event.get('step')} ({kind})",
            file=self._stream,
        )


class QueueSink(Sink):
    """Buffer events and ship them in batches over a process queue.

    The multiprocess runtime's shard side: events accumulate locally
    and :meth:`flush` puts the whole batch (a plain list of dicts) on
    the queue in one call, so per-round IPC stays a single token.  The
    chief drains batches and forwards each event — with its original
    ``src`` and ``seq`` — into the merged run trace.
    """

    def __init__(self, queue):
        self._queue = queue
        self._buffer: list[dict] = []

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    def flush(self) -> None:
        if self._buffer:
            batch, self._buffer = self._buffer, []
            self._queue.put(batch)
