"""Content-addressed, resumable result store.

Every (cell config, seed, mode, environment) combination maps to one
key — the SHA-256 of its canonical JSON identity — and the store is a
directory of one JSON record per key.  The consequences fall out of the
addressing scheme:

* re-running a campaign skips every key already present (warm cache);
* a campaign killed mid-run resumes exactly where it stopped, because
  each record is written atomically the moment its run finishes;
* *any* change to a field that affects the numbers — hyperparameters,
  GAR, attack, DP budget, mode, data seed, model spec — changes the key
  and provably misses the cache.

Two fields are deliberately **excluded** from the key: the cell ``name``
(presentation only — renaming a cell must not re-run it) and the
``seeds`` list (each record is one seed's run; the seed itself is part
of the key, the list a cell happens to bundle is not).  Everything else
in :meth:`ExperimentConfig.to_dict` is included verbatim.

Records are plain JSON.  Python's ``json`` round-trips finite floats
exactly (``repr``-based), so a loaded history is bit-identical to the
run that produced it — which is what lets the differential suite
compare store contents against live runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig

__all__ = ["STORE_SCHEMA", "ResultStore", "cell_key"]

#: Bump when the record layout or key derivation changes; old stores
#: are then rejected instead of silently mixing incompatible records.
STORE_SCHEMA = "repro.campaign-store/1"


def _canonical_config_payload(config: ExperimentConfig) -> dict:
    """The config's identity payload: everything numerically meaningful.

    ``name`` and ``seeds`` are dropped (see module docstring); so are
    the execution-backend fields (``backend``/``num_shards``/
    ``round_timeout``): the multiprocess backend is bit-identical to
    in-process, so *where* a cell ran is not part of its numerical
    identity — and keys minted before those fields existed stay valid.
    The wire codec (``codec``/``codec_kwargs``) is the opposite case: a
    lossy codec changes what the server aggregates, so it stays in the
    identity — while the *measured* byte counts live only in records.
    The ``*_kwargs`` pair lists are sorted by key so that two specs
    spelling the same kwargs in a different order collide, as they
    should.
    """
    payload = config.to_dict()
    payload.pop("name")
    payload.pop("seeds")
    for backend_field in ("backend", "num_shards", "round_timeout"):
        payload.pop(backend_field, None)
    # Checkpointing is run infrastructure (never part of the numbers);
    # the fault plan IS numerically meaningful, but only when set —
    # popping falsy values keeps every pre-fault-plane key stable.
    for infra_field in ("checkpoint", "checkpoint_every"):
        payload.pop(infra_field, None)
    for fault_field in ("faults", "faults_kwargs"):
        if not payload.get(fault_field):
            payload.pop(fault_field, None)
    for kwargs_field in (
        "attack_kwargs",
        "policy_kwargs",
        "latency_kwargs",
        "codec_kwargs",
        "faults_kwargs",
    ):
        if kwargs_field in payload:
            payload[kwargs_field] = sorted(
                payload[kwargs_field], key=lambda pair: pair[0]
            )
    return payload


def cell_key(
    config: ExperimentConfig,
    seed: int,
    *,
    mode: str = "train",
    data_seed: int = 0,
    model_spec: dict | str | None = None,
) -> str:
    """The content address of one run: config + seed + mode + environment.

    Deterministic across processes and platforms: the identity document
    is serialised with sorted keys and no whitespace before hashing.
    """
    identity = {
        "schema": STORE_SCHEMA,
        "config": _canonical_config_payload(config),
        "seed": int(seed),
        "mode": mode,
        "data_seed": int(data_seed),
        "model": model_spec,
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """A directory of content-addressed campaign records.

    Layout::

        <root>/meta.json             {"schema": "repro.campaign-store/1"}
        <root>/records/<k[:2]>/<k>.json

    Records are sharded by the first two key characters to keep
    directories small on large campaigns.  Writes are atomic (temp file
    + ``os.replace``), so a killed campaign never leaves a torn record —
    a key either resolves to a complete run or is missing.
    """

    def __init__(self, root: str | Path):
        self._root = Path(root)
        self._records = self._root / "records"
        self._meta_path = self._root / "meta.json"
        if self._meta_path.exists():
            try:
                meta = json.loads(self._meta_path.read_text())
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"corrupt store metadata at {self._meta_path}: {error}"
                ) from None
            if meta.get("schema") != STORE_SCHEMA:
                raise ConfigurationError(
                    f"store at {self._root} has schema {meta.get('schema')!r}; "
                    f"this build expects {STORE_SCHEMA!r}"
                )

    def _ensure_layout(self) -> None:
        # Created on first write, not on open: read-only consumers
        # (dry runs, reports) pointed at a typo'd path see an empty
        # store instead of leaving directories behind.
        if not self._meta_path.exists():
            self._records.mkdir(parents=True, exist_ok=True)
            self._meta_path.write_text(json.dumps({"schema": STORE_SCHEMA}) + "\n")

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def path_for(self, key: str) -> Path:
        """Where ``key``'s record lives (whether or not it exists yet)."""
        if len(key) < 3:
            raise ConfigurationError(f"malformed store key {key!r}")
        return self._records / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether a complete record exists for ``key``."""
        return self.path_for(key).exists()

    __contains__ = has

    def load(self, key: str) -> dict:
        """The record stored under ``key`` (KeyError if absent)."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise KeyError(key) from None

    def save(self, key: str, record: dict) -> Path:
        """Atomically write ``record`` under ``key``; returns its path.

        The temp file lives in the record's final directory, so
        ``os.replace`` is a same-filesystem rename: concurrent or
        interrupted writers can never expose a partial record.
        """
        self._ensure_layout()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.parent / f".{key}.tmp.{os.getpid()}"
        temporary.write_text(json.dumps(record, sort_keys=True))
        os.replace(temporary, path)
        return path

    def keys(self) -> list[str]:
        """Every stored key, sorted (stable across filesystems)."""
        if not self._records.exists():
            return []
        return sorted(path.stem for path in self._records.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self._root)!r}, records={len(self)})"
