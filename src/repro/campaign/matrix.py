"""Declarative scenario matrices: one JSON document, many experiment cells.

The paper's evidence is a grid — GAR x attack x privacy noise x
(alpha, f, n) — and PR 3 added three more axes (policy, latency,
participation).  A *scenario matrix* describes such a grid declaratively:

* ``base`` — fields shared by every cell (any
  :class:`repro.experiments.config.ExperimentConfig` field, plus the
  reserved ``mode``);
* ``axes`` — ``{field: [value, ...]}``; the cartesian product of the
  axis values, in the order the document lists them (last axis varies
  fastest), generates the grid cells;
* ``exclude`` — partial cell dicts; a grid cell matching *every* pair
  of any exclude entry is dropped;
* ``include`` — explicit extra cells (full field dicts merged over
  ``base``) appended after the grid, exempt from ``exclude``;
* ``mode`` — ``"train"`` (synchronous :meth:`Experiment.run`) or
  ``"simulate"`` (event-driven :meth:`Experiment.simulate`), settable
  globally, per axis, or per cell;
* ``seeds`` — either inherited from ``base``/cells as an explicit list,
  or derived per cell: ``{"count": k, "root": r}`` draws ``k`` distinct
  seeds per cell from the :class:`repro.rng.SeedTree` stream at
  ``("campaign", cell_name)``, so every cell gets independent,
  reproducible seeds from one campaign root.

Expansion is a pure function of the document: the same matrix always
yields the same cells in the same order (the property suite enforces
determinism, order stability and the product-minus-exclusions count).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.rng import SeedTree

__all__ = [
    "CAMPAIGN_MODES",
    "CampaignCell",
    "ScenarioMatrix",
    "derive_cell_seeds",
    "expand_matrix",
]

#: How a cell is executed: the synchronous loop or the event simulator.
CAMPAIGN_MODES = ("train", "simulate")

#: Top-level keys a matrix document may carry.
_MATRIX_KEYS = frozenset(
    {
        "name",
        "base",
        "axes",
        "exclude",
        "include",
        "mode",
        "name_template",
        "seeds",
        "model",
        "data_seed",
        "report",
    }
)


@dataclass(frozen=True)
class CampaignCell:
    """One concrete cell of a campaign: a config plus its execution mode."""

    config: ExperimentConfig
    mode: str = "train"

    def __post_init__(self) -> None:
        if self.mode not in CAMPAIGN_MODES:
            raise ConfigurationError(
                f"cell mode must be one of {CAMPAIGN_MODES}, got {self.mode!r}"
            )

    @property
    def name(self) -> str:
        """The cell's unique name (the config's)."""
        return self.config.name


def derive_cell_seeds(root_seed: int, cell_name: str, count: int) -> tuple[int, ...]:
    """``count`` distinct per-cell seeds from the campaign's seed tree.

    Seeds are drawn from the stream at ``("campaign", cell_name)`` under
    ``root_seed``, so they are deterministic in (root, cell name, count)
    and independent across cells.  A shorter prefix of a longer draw is
    stable: asking for 3 seeds returns the first 3 of the 5-seed answer.
    """
    if count < 1:
        raise ConfigurationError(f"seed count must be >= 1, got {count}")
    generator = SeedTree(root_seed).generator("campaign", cell_name)
    seeds: list[int] = []
    seen: set[int] = set()
    while len(seeds) < count:
        candidate = int(generator.integers(0, 2**31))
        if candidate not in seen:
            seen.add(candidate)
            seeds.append(candidate)
    return tuple(seeds)


def _format_value(value) -> str:
    """Human-readable axis value for auto-generated cell names."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render_name(template: str | None, assignment: dict, merged: dict) -> str:
    """The cell name: template over the merged fields, else the axis tuple."""
    if template is None:
        return ",".join(
            f"{axis}={_format_value(value)}" for axis, value in assignment.items()
        )
    values = {key: _format_value(value) for key, value in merged.items()}
    try:
        return template.format(**values)
    except (KeyError, IndexError) as error:
        raise ConfigurationError(
            f"name_template {template!r} references unknown field {error}"
        ) from None


def _matches(candidate: dict, pattern: dict) -> bool:
    """Whether ``candidate`` carries every ``pattern`` key at its value."""
    return all(
        key in candidate and candidate[key] == value
        for key, value in pattern.items()
    )


def _build_cell(
    merged: dict,
    *,
    name: str,
    default_mode: str,
    seed_rule: dict | None,
) -> CampaignCell:
    """Turn one merged field dict into a validated :class:`CampaignCell`."""
    payload = dict(merged)
    payload.setdefault("name", name)
    mode = payload.pop("mode", default_mode)
    if mode not in CAMPAIGN_MODES:
        raise ConfigurationError(
            f"cell {payload['name']!r}: mode must be one of {CAMPAIGN_MODES}, "
            f"got {mode!r}"
        )
    if "seeds" not in payload and seed_rule is not None:
        payload["seeds"] = derive_cell_seeds(
            seed_rule["root"], payload["name"], seed_rule["count"]
        )
    return CampaignCell(config=ExperimentConfig.from_dict(payload), mode=mode)


def _parse_seed_rule(spec) -> dict | None:
    """Normalise the matrix-level ``seeds`` entry.

    ``None`` means "cells must carry their own seeds (or use the config
    default)"; a dict ``{"count": k, "root": r}`` derives per-cell seeds.
    A plain list is shorthand for putting ``seeds`` in ``base``.
    """
    if spec is None:
        return None
    if isinstance(spec, dict):
        unknown = set(spec) - {"count", "root"}
        if unknown:
            raise ConfigurationError(
                f"seeds rule has unknown keys: {', '.join(sorted(unknown))}"
            )
        count = spec.get("count")
        if not isinstance(count, int) or count < 1:
            raise ConfigurationError(
                f"seeds rule needs an integer count >= 1, got {count!r}"
            )
        return {"count": count, "root": int(spec.get("root", 0))}
    if isinstance(spec, (list, tuple)):
        return {"explicit": tuple(int(seed) for seed in spec)}
    raise ConfigurationError(
        f"matrix seeds must be a list or {{'count', 'root'}} rule, got {spec!r}"
    )


def expand_matrix(document: dict) -> list[CampaignCell]:
    """Expand a matrix document into its ordered list of concrete cells.

    Order is deterministic: the cartesian product of the axes in
    document order (last axis varies fastest), then the ``include``
    cells in document order.  Duplicate cell names are an error.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"scenario matrix must be a JSON object, got {type(document).__name__}"
        )
    unknown = set(document) - _MATRIX_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown matrix keys: {', '.join(sorted(unknown))}"
        )
    base = dict(document.get("base", {}))
    axes = document.get("axes", {})
    if not isinstance(axes, dict):
        raise ConfigurationError("matrix axes must be an object of value lists")
    for axis, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigurationError(
                f"axis {axis!r} must be a non-empty list of values"
            )
    excludes = document.get("exclude", [])
    if not isinstance(excludes, (list, tuple)) or any(
        not isinstance(pattern, dict) for pattern in excludes
    ):
        raise ConfigurationError(
            "matrix exclude must be a list of partial cell objects"
        )
    includes = document.get("include", [])
    if not isinstance(includes, (list, tuple)):
        raise ConfigurationError("matrix include must be a list of cell objects")
    default_mode = document.get("mode", "train")
    template = document.get("name_template")
    seed_rule = _parse_seed_rule(document.get("seeds"))
    if seed_rule is not None and "explicit" in seed_rule:
        base.setdefault("seeds", list(seed_rule["explicit"]))
        seed_rule = None

    cells: list[CampaignCell] = []
    names: set[str] = set()
    axis_names = list(axes)
    # No axes means no grid — an include-only matrix, not a single
    # empty-product cell.
    combinations = product(*(axes[axis] for axis in axis_names)) if axis_names else ()
    for combination in combinations:
        assignment = dict(zip(axis_names, combination))
        merged = {**base, **assignment}
        if any(_matches(merged, pattern) for pattern in excludes):
            continue
        name = merged.get("name") or _render_name(template, assignment, merged)
        merged.pop("name", None)
        cell = _build_cell(
            merged, name=name, default_mode=default_mode, seed_rule=seed_rule
        )
        if cell.name in names:
            raise ConfigurationError(
                f"matrix expansion produced duplicate cell name {cell.name!r} "
                "(add distinguishing axes to name_template)"
            )
        names.add(cell.name)
        cells.append(cell)
    for index, extra in enumerate(includes):
        if not isinstance(extra, dict):
            raise ConfigurationError(
                f"include entries must be objects, got {type(extra).__name__}"
            )
        merged = {**base, **extra}
        name = merged.pop("name", None)
        if name is None:
            raise ConfigurationError(f"include entry {index} needs a 'name'")
        cell = _build_cell(
            merged, name=name, default_mode=default_mode, seed_rule=seed_rule
        )
        if cell.name in names:
            raise ConfigurationError(
                f"include entry {index} duplicates cell name {cell.name!r}"
            )
        names.add(cell.name)
        cells.append(cell)
    if not cells:
        raise ConfigurationError("matrix expands to zero cells")
    return cells


@dataclass(frozen=True)
class ScenarioMatrix:
    """A parsed campaign document: cells plus the shared environment."""

    name: str
    cells: tuple[CampaignCell, ...]
    model_spec: dict | str | None = None
    data_seed: int = 0
    report_spec: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if not self.cells:
            raise ConfigurationError("campaign needs at least one cell")

    @classmethod
    def from_dict(cls, document: dict) -> "ScenarioMatrix":
        """Parse and expand a matrix document."""
        cells = expand_matrix(document)
        report_spec = document.get("report", {})
        if not isinstance(report_spec, dict):
            raise ConfigurationError("matrix report spec must be an object")
        return cls(
            name=document.get("name", "campaign"),
            cells=tuple(cells),
            model_spec=document.get("model"),
            data_seed=int(document.get("data_seed", 0)),
            report_spec=dict(report_spec),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioMatrix":
        """Load a matrix document from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def smoke(self) -> "ScenarioMatrix":
        """A seconds-scale variant: <= 5 steps and one seed per cell.

        Smoke cells hash to *different* store keys than their full-size
        originals (the trimmed fields are part of the key), so a smoke
        pass never pollutes a real campaign's cache.
        """
        cells = tuple(
            CampaignCell(
                config=cell.config.with_updates(
                    num_steps=min(cell.config.num_steps, 5),
                    eval_every=min(cell.config.eval_every, 5),
                    seeds=cell.config.seeds[:1],
                ),
                mode=cell.mode,
            )
            for cell in self.cells
        )
        return ScenarioMatrix(
            name=self.name,
            cells=cells,
            model_spec=self.model_spec,
            data_seed=self.data_seed,
            report_spec=self.report_spec,
        )

    @property
    def total_runs(self) -> int:
        """Number of (cell, seed) runs the campaign describes."""
        return sum(len(cell.config.seeds) for cell in self.cells)

    def axis_values(self, field_name: str) -> list:
        """Distinct values of one config field across cells, in cell order."""
        values: list = []
        for cell in self.cells:
            value = getattr(cell.config, field_name, None)
            if value not in values:
                values.append(value)
        return values

    def __len__(self) -> int:
        return len(self.cells)
