"""Campaign execution: shard pending cells over the job executor.

:func:`plan_campaign` joins a :class:`~repro.campaign.matrix.ScenarioMatrix`
against a :class:`~repro.campaign.store.ResultStore` and splits the
campaign's (cell, seed) runs into *completed* (already content-addressed
in the store) and *pending*.  :func:`run_campaign` executes the pending
runs — serially or over the :func:`repro.pipeline.parallel.map_tasks`
multiprocessing executor — persisting each record the moment it
finishes, so killing a campaign loses at most the in-flight runs and
re-invoking the same manifest completes only the missing cells.

Each run dispatches through the same entry points a direct caller would
use — :meth:`repro.pipeline.builder.Experiment.run` for ``"train"``
cells, :meth:`~repro.pipeline.builder.Experiment.simulate` for
``"simulate"`` cells — with the seed passed straight through, so
campaign execution is bit-identical to calling ``run_config`` /
``simulate`` by hand (the differential suite enforces this, parallel
and serial, cold and warm cache).

Transiently failing runs are retried with seed-deterministic
exponential backoff; a run that fails every attempt (or degrades under
its fault plan) is *quarantined* — a structured failure record lands
under its store key so the campaign finishes and resumes skip the
known-bad cell — instead of aborting the whole campaign.
Deterministic misconfiguration (the :class:`ReproError` taxonomy)
still aborts loudly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.campaign.matrix import CampaignCell, ScenarioMatrix
from repro.campaign.store import STORE_SCHEMA, ResultStore, cell_key
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError, DegradedRunError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.models.base import Model
from repro.pipeline.builder import Experiment
from repro.pipeline.callbacks import VNRatioCallback
from repro.pipeline.parallel import map_tasks
from repro.rng import SeedTree
from repro.simulation.run import SimulationResult

__all__ = [
    "CampaignPlan",
    "CampaignRunSummary",
    "CellJob",
    "execute_cell",
    "plan_campaign",
    "run_campaign",
]


@dataclass(frozen=True)
class CellJob:
    """One pending (cell, seed) run, picklable for the process pool.

    ``telemetry`` is the run's JSONL trace path (or ``None``): run
    infrastructure, deliberately excluded from the content-addressed
    store key, so warming a store with telemetry on and resuming with
    it off (or vice versa) still joins on the same cells.
    """

    key: str
    name: str
    seed: int
    mode: str
    config: ExperimentConfig
    model: Model
    train_dataset: Dataset
    test_dataset: Dataset | None
    telemetry: str | None = None


@dataclass(frozen=True)
class CampaignPlan:
    """The join of a matrix against a store: what runs, what's cached."""

    matrix: ScenarioMatrix
    pending: tuple[CellJob, ...]
    completed: tuple[tuple[str, int, str], ...]  # (cell name, seed, key)

    @property
    def total_runs(self) -> int:
        """All (cell, seed) runs the campaign describes."""
        return len(self.pending) + len(self.completed)


@dataclass
class CampaignRunSummary:
    """What one :func:`run_campaign` invocation did."""

    campaign: str
    total_runs: int
    executed: int
    skipped: int
    store_root: str
    diverged: list[tuple[str, int]] = field(default_factory=list)
    quarantined: list[tuple[str, int]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line progress summary."""
        line = (
            f"campaign {self.campaign!r}: {self.executed} run(s) executed, "
            f"{self.skipped} cached, {self.total_runs} total"
        )
        if self.diverged:
            cells = ", ".join(f"{name}/seed{seed}" for name, seed in self.diverged)
            line += f"; non-finite results: {cells}"
        if self.quarantined:
            cells = ", ".join(
                f"{name}/seed{seed}" for name, seed in self.quarantined
            )
            line += f"; quarantined: {cells}"
        return line


def _vn_payload(callback: VNRatioCallback | None) -> dict | None:
    """Summary of the run's VN trajectory, None when unavailable."""
    if callback is None:
        return None
    try:
        trajectory = callback.trajectory
        if not trajectory.steps:
            return None
        return {
            "k_f": trajectory.k_f,
            "median_clean": trajectory.median_ratio("clean"),
            "median_submitted": trajectory.median_ratio("submitted"),
            "clean_violation_fraction": trajectory.clean_violation_fraction,
            "submitted_violation_fraction": trajectory.submitted_violation_fraction,
        }
    except ReproError:
        return None


def _base_record(
    job: CellJob, history, final_parameters, privacy, bytes_on_wire=None
) -> dict:
    accuracies = history.accuracies
    return {
        "schema": STORE_SCHEMA,
        "key": job.key,
        "name": job.name,
        "seed": int(job.seed),
        "mode": job.mode,
        "config": job.config.to_dict(),
        "history": history.to_dict(),
        "final_loss": float(history.final_loss) if len(history) else None,
        "final_accuracy": float(accuracies[-1]) if len(accuracies) else None,
        "min_loss": float(history.min_loss) if len(history) else None,
        "final_parameters": np.asarray(final_parameters, dtype=np.float64).tolist(),
        "privacy": privacy.to_dict() if privacy is not None else None,
        "bytes_on_wire": int(bytes_on_wire) if bytes_on_wire is not None else None,
        "vn": None,
        "simulation": None,
        "telemetry": job.telemetry,
    }


def execute_cell(job: CellJob) -> dict:
    """Run one (cell, seed) to completion and package its store record.

    Module-level so :func:`repro.pipeline.parallel.map_tasks` can ship
    it to pool workers.  The VN-ratio trajectory is tracked for
    synchronous cells with at least two honest workers (the estimator
    needs a cross-worker sample); the callback only observes the run, so
    attaching it never perturbs the numbers.
    """
    experiment = Experiment.from_config(
        job.config,
        job.model,
        job.train_dataset,
        job.test_dataset,
        seed=job.seed,
        telemetry=job.telemetry,
    )
    if job.mode == "simulate":
        result: SimulationResult = experiment.simulate()
        record = _base_record(
            job,
            result.history,
            result.final_parameters,
            result.privacy,
            bytes_on_wire=result.bytes_on_wire,
        )
        worst_epsilon = None
        if result.per_worker_privacy:
            worst_epsilon = max(
                report.basic.epsilon for report in result.per_worker_privacy.values()
            )
        record["simulation"] = {
            "virtual_time": result.virtual_time,
            "rounds": result.rounds,
            "policy": result.config.get("policy"),
            "policy_stats": result.policy_stats,
            "participation_rates": {
                str(worker): rate for worker, rate in result.participation_rates.items()
            },
            "worst_amplified_epsilon": worst_epsilon,
            "tightest_amplified_epsilon": result.tightest_worker_epsilon,
        }
        return record
    vn_callback = None
    if experiment.num_honest >= 2:
        vn_callback = VNRatioCallback()
        experiment.callbacks.append(vn_callback)
    training = experiment.run()
    record = _base_record(
        job,
        training.history,
        training.final_parameters,
        training.privacy,
        bytes_on_wire=training.bytes_on_wire,
    )
    record["vn"] = _vn_payload(vn_callback)
    return record


def _quarantine_record(job: CellJob, error: BaseException, attempts: int) -> dict:
    """The structured failure record stored for a permanently failing run.

    Shares the store schema and identity fields with healthy records but
    carries ``"quarantined": True`` and no history/parameters — reports
    skip it, resumes treat the key as settled (delete the record file to
    force a re-run).
    """
    return {
        "schema": STORE_SCHEMA,
        "key": job.key,
        "name": job.name,
        "seed": int(job.seed),
        "mode": job.mode,
        "config": job.config.to_dict(),
        "quarantined": True,
        "error": {"type": type(error).__name__, "message": str(error)},
        "attempts": int(attempts),
        "telemetry": job.telemetry,
    }


@dataclass(frozen=True)
class _KeyedExecute:
    """Pairs each result with its job's store key, retrying transients.

    Needed because results may arrive out of submission order; a frozen
    dataclass (not a closure) so pool workers can pickle it.

    Failures are retried up to ``retries`` times with exponential
    backoff; the jitter is drawn from the run's own :class:`SeedTree`
    under the ``"retry"`` path (never wall-clock or the global RNG), so
    a replayed campaign sleeps the exact same schedule.  A run that
    fails every attempt resolves to a quarantine record instead of
    raising, so one bad cell cannot abort the campaign.

    The package's own :class:`ReproError` taxonomy is deterministic
    (bad configs, unknown components): retrying cannot help and
    quarantining would silently bury a usage error, so it propagates —
    as does ``KeyboardInterrupt`` (a genuine kill).  The one exception
    is :class:`DegradedRunError`: a cell whose fault plan leaves no
    honest worker is a *result* of the scenario, quarantined
    immediately without retry.
    """

    execute: Callable[["CellJob"], dict]
    retries: int = 2
    backoff: float = 0.25

    def __call__(self, job: "CellJob") -> tuple[str, dict]:
        attempts = self.retries + 1
        for attempt in range(1, attempts + 1):
            try:
                return job.key, self.execute(job)
            except DegradedRunError as error:
                return job.key, _quarantine_record(job, error, attempt)
            except ReproError:
                raise
            except Exception as error:
                if attempt == attempts:
                    return job.key, _quarantine_record(job, error, attempts)
                jitter = SeedTree(job.seed).generator(
                    "retry", job.key, attempt
                ).random()
                time.sleep(self.backoff * 2 ** (attempt - 1) * (0.5 + jitter))
        raise AssertionError("unreachable")  # pragma: no cover


def plan_campaign(
    matrix: ScenarioMatrix,
    store: ResultStore,
    *,
    smoke: bool = False,
    telemetry: str | None = None,
) -> CampaignPlan:
    """Join the matrix against the store and list the pending runs.

    The shared environment (dataset + model) is built only when at
    least one run is actually pending: planning against a warm store —
    a dry run, a report, a no-op resume — is pure key arithmetic.

    ``telemetry`` names a *directory*: each pending run then writes a
    JSONL trace at ``<telemetry>/<key>.jsonl`` (the store key is the
    natural per-run name — content-addressed, collision-free, and the
    record stamps the path so reports can link result to trace).
    """
    if smoke:
        matrix = matrix.smoke()
    missing: list[tuple[CampaignCell, int, str]] = []
    completed: list[tuple[str, int, str]] = []
    for cell in matrix.cells:
        for seed in cell.config.seeds:
            key = job_key(cell, seed, matrix)
            if store.has(key):
                completed.append((cell.name, int(seed), key))
            else:
                missing.append((cell, int(seed), key))
    pending: list[CellJob] = []
    if missing:
        model, train_set, test_set = build_environment(
            matrix.model_spec, matrix.data_seed
        )
        pending = [
            CellJob(
                key=key,
                name=cell.name,
                seed=seed,
                mode=cell.mode,
                config=cell.config,
                model=model,
                train_dataset=train_set,
                test_dataset=test_set,
                telemetry=(
                    str(Path(telemetry) / f"{key}.jsonl")
                    if telemetry is not None
                    else None
                ),
            )
            for cell, seed, key in missing
        ]
    return CampaignPlan(matrix=matrix, pending=tuple(pending), completed=tuple(completed))


def job_key(cell: CampaignCell, seed: int, matrix: ScenarioMatrix) -> str:
    """The store key of one (cell, seed) run under the matrix environment."""
    return cell_key(
        cell.config,
        seed,
        mode=cell.mode,
        data_seed=matrix.data_seed,
        model_spec=matrix.model_spec,
    )


def run_campaign(
    matrix: ScenarioMatrix,
    store: ResultStore,
    *,
    max_workers: int | None = None,
    chunksize: int | None = None,
    smoke: bool = False,
    verbose: bool = False,
    execute: Callable[[CellJob], dict] | None = None,
    telemetry: str | None = None,
    retries: int = 2,
    retry_backoff: float = 0.25,
) -> CampaignRunSummary:
    """Execute every pending run of the campaign, persisting as it goes.

    Pending runs are sharded over ``max_workers`` processes (serial when
    ``None``/1); each finished record is written to the store
    immediately, in submission order, so an interrupted campaign resumes
    from exactly the completed prefix plus whatever later runs already
    landed.  ``execute`` is injectable for testing (it must stay a
    picklable module-level callable when ``max_workers`` > 1).

    ``chunksize`` batches (cell, seed) runs per pool claim: ``None``
    (the default) applies the executor's task-count heuristic
    (:func:`repro.pipeline.parallel.default_chunksize`), which stops
    swarms of tiny smoke cells from paying one IPC round-trip each.
    Records still persist as their chunk completes, so a kill loses at
    most the in-flight chunks; pass ``chunksize=1`` to restore
    per-run persistence granularity for long cells.

    ``telemetry`` names a trace directory (see :func:`plan_campaign`):
    every executed run writes ``<telemetry>/<key>.jsonl`` and its store
    record carries the path under the ``"telemetry"`` key.

    ``retries`` transient-failure re-attempts per run (exponential
    backoff starting at ``retry_backoff`` seconds, jitter drawn from the
    run's seed — deterministic, never wall-clock).  A run failing every
    attempt is *quarantined*: a structured failure record is stored
    under its key (so resumes skip it) and the campaign continues.
    """
    if execute is None:
        execute = execute_cell  # resolved late so tests can monkeypatch it
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if retry_backoff < 0:
        raise ConfigurationError(
            f"retry_backoff must be >= 0, got {retry_backoff}"
        )
    plan = plan_campaign(matrix, store, smoke=smoke, telemetry=telemetry)
    if verbose:
        print(
            f"campaign {matrix.name!r}: {len(plan.pending)} pending run(s), "
            f"{len(plan.completed)} cached, store {store.root}"
        )
        for job in plan.pending:
            print(f"  running {job.name} (seed {job.seed}, {job.mode})")
    summary = CampaignRunSummary(
        campaign=matrix.name,
        total_runs=plan.total_runs,
        executed=0,
        skipped=len(plan.completed),
        store_root=str(store.root),
    )
    jobs_by_key = {job.key: job for job in plan.pending}
    # Unordered: records are persisted as their pool chunk completes,
    # so one slow cell never holds finished results hostage — a kill
    # loses at most the in-flight chunks (exactly the in-flight *runs*
    # when chunksize=1; the heuristic default trades a coarser crash
    # granularity for amortised IPC on swarms of tiny cells).
    for key, record in map_tasks(
        _KeyedExecute(execute, retries=retries, backoff=retry_backoff),
        plan.pending,
        max_workers=max_workers,
        chunksize=chunksize,
        ordered=False,
    ):
        store.save(key, record)
        summary.executed += 1
        job = jobs_by_key[key]
        if record.get("quarantined"):
            summary.quarantined.append((job.name, job.seed))
            continue
        final_loss = record.get("final_loss")
        if final_loss is not None and not np.isfinite(final_loss):
            summary.diverged.append((job.name, job.seed))
    for name, seed, key in plan.completed:
        record = store.load(key)
        if record.get("quarantined"):
            summary.quarantined.append((name, seed))
            continue
        final_loss = record.get("final_loss")
        if final_loss is not None and not np.isfinite(final_loss):
            summary.diverged.append((name, seed))
    # Out-of-order completion must not leak into the summary: report
    # divergences in plan order regardless of which worker finished when.
    plan_order = {(job.name, job.seed): index for index, job in enumerate(plan.pending)}
    for index, (name, seed, _) in enumerate(plan.completed):
        plan_order[(name, seed)] = len(plan.pending) + index
    summary.diverged.sort(key=plan_order.__getitem__)
    summary.quarantined.sort(key=plan_order.__getitem__)
    return summary
