"""Campaign orchestration: scenario matrices, result store, runner, report.

The sweep-scale substrate over the experiment pipeline: a declarative
:class:`~repro.campaign.matrix.ScenarioMatrix` expands cartesian axes
(plus include/exclude overrides) into concrete
:class:`~repro.experiments.config.ExperimentConfig` cells; a
content-addressed :class:`~repro.campaign.store.ResultStore` makes
campaigns resumable and deduplicated; the runner shards pending
(cell, seed) runs over the multiprocessing executor, bit-identical to
serial/direct execution; and the report joins the store back into the
tables/ascii-figure layer.  CLI: ``python -m repro campaign``.
"""

from repro.campaign.matrix import (
    CAMPAIGN_MODES,
    CampaignCell,
    ScenarioMatrix,
    derive_cell_seeds,
    expand_matrix,
)
from repro.campaign.report import CAMPAIGN_METRICS, cell_results, render_campaign_report
from repro.campaign.runner import (
    CampaignPlan,
    CampaignRunSummary,
    CellJob,
    execute_cell,
    plan_campaign,
    run_campaign,
)
from repro.campaign.store import STORE_SCHEMA, ResultStore, cell_key

__all__ = [
    "CAMPAIGN_METRICS",
    "CAMPAIGN_MODES",
    "CampaignCell",
    "CampaignPlan",
    "CampaignRunSummary",
    "CellJob",
    "ResultStore",
    "STORE_SCHEMA",
    "ScenarioMatrix",
    "cell_key",
    "cell_results",
    "derive_cell_seeds",
    "execute_cell",
    "expand_matrix",
    "plan_campaign",
    "render_campaign_report",
    "run_campaign",
]
