"""Aggregate campaign reporting: join the store back into tables/figures.

The report is a pure function of (matrix, store contents): it recomputes
every cell's content address, loads whatever records exist, aggregates
across seeds, and renders

* a per-cell summary table (final/min loss, final accuracy, privacy
  budget, median VN ratio, virtual time — cross-seed means);
* optional paper-style pivot grids (``report`` spec in the matrix:
  ``{"rows": "gar", "cols": "attack", "metrics": ["final_accuracy"]}``)
  through :func:`repro.experiments.tables.format_campaign_grid`;
* optional mean-accuracy curves (``"curves": true``) through the
  existing :func:`repro.experiments.ascii_plot.ascii_line_plot` layer.

Because nothing time- or path-dependent enters the text, an interrupted
campaign that is later resumed produces a report byte-identical to an
uninterrupted run — the resumability test pins exactly that.
"""

from __future__ import annotations

import math

from repro.campaign.matrix import CampaignCell, ScenarioMatrix
from repro.campaign.runner import job_key
from repro.campaign.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.experiments.ascii_plot import ascii_line_plot
from repro.experiments.tables import format_campaign_cells, format_campaign_grid
from repro.metrics.aggregate import aggregate_accuracy
from repro.metrics.history import TrainingHistory

__all__ = ["CAMPAIGN_METRICS", "cell_results", "render_campaign_report"]

#: Metrics a report's pivot grids may aggregate.
CAMPAIGN_METRICS = (
    "final_accuracy",
    "final_loss",
    "min_loss",
    "epsilon",
    "vn_submitted",
)


def cell_results(
    matrix: ScenarioMatrix, store: ResultStore
) -> list[tuple[CampaignCell, list[dict]]]:
    """Each cell with its completed records (seed order, missing skipped).

    Quarantine records (permanently failed runs, see
    :func:`repro.campaign.runner.run_campaign`) carry no history and are
    excluded: the report treats a quarantined seed like a missing one.
    """
    results = []
    for cell in matrix.cells:
        records = []
        for seed in cell.config.seeds:
            key = job_key(cell, seed, matrix)
            if store.has(key):
                record = store.load(key)
                if not record.get("quarantined"):
                    records.append(record)
        results.append((cell, records))
    return results


def _mean(values: list[float | None]) -> float | None:
    """Mean of the non-missing values (None when nothing to average)."""
    concrete = [value for value in values if value is not None]
    if not concrete:
        return None
    return float(sum(concrete) / len(concrete))


def _record_epsilon(record: dict) -> float | None:
    """The record's end-to-end budget: basic-composition total epsilon."""
    privacy = record.get("privacy")
    if privacy is None:
        return None
    return float(privacy["basic"][0])


def _record_metric(record: dict, metric: str) -> float | None:
    """One record's value of a pivot metric."""
    if metric == "epsilon":
        return _record_epsilon(record)
    if metric == "vn_submitted":
        vn = record.get("vn")
        return None if vn is None else float(vn["median_submitted"])
    value = record.get(metric)
    return None if value is None else float(value)


def _summary_rows(results: list[tuple[CampaignCell, list[dict]]]) -> list[dict]:
    rows = []
    for cell, records in results:
        vn_medians = [
            record["vn"]["median_submitted"]
            for record in records
            if record.get("vn") is not None
        ]
        simulations = [
            record["simulation"]
            for record in records
            if record.get("simulation") is not None
        ]
        rows.append(
            {
                "name": cell.name,
                "mode": cell.mode,
                "seeds_done": len(records),
                "seeds_total": len(cell.config.seeds),
                "final_loss": _mean([record["final_loss"] for record in records]),
                "min_loss": _mean([record["min_loss"] for record in records]),
                "final_accuracy": _mean(
                    [record["final_accuracy"] for record in records]
                ),
                "epsilon": _mean([_record_epsilon(record) for record in records]),
                "vn_submitted": _mean(vn_medians),
                "virtual_time": _mean(
                    [simulation["virtual_time"] for simulation in simulations]
                ),
            }
        )
    return rows


def _pivot_sections(
    matrix: ScenarioMatrix, results: list[tuple[CampaignCell, list[dict]]]
) -> list[str]:
    spec = matrix.report_spec
    row_field = spec.get("rows")
    col_field = spec.get("cols")
    if row_field is None or col_field is None:
        return []
    metrics = spec.get("metrics", ["final_accuracy"])
    if isinstance(metrics, str):
        metrics = [metrics]
    for metric in metrics:
        if metric not in CAMPAIGN_METRICS:
            raise ConfigurationError(
                f"report metric must be one of {CAMPAIGN_METRICS}, got {metric!r}"
            )
    row_values = matrix.axis_values(row_field)
    col_values = matrix.axis_values(col_field)
    sections = []
    for metric in metrics:
        buckets: dict[tuple, list[float]] = {}
        for cell, records in results:
            coordinate = (
                getattr(cell.config, row_field),
                getattr(cell.config, col_field),
            )
            for record in records:
                value = _record_metric(record, metric)
                if value is not None and math.isfinite(value):
                    buckets.setdefault(coordinate, []).append(value)
        values = {
            coordinate: _mean(bucket) for coordinate, bucket in buckets.items()
        }
        precision = ".3f" if metric == "final_accuracy" else ".4g"
        sections.append(
            format_campaign_grid(
                metric, row_field, col_field, row_values, col_values, values,
                precision=precision,
            )
        )
    return sections


def _curve_section(results: list[tuple[CampaignCell, list[dict]]]) -> str | None:
    series = {}
    for cell, records in results:
        histories = [
            TrainingHistory.from_dict(record["history"]) for record in records
        ]
        histories = [history for history in histories if len(history.accuracies)]
        if not histories:
            continue
        try:
            stats = aggregate_accuracy(histories)
        except ValueError:
            continue  # seeds evaluated at different steps; nothing to average
        series[cell.name] = (stats.steps.tolist(), stats.mean.tolist())
    if not series:
        return None
    return ascii_line_plot(series, title="test accuracy (mean over completed seeds)")


def render_campaign_report(matrix: ScenarioMatrix, store: ResultStore) -> str:
    """The full campaign report for the store's current contents."""
    results = cell_results(matrix, store)
    done = sum(len(records) for _, records in results)
    total = matrix.total_runs
    sections = [
        f"=== campaign {matrix.name} ===\n"
        f"cells: {len(matrix.cells)}   runs: {done}/{total} completed"
    ]
    sections.append(format_campaign_cells(_summary_rows(results)))
    sections.extend(_pivot_sections(matrix, results))
    if matrix.report_spec.get("curves"):
        curves = _curve_section(results)
        if curves is not None:
            sections.append(curves)
    pending = [
        f"{cell.name} ({len(cell.config.seeds) - len(records)} seed(s) pending)"
        for cell, records in results
        if len(records) < len(cell.config.seeds)
    ]
    if pending:
        sections.append("pending: " + ", ".join(pending))
    return "\n\n".join(sections)
