"""Per-worker latency models (the ``latency`` component family).

A latency model answers one question: how long after the round's
broadcast does worker ``w``'s gradient reach the server?  The sample
for message ``(round, worker)`` is drawn from a generator seeded on
exactly that pair (the engine passes a fresh per-message stream), so a
message's delay is independent of event-processing order — the same
scenario replays identically whether it is simulated or enumerated.

Models:

* :class:`ConstantLatency` — every message takes ``delay`` seconds; at
  ``delay=0`` the simulator degenerates to the paper's sequential
  synchronous protocol (Section 2.1) and replays the synchronous
  cluster bit-identically.
* :class:`LognormalLatency` — ``median * exp(sigma * N(0,1))``, the
  classic heavy-ish right-skewed network delay.
* :class:`StragglerLatency` — heavy tail by mixture: a message (or a
  fixed set of straggler workers) is ``slowdown`` times slower with
  probability ``straggler_probability``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LognormalLatency",
    "StragglerLatency",
]


class LatencyModel(ABC):
    """Samples the broadcast-to-arrival delay of one message."""

    #: Registry name under the ``latency`` component family.
    name: str

    @abstractmethod
    def sample(self, round_index: int, worker: int, rng: np.random.Generator) -> float:
        """Delay (>= 0) for worker ``worker``'s round-``round_index`` message.

        ``rng`` is a fresh stream seeded on ``(round_index, worker)``;
        implementations must draw only from it (or not at all) so the
        sample is a pure function of the message identity.
        """


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` virtual seconds."""

    name = "constant"

    def __init__(self, delay: float = 0.0):
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self._delay = float(delay)

    @property
    def delay(self) -> float:
        """The fixed per-message delay."""
        return self._delay

    def sample(self, round_index: int, worker: int, rng: np.random.Generator) -> float:
        del round_index, worker, rng
        return self._delay

    def __repr__(self) -> str:
        return f"ConstantLatency(delay={self._delay})"


class LognormalLatency(LatencyModel):
    """Right-skewed delays: ``median * exp(sigma * N(0, 1))``."""

    name = "lognormal"

    def __init__(self, median: float = 1.0, sigma: float = 0.5):
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._median = float(median)
        self._sigma = float(sigma)

    @property
    def median(self) -> float:
        """Median delay (the lognormal's scale)."""
        return self._median

    @property
    def sigma(self) -> float:
        """Log-space standard deviation (the tail-heaviness knob)."""
        return self._sigma

    def sample(self, round_index: int, worker: int, rng: np.random.Generator) -> float:
        del round_index, worker
        return self._median * math.exp(self._sigma * rng.standard_normal())

    def __repr__(self) -> str:
        return f"LognormalLatency(median={self._median}, sigma={self._sigma})"


class StragglerLatency(LatencyModel):
    """Heavy-tail mixture: occasional (or designated) stragglers.

    Parameters
    ----------
    base:
        The fast-path delay.
    slowdown:
        Multiplier (>= 1) applied to straggling messages.
    straggler_probability:
        Chance that any given message straggles.
    straggler_workers:
        Workers that *always* straggle (deterministic slow nodes, handy
        for pinned scenarios); sampled stragglers come on top.
    """

    name = "straggler"

    def __init__(
        self,
        base: float = 1.0,
        slowdown: float = 10.0,
        straggler_probability: float = 0.1,
        straggler_workers: tuple[int, ...] | list[int] | None = None,
    ):
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        if slowdown < 1:
            raise ConfigurationError(f"slowdown must be >= 1, got {slowdown}")
        if not 0.0 <= straggler_probability <= 1.0:
            raise ConfigurationError(
                f"straggler_probability must be in [0, 1], got {straggler_probability}"
            )
        self._base = float(base)
        self._slowdown = float(slowdown)
        self._probability = float(straggler_probability)
        self._fixed = frozenset(
            int(worker) for worker in (straggler_workers or ())
        )

    @property
    def base(self) -> float:
        """Fast-path delay."""
        return self._base

    @property
    def slowdown(self) -> float:
        """Straggler delay multiplier."""
        return self._slowdown

    @property
    def straggler_probability(self) -> float:
        """Per-message straggle probability."""
        return self._probability

    @property
    def straggler_workers(self) -> frozenset[int]:
        """Workers that always straggle."""
        return self._fixed

    def sample(self, round_index: int, worker: int, rng: np.random.Generator) -> float:
        del round_index
        if worker in self._fixed:
            return self._base * self._slowdown
        if self._probability > 0.0 and rng.random() < self._probability:
            return self._base * self._slowdown
        return self._base

    def __repr__(self) -> str:
        return (
            f"StragglerLatency(base={self._base}, slowdown={self._slowdown}, "
            f"straggler_probability={self._probability}, "
            f"straggler_workers={sorted(self._fixed)})"
        )
