"""Partial-participation (client sampling) for barrier rounds.

The paper's protocol has every worker report every round; Section 7
names subsampling amplification as the open direction.  These samplers
implement the standard client-sampling schemes — each round, only a
subset of the honest workers participates, the server zero-fills the
rest (the Section 2.1 convention for non-received gradients), and each
worker's *realized* participation rate feeds
:func:`repro.privacy.amplification.amplify_by_rate` to produce its
amplified privacy report.

Sampling applies only to honest workers: the colluding Byzantine
workers are assumed worst-case always-on.  Each round's draw comes
from a per-round seeded stream, so participation is a pure function of
``(seed, round)`` — independent of event order, like everything else
in the simulator.

Every sampler guarantees at least one participant (an empty Poisson
draw falls back to the lowest-indexed candidate): a round with no
honest gradient would make the omniscient attack's observed cohort
empty and the round's loss measurement undefined.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "FullParticipation",
    "PARTICIPATION_KINDS",
    "ParticipationSampler",
    "PoissonParticipation",
    "UniformParticipation",
    "make_participation",
]

#: Participation kinds :func:`make_participation` accepts.
PARTICIPATION_KINDS = ("poisson", "uniform")


class ParticipationSampler(ABC):
    """Chooses the honest workers reporting in one barrier round."""

    #: Human-readable scheme name.
    name: str

    @property
    @abstractmethod
    def rate(self) -> float:
        """Nominal per-round participation probability."""

    @abstractmethod
    def sample(
        self,
        round_index: int,
        candidates: tuple[int, ...],
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        """The participating subset of ``candidates`` (sorted, non-empty).

        ``rng`` is a fresh per-round stream; implementations must draw
        only from it.
        """


class FullParticipation(ParticipationSampler):
    """Everyone, every round — the paper's Section 2.1 protocol."""

    name = "full"

    @property
    def rate(self) -> float:
        return 1.0

    def sample(self, round_index, candidates, rng):
        del round_index, rng
        return tuple(candidates)

    def __repr__(self) -> str:
        return "FullParticipation()"


def _validate_rate(rate: float) -> float:
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(
            f"participation rate must be in (0, 1], got {rate}"
        )
    return float(rate)


class PoissonParticipation(ParticipationSampler):
    """Independent Bernoulli(``rate``) inclusion per worker per round.

    This is the sampling scheme the amplification-by-subsampling bound
    is stated for; the realized per-worker rate concentrates around
    ``rate`` over many rounds.
    """

    name = "poisson"

    def __init__(self, rate: float):
        self._rate = _validate_rate(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def sample(self, round_index, candidates, rng):
        del round_index
        included = tuple(
            worker for worker in candidates if rng.random() < self._rate
        )
        if not included:
            # Deterministic non-empty fallback (see module docstring).
            return (min(candidates),)
        return included

    def __repr__(self) -> str:
        return f"PoissonParticipation(rate={self._rate})"


class UniformParticipation(ParticipationSampler):
    """A fixed-size uniform subset: ``max(1, round(rate * len))`` workers."""

    name = "uniform"

    def __init__(self, rate: float):
        self._rate = _validate_rate(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def sample(self, round_index, candidates, rng):
        del round_index
        count = max(1, int(round(self._rate * len(candidates))))
        if count >= len(candidates):
            return tuple(candidates)
        chosen = rng.choice(len(candidates), size=count, replace=False)
        return tuple(sorted(candidates[index] for index in chosen))

    def __repr__(self) -> str:
        return f"UniformParticipation(rate={self._rate})"


def make_participation(kind: str, rate: float) -> ParticipationSampler:
    """Build a sampler from ``(kind, rate)``; rate 1 is always full."""
    if rate == 1.0:
        return FullParticipation()
    if kind == "poisson":
        return PoissonParticipation(rate)
    if kind == "uniform":
        return UniformParticipation(rate)
    raise ConfigurationError(
        f"participation kind must be one of {PARTICIPATION_KINDS}, got {kind!r}"
    )
