"""Driving a simulation: callback loop and result packaging.

:class:`SimulationLoop` is the event-driven twin of
:class:`repro.pipeline.loop.TrainingLoop`: one iteration advances the
simulator to its next server update, records the honest-batch training
loss with the *same* stacked float pipeline (so sync-policy runs remain
bit-identical to the synchronous loop), stamps the update's virtual
wall-clock into the history, and fires every
:class:`repro.pipeline.callbacks.Callback` hook with a virtual-time
:class:`~repro.simulation.engine.SimStepResult`.

:class:`SimulationResult` extends the training result with the
simulation-only outputs: per-worker *amplified* privacy reports (via
the realized participation rates), the policy/engine counters, and the
total virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.metrics.history import TrainingHistory
from repro.models.base import Model
from repro.pipeline.callbacks import Callback, CallbackList
from repro.pipeline.loop import LoopState, record_honest_loss
from repro.pipeline.results import PrivacyReport
from repro.simulation.engine import ClusterSimulator
from repro.typing import Vector

__all__ = ["SimulationLoop", "SimulationResult"]


@dataclass
class SimulationResult:
    """Everything one simulated training run produces."""

    history: TrainingHistory
    final_parameters: Vector = field(repr=False)
    privacy: PrivacyReport | None
    per_worker_privacy: dict[int, PrivacyReport] | None
    participation_rates: dict[int, float] = field(repr=False)
    virtual_time: float = 0.0
    rounds: int = 0
    policy_stats: dict = field(default_factory=dict, repr=False)
    config: dict = field(default_factory=dict, repr=False)
    #: Total exact encoded wire traffic when a codec was configured.
    bytes_on_wire: int | None = None

    @property
    def final_loss(self) -> float:
        """Training loss at the last recorded step."""
        return self.history.final_loss

    @property
    def final_accuracy(self) -> float:
        """Test accuracy at the last evaluation (if any were recorded)."""
        return self.history.final_accuracy

    @property
    def tightest_worker_epsilon(self) -> float | None:
        """Smallest amplified basic-composition epsilon across workers.

        ``None`` when DP is off.  The *largest* such epsilon is the
        honest cohort's worst-case guarantee; the smallest shows the
        best amplification any worker enjoyed.
        """
        if not self.per_worker_privacy:
            return None
        return min(
            report.basic.epsilon for report in self.per_worker_privacy.values()
        )


class SimulationLoop:
    """Run server updates of a :class:`ClusterSimulator` with callbacks.

    Mirrors :class:`repro.pipeline.loop.TrainingLoop` hook for hook; the
    ``state.cluster`` handed to callbacks is the simulator itself, whose
    read surface is cluster-compatible.  The loss recorded after each
    update covers the honest workers whose gradients fed that update
    (at full participation: the whole cohort, exactly like the
    synchronous loop), evaluated at the pre-update parameters per
    Section 5.1's measurement protocol.
    """

    def __init__(
        self,
        simulator: ClusterSimulator,
        model: Model,
        history: TrainingHistory | None = None,
        callbacks: Iterable[Callback] = (),
    ):
        self._simulator = simulator
        self._model = model
        self._history = history if history is not None else TrainingHistory()
        self._callbacks = (
            callbacks if isinstance(callbacks, CallbackList) else CallbackList(callbacks)
        )

    @property
    def history(self) -> TrainingHistory:
        """The history this loop records into."""
        return self._history

    @property
    def callbacks(self) -> CallbackList:
        """The composed callback list."""
        return self._callbacks

    def run(self, num_steps: int) -> LoopState:
        """Advance through up to ``num_steps`` server updates."""
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        state = LoopState(
            cluster=self._simulator,  # duck-typed: cluster-compatible surface
            model=self._model,
            history=self._history,
            callbacks=self._callbacks,
            num_steps=int(num_steps),
        )
        honest_workers = self._simulator.honest_workers
        callbacks = self._callbacks
        callbacks.on_train_start(state)
        for _ in range(num_steps):
            if callbacks.should_stop(state):
                state.stopped_early = True
                break
            callbacks.on_step_start(state)
            parameters_before = self._simulator.parameters
            result = self._simulator.advance()
            state.last_result = result
            record_honest_loss(
                self._model,
                self._history,
                self._simulator.step_count,
                parameters_before,
                [honest_workers[worker_id] for worker_id in result.participating],
            )
            self._history.record_virtual_time(
                self._simulator.step_count, self._simulator.clock
            )
            callbacks.on_step_end(state, result)
        callbacks.on_train_end(state)
        return state
