"""The deterministic discrete-event cluster simulator.

:class:`ClusterSimulator` generalises the sequential synchronous
protocol of Section 2.1 — which :class:`repro.distributed.cluster.Cluster`
hard-codes — to an event-driven execution with a virtual clock:

1. a :class:`~repro.simulation.events.ModelBroadcast` opens a round,
   participation sampling picks the reporting honest workers, and one
   :class:`~repro.simulation.events.WorkerWake` per participant enters
   the heap at the broadcast instant;
2. wakes that share a timestamp and round are processed as one cohort
   through :func:`repro.distributed.worker.compute_cohort` (the same
   vectorized pipeline the synchronous cluster uses), after which the
   colluding adversary crafts its Byzantine gradient exactly as in
   ``Cluster.step``;
3. each message is assigned a latency drawn from a stream seeded on
   ``(round, worker)`` and becomes a
   :class:`~repro.simulation.events.GradientArrival`;
4. on arrival the network's per-message drop decision resolves the slot
   (dropped messages deliver zeros — the server "considers any
   non-received gradient to be 0"), and the server *policy* decides
   whether to aggregate.

Every random draw comes from a path-addressed stream (worker batches
and noise, the attack, participation, latency, network drops), so a
simulation is a pure function of its seeds: replays are bit-identical
regardless of how events interleave in the heap.  In particular, with
:class:`~repro.simulation.policies.SyncPolicy`, zero latency and full
participation, the engine consumes exactly the streams ``Cluster.step``
consumes, in the same order — the golden-trace suite asserts the two
executions are indistinguishable bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackContext, ByzantineAttack
from repro.distributed.cluster import StepResult
from repro.distributed.network import PerfectNetwork
from repro.distributed.server import ParameterServer
from repro.distributed.worker import HonestWorker, compute_cohort
from repro.exceptions import ConfigurationError, DegradedRunError, TrainingError
from repro.faults.apply import apply_wire_faults, reset_absent_momentum
from repro.faults.plan import ResolvedFaultPlan
from repro.rng import SeedTree
from repro.simulation.events import (
    EventQueue,
    GradientArrival,
    ModelBroadcast,
    WorkerWake,
)
from repro.simulation.latency import ConstantLatency, LatencyModel
from repro.simulation.participation import FullParticipation, ParticipationSampler
from repro.simulation.policies import Arrival, RoundCompletion, ServerPolicy, SyncPolicy
from repro.typing import Vector

__all__ = ["ClusterSimulator", "SimStepResult"]


@dataclass(frozen=True)
class SimStepResult(StepResult):
    """One server update's instrumentation, with virtual-time context.

    Extends the synchronous :class:`~repro.distributed.cluster.StepResult`
    (so every existing callback keeps working) with the virtual clock of
    the update, the round whose arrival triggered it, the staleness
    damping applied, and the honest workers whose gradients fed it.
    """

    virtual_time: float = 0.0
    round_index: int = 0
    update_scale: float = 1.0
    staleness: float = 0.0
    participating: tuple[int, ...] = ()


@dataclass
class _RoundRecord:
    """Per-round bookkeeping: computed cohort + outstanding arrivals."""

    honest_ids: tuple[int, ...]
    submitted: np.ndarray
    clean: np.ndarray
    byzantine_gradient: Vector | None
    pending_arrivals: int
    bytes_on_wire: int | None = None


class ClusterSimulator:
    """Event-driven counterpart of :class:`repro.distributed.cluster.Cluster`.

    Wires the same components (server, honest workers, colluding
    adversary, network) plus the three simulation-only ones: a server
    :class:`~repro.simulation.policies.ServerPolicy`, a per-message
    :class:`~repro.simulation.latency.LatencyModel`, and a per-round
    :class:`~repro.simulation.participation.ParticipationSampler`.

    The simulator deliberately mirrors the ``Cluster`` read surface
    (``parameters``, ``n``, ``num_honest``, ``num_byzantine``,
    ``step_count``, ``honest_workers``, ``server``) so loop callbacks
    written against a cluster drive a simulation unchanged.
    """

    def __init__(
        self,
        server: ParameterServer,
        honest_workers: Sequence[HonestWorker],
        num_byzantine: int = 0,
        attack: ByzantineAttack | None = None,
        attack_rng: np.random.Generator | None = None,
        network=None,
        codec=None,
        policy: ServerPolicy | None = None,
        latency: LatencyModel | None = None,
        participation: ParticipationSampler | None = None,
        seeds: SeedTree | None = None,
        faults: ResolvedFaultPlan | None = None,
        max_events_per_step: int = 100_000,
    ):
        honest_workers = list(honest_workers)
        if not honest_workers:
            raise ConfigurationError("need at least one honest worker")
        if num_byzantine < 0:
            raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
        if num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "num_byzantine > 0 requires an attack (use ZeroGradientAttack "
                "for crash-style Byzantine workers)"
            )
        if attack is not None and attack_rng is None:
            raise ConfigurationError("an attack requires attack_rng")
        total = len(honest_workers) + num_byzantine
        if total != server.gar.n:
            raise ConfigurationError(
                f"server GAR expects n={server.gar.n} workers but the simulation "
                f"has {len(honest_workers)} honest + {num_byzantine} Byzantine = {total}"
            )
        if num_byzantine > server.gar.f:
            raise ConfigurationError(
                f"simulation has {num_byzantine} Byzantine workers but the GAR "
                f"only tolerates f={server.gar.f}"
            )
        if max_events_per_step < 1:
            raise ConfigurationError(
                f"max_events_per_step must be >= 1, got {max_events_per_step}"
            )
        if faults is not None and faults.num_honest != len(honest_workers):
            raise ConfigurationError(
                f"fault plan resolved for {faults.num_honest} honest workers "
                f"but the simulation has {len(honest_workers)}"
            )
        if (
            policy is not None
            and not policy.barrier
            and participation is not None
            and not isinstance(participation, FullParticipation)
        ):
            raise ConfigurationError(
                f"policy {policy.name!r} is not barrier-style: per-round "
                "participation sampling is undefined without rounds (the "
                "round-1 draw would silently pin the cohort for the whole "
                "run); use full participation"
            )
        self._server = server
        self._honest_workers = honest_workers
        self._num_byzantine = int(num_byzantine)
        self._attack = attack
        self._attack_rng = attack_rng
        self._network = network if network is not None else PerfectNetwork()
        self._codec = codec
        self._bytes_on_wire_total = 0
        self._policy = policy if policy is not None else SyncPolicy()
        self._latency = latency if latency is not None else ConstantLatency(0.0)
        self._participation = (
            participation if participation is not None else FullParticipation()
        )
        self._seeds = seeds if seeds is not None else SeedTree(0)
        self._faults = faults
        self._max_events_per_step = int(max_events_per_step)
        self._dimension = int(server.parameters.shape[0])
        self._policy.bind(self.n, self.num_honest, self._dimension)

        self._queue = EventQueue()
        self._clock = 0.0
        self._round = 0
        self._started = False
        self._rounds: dict[int, _RoundRecord] = {}
        self._last_honest: tuple[np.ndarray, np.ndarray] | None = None
        self._participation_counts = np.zeros(self.num_honest, dtype=np.int64)
        self._computation_counts = np.zeros(self.num_honest, dtype=np.int64)
        self._sampling_rounds = 0
        self._dropped_arrivals = 0
        self._telemetry = None

    # ------------------------------------------------------------------
    # Cluster-compatible read surface
    # ------------------------------------------------------------------

    @property
    def telemetry(self):
        """The installed :class:`repro.telemetry.Telemetry`, or ``None``.

        Telemetry only *observes* the simulation — spans around cohort
        compute, attack crafting, and server steps, plus drop/round
        counters.  It never draws from an RNG stream, so enabling it
        cannot change the event schedule or any numerical result.
        Because rounds can interleave under async policies, events are
        stamped with the server's monotone ``step_count`` (the merged
        trace's ``step``) and carry ``round`` as an attribute.
        """
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry) -> None:
        self._telemetry = telemetry

    @property
    def faults(self) -> ResolvedFaultPlan | None:
        """The resolved fault plan applied each round, or ``None``."""
        return self._faults

    @property
    def server(self) -> ParameterServer:
        """The parameter server."""
        return self._server

    @property
    def honest_workers(self) -> list[HonestWorker]:
        """The honest workers (a copy of the list)."""
        return list(self._honest_workers)

    @property
    def parameters(self) -> Vector:
        """Current model parameters held by the server."""
        return self._server.parameters

    @property
    def n(self) -> int:
        """Total workers (honest + Byzantine)."""
        return len(self._honest_workers) + self._num_byzantine

    @property
    def num_honest(self) -> int:
        """Number of honest workers."""
        return len(self._honest_workers)

    @property
    def num_byzantine(self) -> int:
        """Number of Byzantine workers actually attacking."""
        return self._num_byzantine

    @property
    def codec(self):
        """The wire codec encoding submissions (or ``None``)."""
        return self._codec

    @property
    def bytes_on_wire_total(self) -> int:
        """Cumulative encoded bytes across all rounds (0 without a codec)."""
        return self._bytes_on_wire_total

    @property
    def step_count(self) -> int:
        """Server updates completed so far."""
        return self._server.step_count

    # ------------------------------------------------------------------
    # simulation-specific read surface
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Current virtual wall-clock."""
        return self._clock

    @property
    def round_count(self) -> int:
        """Rounds opened so far (>= server updates under async policies)."""
        return self._round

    @property
    def policy(self) -> ServerPolicy:
        """The configured server policy."""
        return self._policy

    @property
    def sampling_round_count(self) -> int:
        """Full broadcasts at which participation sampling applied."""
        return self._sampling_rounds

    @property
    def participation_counts(self) -> np.ndarray:
        """Per-honest-worker count of sampled rounds participated in."""
        return self._participation_counts.copy()

    @property
    def participation_rates(self) -> dict[int, float]:
        """Realized per-worker participation rate over sampled rounds."""
        if self._sampling_rounds == 0:
            return {worker: 0.0 for worker in range(self.num_honest)}
        return {
            worker: float(count) / self._sampling_rounds
            for worker, count in enumerate(self._participation_counts)
        }

    @property
    def computation_counts(self) -> np.ndarray:
        """Per-honest-worker count of gradient computations (= mechanism
        invocations under DP) — what non-barrier privacy accounting
        composes over."""
        return self._computation_counts.copy()

    @property
    def dropped_arrivals(self) -> int:
        """Messages the network dropped en route to the server."""
        return self._dropped_arrivals

    def stats(self) -> dict:
        """Engine + policy counters for the simulation result."""
        return {
            "rounds": self._round,
            "server_steps": self.step_count,
            "virtual_time": self._clock,
            "dropped_arrivals": self._dropped_arrivals,
            "sampling_rounds": self._sampling_rounds,
            **self._policy.stats(),
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def advance(self) -> SimStepResult:
        """Process events until the next server update; return its result."""
        if not self._started:
            self._queue.push(ModelBroadcast(time=0.0, round_index=1, workers=None))
            self._started = True
        events_processed = 0
        while self._queue:
            events_processed += 1
            if events_processed > self._max_events_per_step:
                raise TrainingError(
                    f"simulation processed {events_processed} events without a "
                    f"server update; the policy appears to never aggregate"
                )
            event = self._queue.pop()
            self._clock = event.time
            if isinstance(event, ModelBroadcast):
                self._handle_broadcast(event)
            elif isinstance(event, WorkerWake):
                self._handle_wake_batch(self._drain_wake_batch(event))
            elif isinstance(event, GradientArrival):
                result = self._handle_arrival(event)
                if result is not None:
                    return result
            else:  # pragma: no cover - the vocabulary is closed
                raise TrainingError(f"unknown event type {type(event).__name__}")
        raise TrainingError(
            "event queue drained without a server update; no messages are in "
            "flight and the policy never aggregated"
        )

    def run(self, num_steps: int) -> SimStepResult:
        """Advance through ``num_steps`` server updates; returns the last."""
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
        result: SimStepResult | None = None
        for _ in range(num_steps):
            result = self.advance()
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _handle_broadcast(self, event: ModelBroadcast) -> None:
        round_index = event.round_index
        self._round = max(self._round, round_index)
        if event.workers is None:
            candidates = tuple(range(self.num_honest))
            participants = self._participation.sample(
                round_index,
                candidates,
                self._seeds.generator("participation", round_index),
            )
            participants = tuple(sorted(participants))
            self._sampling_rounds += 1
            if participants:
                self._participation_counts[list(participants)] += 1
            byzantine_targets = (
                tuple(range(self.num_honest, self.n))
                if self._num_byzantine > 0
                else ()
            )
        else:
            participants = tuple(
                sorted(w for w in event.workers if w < self.num_honest)
            )
            byzantine_targets = tuple(
                sorted(w for w in event.workers if w >= self.num_honest)
            )
        expected = participants + byzantine_targets
        if not expected:
            raise TrainingError(f"round {round_index} opened with no workers")
        self._policy.on_round_start(round_index, expected)
        for worker_id in expected:
            self._queue.push(
                WorkerWake(time=event.time, round_index=round_index, worker_id=worker_id)
            )

    def _drain_wake_batch(self, first: WorkerWake) -> list[WorkerWake]:
        """Collect every wake of ``first``'s round scheduled at its instant.

        A round's wakes are pushed back-to-back by the broadcast handler,
        so they occupy consecutive heap positions: draining while the top
        matches ``(time, round)`` recovers exactly the cohort — which is
        what lets the honest gradients go through one
        :func:`compute_cohort` call, like the synchronous cluster.
        """
        batch = [first]
        while True:
            head = self._queue.peek()
            if (
                isinstance(head, WorkerWake)
                and head.time == first.time
                and head.round_index == first.round_index
            ):
                batch.append(self._queue.pop())
            else:
                return batch

    def _handle_wake_batch(self, wakes: list[WorkerWake]) -> None:
        round_index = wakes[0].round_index
        honest_ids = tuple(
            sorted(w.worker_id for w in wakes if w.worker_id < self.num_honest)
        )
        byzantine_ids = tuple(
            sorted(w.worker_id for w in wakes if w.worker_id >= self.num_honest)
        )
        parameters = self._server.parameters
        version = self._server.step_count
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.set_step(version)
        round_bytes: int | None = None
        if honest_ids:
            cohort = [self._honest_workers[worker_id] for worker_id in honest_ids]
            if telemetry is not None:
                started = time.perf_counter_ns()
                submitted, clean = compute_cohort(cohort, parameters, round_index)
                telemetry.span_ns(
                    "round.cohort",
                    time.perf_counter_ns() - started,
                    round=round_index,
                )
            else:
                submitted, clean = compute_cohort(cohort, parameters, round_index)
            row_bytes = None
            if self._codec is not None:
                # Encoded before anything observes it: keyed on the
                # round index and the *global* worker ids, so a partial
                # cohort's rows match the synchronous cluster's
                # whole-round encode bit for bit.
                if telemetry is not None:
                    started = time.perf_counter_ns()
                    submitted, row_bytes = self._codec.encode_block(
                        submitted, round_index, honest_ids
                    )
                    telemetry.span_ns(
                        "round.codec",
                        time.perf_counter_ns() - started,
                        round=round_index,
                    )
                else:
                    submitted, row_bytes = self._codec.encode_block(
                        submitted, round_index, honest_ids
                    )
            if self._faults is not None:
                # Same relative pipeline point as Cluster._apply_faults:
                # after the codec encode, before the adversary observes.
                # The matrices are position-indexed by the cohort, so the
                # helper maps rows through the global honest_ids.
                resolved = self._faults
                if not resolved.live_workers(round_index):
                    raise DegradedRunError(
                        f"round {round_index}: every honest worker has "
                        "departed under the fault plan; refusing to "
                        "aggregate attack-only submissions"
                    )
                zeroed, corrupted = apply_wire_faults(
                    resolved, round_index, submitted, clean, honest_ids
                )
                absent = reset_absent_momentum(
                    resolved, round_index, self._honest_workers
                )
                if row_bytes is not None:
                    # A dead worker sent nothing; a dropped round's
                    # message was sent and then lost, so its bytes count.
                    for position, worker_id in enumerate(honest_ids):
                        if worker_id in absent:
                            row_bytes[position] = 0
                if telemetry is not None and (zeroed or corrupted):
                    telemetry.counter(
                        "fault.injected",
                        len(zeroed) + len(corrupted),
                        round=round_index,
                        zeroed=sorted(zeroed),
                        corrupted=sorted(corrupted),
                    )
            if row_bytes is not None:
                round_bytes = int(row_bytes.sum())
            self._last_honest = (submitted, clean)
            self._computation_counts[list(honest_ids)] += 1
        else:
            submitted = np.zeros((0, self._dimension))
            clean = np.zeros((0, self._dimension))
            round_bytes = 0 if self._codec is not None else None

        byzantine_gradient: Vector | None = None
        if byzantine_ids:
            assert self._attack is not None and self._attack_rng is not None
            # The colluding adversary observes the round's honest cohort;
            # on an async rebroadcast with no honest wake it falls back to
            # the latest honest traffic it has seen.
            observed_submitted, observed_clean = (
                (submitted, clean) if honest_ids else self._observed_honest()
            )
            context = AttackContext(
                step=round_index,
                honest_submitted=observed_submitted,
                honest_clean=observed_clean,
                parameters=parameters,
                num_byzantine=self._num_byzantine,
                rng=self._attack_rng,
            )
            if telemetry is not None:
                started = time.perf_counter_ns()
                byzantine_gradient = np.asarray(
                    self._attack.craft(context), dtype=np.float64
                )
                telemetry.span_ns(
                    "round.attack",
                    time.perf_counter_ns() - started,
                    round=round_index,
                )
            else:
                byzantine_gradient = np.asarray(
                    self._attack.craft(context), dtype=np.float64
                )
            if byzantine_gradient.shape != parameters.shape:
                raise ConfigurationError(
                    f"attack produced shape {byzantine_gradient.shape}, "
                    f"expected {parameters.shape}"
                )

        # Each Byzantine copy is its own wire message: stochastic codecs
        # give every copy its own (round, worker) stream, exactly like
        # the synchronous cluster encoding rows H..n-1.
        byzantine_wire: dict[int, Vector] = {}
        if byzantine_ids and self._codec is not None:
            assert byzantine_gradient is not None
            for worker_id in byzantine_ids:
                wire, nbytes = self._codec.encode_row(
                    byzantine_gradient, round_index, worker_id
                )
                byzantine_wire[worker_id] = wire
                round_bytes += int(nbytes)
        if round_bytes is not None:
            self._bytes_on_wire_total += round_bytes
            if telemetry is not None:
                telemetry.counter("wire.bytes", round_bytes, round=round_index)

        self._rounds[round_index] = _RoundRecord(
            honest_ids=honest_ids,
            submitted=submitted,
            clean=clean,
            byzantine_gradient=byzantine_gradient,
            pending_arrivals=len(honest_ids) + len(byzantine_ids),
            bytes_on_wire=round_bytes,
        )
        for position, worker_id in enumerate(honest_ids):
            self._schedule_arrival(
                wakes[0].time, round_index, worker_id, version, submitted[position]
            )
        for worker_id in byzantine_ids:
            assert byzantine_gradient is not None
            self._schedule_arrival(
                wakes[0].time,
                round_index,
                worker_id,
                version,
                byzantine_wire.get(worker_id, byzantine_gradient),
            )

    def _observed_honest(self) -> tuple[np.ndarray, np.ndarray]:
        if self._last_honest is None:
            raise TrainingError(
                "Byzantine workers woke before any honest cohort existed"
            )
        return self._last_honest

    def _schedule_arrival(
        self,
        time: float,
        round_index: int,
        worker_id: int,
        version: int,
        gradient: Vector,
    ) -> None:
        delay = float(
            self._latency.sample(
                round_index,
                worker_id,
                self._seeds.generator("latency", round_index, worker_id),
            )
        )
        if delay < 0 or not np.isfinite(delay):
            raise ConfigurationError(
                f"latency model produced invalid delay {delay} for "
                f"(round={round_index}, worker={worker_id})"
            )
        if self._faults is not None and worker_id < self.num_honest:
            # "slow" events stretch delivery only — they never touch the
            # numbers (factor validated finite and > 0 at plan build).
            delay *= self._faults.slow_factor(round_index, worker_id)
        self._queue.push(
            GradientArrival(
                time=time + delay,
                round_index=round_index,
                worker_id=worker_id,
                model_version=version,
                gradient=gradient,
            )
        )

    def _handle_arrival(self, event: GradientArrival) -> SimStepResult | None:
        dropped = bool(
            self._network.drops_message(event.round_index, event.worker_id)
        )
        if dropped:
            self._dropped_arrivals += 1
            if self._telemetry is not None:
                self._telemetry.counter(
                    "network.dropped", round=event.round_index
                )
            gradient = np.zeros(self._dimension)
        else:
            gradient = event.gradient
        arrival = Arrival(
            time=event.time,
            round_index=event.round_index,
            worker_id=event.worker_id,
            model_version=event.model_version,
            server_version=self._server.step_count,
            gradient=gradient,
            dropped=dropped,
        )
        completion = self._policy.on_arrival(arrival)
        record = self._rounds.get(event.round_index)
        result: SimStepResult | None = None
        if completion is not None:
            result = self._complete(completion)
        else:
            rewake = self._policy.rewake(arrival)
            if rewake:
                next_round = self._round + 1
                self._round = next_round
                self._queue.push(
                    ModelBroadcast(
                        time=self._clock, round_index=next_round, workers=rewake
                    )
                )
        if record is not None:
            record.pending_arrivals -= 1
            if record.pending_arrivals <= 0:
                del self._rounds[event.round_index]
        return result

    def _complete(self, completion: RoundCompletion) -> SimStepResult:
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.set_step(self._server.step_count)
            started = time.perf_counter_ns()
            aggregated = self._server.step(
                completion.matrix, update_scale=completion.update_scale
            )
            telemetry.span_ns(
                "round.server",
                time.perf_counter_ns() - started,
                round=completion.round_index,
            )
            telemetry.counter("rounds")
        else:
            aggregated = self._server.step(
                completion.matrix, update_scale=completion.update_scale
            )
        record = self._rounds.get(completion.round_index)
        if record is not None:
            submitted, clean = record.submitted, record.clean
            byzantine_gradient = record.byzantine_gradient
            bytes_on_wire = record.bytes_on_wire
        else:  # pragma: no cover - completions always reference a live round
            submitted, clean = self._observed_honest()
            byzantine_gradient = None
            bytes_on_wire = None
        # The workers whose gradients actually fed this update (honest
        # part): under semi-sync/async that is the *arrived* set, not
        # the round's whole woken cohort.
        participating = tuple(
            worker_id
            for worker_id in completion.arrived_workers
            if worker_id < self.num_honest
        )
        if self._faults is not None:
            # Plan-absent workers delivered only an all-zero row: they
            # did not participate, and must leave the recorded honest
            # loss exactly as a dead shard's rows leave the multiprocess
            # loss vector.  (drop_round workers stay: their loss
            # continues, only their message was lost.)
            absent = self._faults.absent_workers(completion.round_index)
            if absent:
                participating = tuple(
                    worker_id
                    for worker_id in participating
                    if worker_id not in absent
                )
        next_round = self._round + 1
        self._round = next_round
        self._queue.push(
            ModelBroadcast(
                time=self._clock,
                round_index=next_round,
                workers=completion.broadcast_to,
            )
        )
        return SimStepResult(
            step=self._server.step_count,
            aggregated=aggregated,
            honest_submitted=submitted,
            honest_clean=clean,
            byzantine_gradient=byzantine_gradient,
            bytes_on_wire=bytes_on_wire,
            virtual_time=self._clock,
            round_index=completion.round_index,
            update_scale=completion.update_scale,
            staleness=completion.staleness,
            participating=participating,
        )
