"""Discrete-event asynchronous cluster simulation.

The paper's system model (Section 2.1) is *sequential synchronous*:
training proceeds in lockstep rounds, and the parameter server treats
any non-received gradient as zero.  ``repro.distributed.cluster``
hard-codes exactly that.  This package relaxes the assumption without
touching the rest of the stack: a deterministic discrete-event engine
(:mod:`~repro.simulation.engine`) runs the same workers, adversary,
network, GARs and optimizer under a virtual clock, with three new
pluggable axes:

* **latency models** (:mod:`~repro.simulation.latency`, registry family
  ``latency``) — constant, lognormal, heavy-tail straggler;
* **server policies** (:mod:`~repro.simulation.policies`, registry
  family ``policy``) — the paper's synchronous barrier (replaying the
  sequential protocol bit-identically at zero latency), a K-of-n
  buffered semi-sync barrier, and a fully asynchronous
  staleness-damped rule;
* **partial participation** (:mod:`~repro.simulation.participation`) —
  per-round Poisson/uniform client sampling whose realized rates feed
  privacy amplification by subsampling
  (:func:`repro.privacy.amplification.amplify_by_rate`), the Section 7
  "future direction" the accountants can now report on.

Entry points: :meth:`repro.pipeline.builder.Experiment.simulate` (or
``build_simulation`` for the bare engine) and the
``python -m repro simulate`` CLI subcommand.
"""

from repro.simulation.engine import ClusterSimulator, SimStepResult
from repro.simulation.events import (
    Event,
    EventQueue,
    GradientArrival,
    ModelBroadcast,
    WorkerWake,
)
from repro.simulation.latency import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    StragglerLatency,
)
from repro.simulation.participation import (
    PARTICIPATION_KINDS,
    FullParticipation,
    ParticipationSampler,
    PoissonParticipation,
    UniformParticipation,
    make_participation,
)
from repro.simulation.policies import (
    STALENESS_DAMPINGS,
    Arrival,
    AsyncStalenessPolicy,
    BufferedSemiSyncPolicy,
    RoundCompletion,
    ServerPolicy,
    SyncPolicy,
)
from repro.simulation.run import SimulationLoop, SimulationResult

__all__ = [
    "Arrival",
    "AsyncStalenessPolicy",
    "BufferedSemiSyncPolicy",
    "ClusterSimulator",
    "ConstantLatency",
    "Event",
    "EventQueue",
    "FullParticipation",
    "GradientArrival",
    "LatencyModel",
    "LognormalLatency",
    "ModelBroadcast",
    "PARTICIPATION_KINDS",
    "ParticipationSampler",
    "PoissonParticipation",
    "RoundCompletion",
    "STALENESS_DAMPINGS",
    "ServerPolicy",
    "SimStepResult",
    "SimulationLoop",
    "SimulationResult",
    "StragglerLatency",
    "SyncPolicy",
    "UniformParticipation",
    "WorkerWake",
    "make_participation",
]
