"""Discrete-event primitives: timestamped events and a deterministic heap.

The simulator's vocabulary is three event types:

* :class:`ModelBroadcast` — the server publishes parameters and opens a
  round for a set of workers;
* :class:`WorkerWake` — a worker starts computing its gradient for a
  round (scheduled at the broadcast instant; compute + network delay is
  folded into the message's latency sample);
* :class:`GradientArrival` — a worker's gradient reaches the server.

:class:`EventQueue` is a binary heap keyed on ``(time, seq)`` where
``seq`` is a monotonically increasing insertion counter.  Ties in
virtual time therefore resolve in scheduling order, which makes the
whole simulation a pure function of its seeds — crucial both for the
golden-trace harness and for the zero-latency case, where *every*
event of a run carries the same timestamp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.typing import Vector

__all__ = ["Event", "EventQueue", "GradientArrival", "ModelBroadcast", "WorkerWake"]


@dataclass(frozen=True)
class Event:
    """Base timestamped event; ``time`` is virtual wall-clock seconds."""

    time: float


@dataclass(frozen=True)
class ModelBroadcast(Event):
    """The server opens round ``round_index`` for ``workers``.

    ``workers=None`` broadcasts to the whole cluster (the barrier
    policies' round start, where participation sampling applies);
    an explicit tuple targets just those workers (async rebroadcasts,
    which bypass sampling).
    """

    round_index: int
    workers: tuple[int, ...] | None = None


@dataclass(frozen=True)
class WorkerWake(Event):
    """Worker ``worker_id`` starts computing its round's gradient."""

    round_index: int
    worker_id: int


@dataclass(frozen=True)
class GradientArrival(Event):
    """Worker ``worker_id``'s gradient for a round reaches the server.

    ``model_version`` is the server's step count when the gradient's
    computation started — the staleness reference the async policy
    compares against the server's version at arrival time.
    """

    round_index: int
    worker_id: int
    model_version: int
    gradient: Vector = field(repr=False, default=None)


class EventQueue:
    """Min-heap of events ordered by ``(time, insertion order)``."""

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        """Schedule ``event``; equal times pop in push order."""
        if event.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise ConfigurationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Event | None:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:
        head = self._heap[0] if self._heap else None
        return f"EventQueue(len={len(self._heap)}, next={head[2] if head else None})"
