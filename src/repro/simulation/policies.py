"""Server policies: when does the server aggregate? (``policy`` family.)

Section 2.1 of the paper assumes "sequential synchronous steps" where
the server waits for the whole round and treats any non-received
gradient as zero.  A *server policy* generalises exactly that waiting
rule, leaving everything else (GAR, optimizer, DP pipeline) untouched:

* :class:`SyncPolicy` — the paper's barrier.  Waits for every message
  of the round (dropped ones resolve as zero vectors, Section 2.1's
  convention), then aggregates.  At zero latency and full
  participation this replays :meth:`repro.distributed.cluster.Cluster.step`
  bit-identically — proven by the golden-trace harness.
* :class:`BufferedSemiSyncPolicy` — K-of-n barrier (FedBuff-style):
  aggregate as soon as ``buffer_size`` messages of the current round
  have resolved, zero-fill the rest; stragglers' late arrivals are
  discarded.
* :class:`AsyncStalenessPolicy` — no barrier at all: every arrival
  refreshes a per-worker cache of latest gradients and triggers an
  aggregation whose optimizer update is damped by the arrival's
  staleness (the server-version lag of the parameters the gradient was
  computed at).

Policies consume :class:`Arrival` records from the engine and return a
:class:`RoundCompletion` when the server should aggregate.  The
completion's ``matrix`` always has the full ``(n, d)`` shape the GAR
family expects — zero rows stand in for missing workers, exactly as in
the synchronous protocol.
"""

from __future__ import annotations

import sys
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.typing import Matrix, Vector

__all__ = [
    "Arrival",
    "AsyncStalenessPolicy",
    "BufferedSemiSyncPolicy",
    "RoundCompletion",
    "ServerPolicy",
    "STALENESS_DAMPINGS",
]

#: Damping schemes :class:`AsyncStalenessPolicy` accepts.
STALENESS_DAMPINGS = ("inverse", "exponential", "constant")


@dataclass(frozen=True)
class Arrival:
    """One resolved message slot, as the policy sees it.

    ``gradient`` is the delivered content: the submitted vector, or
    zeros when the network dropped the message (``dropped=True``).
    ``model_version``/``server_version`` are the server's step count
    when the gradient's computation started vs. when it arrived — their
    difference is the arrival's staleness.
    """

    time: float
    round_index: int
    worker_id: int
    model_version: int
    server_version: int
    gradient: Vector = field(repr=False, default=None)
    dropped: bool = False

    @property
    def staleness(self) -> int:
        """Server updates that happened while this gradient was in flight."""
        return max(0, self.server_version - self.model_version)


@dataclass(frozen=True)
class RoundCompletion:
    """A policy's instruction to aggregate now.

    ``broadcast_to=None`` re-opens a round for the whole cluster (with
    participation sampling); a tuple re-targets specific workers only.
    """

    round_index: int
    matrix: Matrix = field(repr=False)
    update_scale: float = 1.0
    broadcast_to: tuple[int, ...] | None = None
    staleness: float = 0.0
    arrived_workers: tuple[int, ...] = ()


class ServerPolicy(ABC):
    """Decides, arrival by arrival, when the server aggregates."""

    #: Registry name under the ``policy`` component family.
    name: str

    #: Whether the policy re-opens each round for the *whole* cluster
    #: (barrier-style), which is what per-round participation sampling
    #: and its amplification accounting are defined over.  Non-barrier
    #: policies (async) drive workers individually instead.
    barrier: bool = True

    def __init__(self):
        self._n = 0
        self._num_honest = 0
        self._dimension = 0

    def bind(self, n: int, num_honest: int, dimension: int) -> None:
        """Attach cluster geometry; called once by the engine."""
        if n < 1 or not 0 < num_honest <= n or dimension < 1:
            raise ConfigurationError(
                f"invalid policy binding (n={n}, num_honest={num_honest}, "
                f"dimension={dimension})"
            )
        self._n = int(n)
        self._num_honest = int(num_honest)
        self._dimension = int(dimension)

    def on_round_start(self, round_index: int, expected_workers: tuple[int, ...]) -> None:
        """A broadcast opened ``round_index`` for ``expected_workers``."""

    @abstractmethod
    def on_arrival(self, arrival: Arrival) -> RoundCompletion | None:
        """Consume one arrival; return a completion to aggregate now."""

    def rewake(self, arrival: Arrival) -> tuple[int, ...] | None:
        """Workers to re-open a round for when ``on_arrival`` declined.

        Consulted by the engine only when ``on_arrival`` returned no
        completion.  Barrier policies never need it (their rounds close
        via the barrier), but a non-barrier policy whose workers are
        driven by their own completions must rewake the sender of a
        discarded message or its event chain would end forever.
        """
        del arrival
        return None

    def stats(self) -> dict:
        """Policy-specific counters for the simulation result."""
        return {}

    def _empty_matrix(self) -> np.ndarray:
        return np.zeros((self._n, self._dimension), dtype=np.float64)


class SyncPolicy(ServerPolicy):
    """The paper's barrier: wait for every message of the round.

    Dropped messages still resolve their slot (as zero vectors — the
    server "considers any non-received gradient to be 0", Section 2.1),
    so the barrier always closes.  Workers excluded by participation
    sampling contribute zero rows without being waited on.

    The barrier admits exactly one open round at a time (the engine
    broadcasts round ``k + 1`` only after round ``k``'s completion), so
    the policy assembles arrivals directly into one preallocated
    ``(n, d)`` matrix reused across every round of the simulation —
    zeroed at each round start — instead of allocating a per-round
    buffer dict plus a fresh matrix at completion.  The emitted
    completion *borrows* that matrix; it is valid until the next round
    opens, which outlives its only consumer (the server's aggregation).
    """

    name = "sync"

    def __init__(self):
        super().__init__()
        self._round: int | None = None
        self._expected = 0
        self._received = 0
        self._matrix: np.ndarray | None = None
        self._arrived: np.ndarray | None = None

    def on_round_start(self, round_index, expected_workers):
        if self._round is not None:
            raise ConfigurationError(
                f"round {round_index} opened while round {self._round} is "
                "still waiting on its barrier"
            )
        if self._matrix is None:
            self._matrix = self._empty_matrix()
            self._arrived = np.zeros(self._n, dtype=bool)
        else:
            self._matrix.fill(0.0)
            self._arrived.fill(False)
        self._round = round_index
        self._expected = len(expected_workers)
        self._received = 0

    def on_arrival(self, arrival):
        if self._round is None or arrival.round_index != self._round:
            raise ConfigurationError(
                f"arrival for unopened round {arrival.round_index}"
            )
        if not self._arrived[arrival.worker_id]:
            self._arrived[arrival.worker_id] = True
            self._received += 1
        self._matrix[arrival.worker_id] = arrival.gradient
        if self._received < self._expected:
            return None
        self._round = None
        return RoundCompletion(
            round_index=arrival.round_index,
            matrix=self._matrix,
            arrived_workers=tuple(
                int(worker) for worker in np.flatnonzero(self._arrived)
            ),
        )


class BufferedSemiSyncPolicy(ServerPolicy):
    """K-of-n barrier: aggregate on the first ``buffer_size`` resolutions.

    The round closes once ``min(buffer_size, expected)`` message slots
    of the *current* round have resolved; the rest of the round's
    messages — the stragglers — are discarded when they eventually
    arrive (counted in :meth:`stats`).  Missing workers are zero rows.

    A round closes *permanently* when its completion is emitted: the
    leftover arrivals of an already-aggregated round are stale even if
    they land before the next round's broadcast is processed (with a
    constant latency every arrival of a round carries the same
    timestamp, so this ordering is the common case, not a corner).
    """

    name = "semi-sync"

    def __init__(self, buffer_size: int):
        super().__init__()
        if buffer_size < 1:
            raise ConfigurationError(
                f"buffer_size must be >= 1, got {buffer_size}"
            )
        self._buffer_size = int(buffer_size)
        self._current_round: int | None = None  # None = no open round
        self._needed = 0
        self._buffer: dict[int, Vector] = {}
        self._stale_discarded = 0

    @property
    def buffer_size(self) -> int:
        """Arrivals needed to close a round."""
        return self._buffer_size

    def on_round_start(self, round_index, expected_workers):
        self._current_round = round_index
        self._needed = min(self._buffer_size, len(expected_workers))
        self._buffer = {}

    def on_arrival(self, arrival):
        if arrival.round_index != self._current_round:
            self._stale_discarded += 1
            return None
        self._buffer[arrival.worker_id] = arrival.gradient
        if len(self._buffer) < self._needed:
            return None
        matrix = self._empty_matrix()
        for worker_id, gradient in self._buffer.items():
            matrix[worker_id] = gradient
        arrived = tuple(sorted(self._buffer))
        self._buffer = {}
        self._current_round = None  # closed: later round arrivals are stale
        return RoundCompletion(
            round_index=arrival.round_index,
            matrix=matrix,
            arrived_workers=arrived,
        )

    def stats(self):
        return {"stale_discarded": self._stale_discarded}


class AsyncStalenessPolicy(ServerPolicy):
    """Aggregate on every arrival, damped by the arrival's staleness.

    The server keeps the latest gradient received from each worker
    (zeros until a worker's first arrival) and re-aggregates the whole
    cache whenever a message lands, scaling the optimizer update by a
    staleness weight:

    * ``"inverse"`` — ``1 / (1 + s)`` (Xie et al. 2019's polynomial
      damping at a = 1);
    * ``"exponential"`` — ``alpha ** s``;
    * ``"constant"`` — no damping.

    where ``s`` is the number of server updates that happened while the
    gradient was in flight.  After each update only the worker that
    delivered is re-broadcast to — workers run free, never waiting on a
    barrier.  Dropped messages carry no information and trigger no
    aggregation (the cache keeps the previous gradient), but the sender
    is rewoken so a lossy network cannot silence a worker forever.
    """

    name = "async-staleness"
    barrier = False

    def __init__(self, damping: str = "inverse", alpha: float = 0.5):
        super().__init__()
        if damping not in STALENESS_DAMPINGS:
            raise ConfigurationError(
                f"damping must be one of {STALENESS_DAMPINGS}, got {damping!r}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self._damping = damping
        self._alpha = float(alpha)
        self._cache: np.ndarray | None = None
        self._dropped_skipped = 0
        self._max_staleness = 0

    @property
    def damping(self) -> str:
        """The configured damping scheme."""
        return self._damping

    def bind(self, n, num_honest, dimension):
        super().bind(n, num_honest, dimension)
        self._cache = self._empty_matrix()

    def weight(self, staleness: int) -> float:
        """The update scale for an arrival ``staleness`` versions late.

        Always in ``(0, 1]``: mathematically each scheme is, and the
        exponential case is clamped away from the floating-point
        underflow to 0.0 (an exactly-zero scale would silently freeze
        the server on extremely stale arrivals instead of damping them).
        """
        if self._damping == "inverse":
            return 1.0 / (1.0 + staleness)
        if self._damping == "exponential":
            return max(self._alpha**staleness, sys.float_info.min)
        return 1.0

    def rewake(self, arrival):
        # A dropped arrival produced no completion (hence no rebroadcast);
        # rewake its sender so the worker keeps computing.
        return (arrival.worker_id,) if arrival.dropped else None

    def on_arrival(self, arrival):
        assert self._cache is not None, "policy used before bind()"
        if arrival.dropped:
            self._dropped_skipped += 1
            return None
        staleness = arrival.staleness
        self._max_staleness = max(self._max_staleness, staleness)
        self._cache[arrival.worker_id] = arrival.gradient
        return RoundCompletion(
            round_index=arrival.round_index,
            matrix=self._cache.copy(),
            update_scale=self.weight(staleness),
            broadcast_to=(arrival.worker_id,),
            staleness=float(staleness),
            arrived_workers=(arrival.worker_id,),
        )

    def stats(self):
        return {
            "dropped_skipped": self._dropped_skipped,
            "max_staleness": self._max_staleness,
        }
