"""Golden fault traces: one plan, three backends, bit-identical.

Each case pins a :class:`FaultPlan` (the ISSUE's crash→rejoin schedule
plus worker-fault and momentum variants) on a seed-pinned environment
and asserts every backend — in-process, discrete-event simulator,
multiprocess runtime with *real* process deaths and chief respawn —
reproduces the committed trace exactly: every recorded loss, every
accuracy, the final parameter vector.  A fourth replay kills the run
mid-way and resumes from its checkpoint; that completed trace must also
match the golden, proving checkpoint-kill-resume ≡ uninterrupted.

Regenerating after an *intentional* numerical change::

    PYTHONPATH=src python -m pytest tests/test_faults_differential.py --regen-golden

then commit the updated ``tests/golden/fault_traces.json``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment

GOLDEN_PATH = Path(__file__).parent / "golden" / "fault_traces.json"

BACKENDS = ("inprocess", "simulator", "multiprocess")

#: name -> {"faults": plan, "overrides": Experiment overrides}.
CASES = {
    # The acceptance schedule: a shard crashes, stays dark, rejoins.
    "crash-rejoin": {
        "faults": {
            "events": [
                {"kind": "crash", "round": 2, "shard": 1},
                {"kind": "rejoin", "round": 4, "shard": 1},
            ],
            "num_shards": 2,
        },
    },
    # Same outage with worker momentum: the rejoined shard restarts its
    # velocity buffers, which the trace must pin.
    "crash-rejoin-momentum": {
        "faults": {
            "events": [
                {"kind": "crash", "round": 2, "shard": 1},
                {"kind": "rejoin", "round": 4, "shard": 1},
            ],
            "num_shards": 2,
        },
        "overrides": {"momentum": 0.9},
    },
    # Worker-scoped wire faults: a dropped round, a corrupted payload
    # and a slowdown (which must not alter a single bit).
    "wire-faults": {
        "faults": {
            "events": [
                {"kind": "drop_round", "round": 2, "worker": 1},
                {"kind": "corrupt_payload", "round": 3, "worker": 2, "factor": 5.0},
                {"kind": "slow", "round": 4, "worker": 0, "factor": 4.0},
            ],
            "num_shards": 2,
        },
    },
}


def make_experiment(case: dict, backend: str = "inprocess", **extra) -> Experiment:
    plan = case["faults"]
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        test_dataset=make_phishing_dataset(seed=1, num_points=40, num_features=6),
        num_steps=6,
        n=4,
        f=0,
        gar="average",
        batch_size=10,
        eval_every=3,
        seed=3,
        faults=plan,
    )
    settings.update(case.get("overrides", {}))
    if backend == "multiprocess":
        settings.update(backend="multiprocess", num_shards=plan["num_shards"])
    settings.update(extra)
    return Experiment(**settings)


def _trace(result) -> dict:
    history = result.history
    return {
        "loss_steps": [int(step) for step in history.loss_steps],
        "losses": [float(loss) for loss in history.losses],
        "accuracy_steps": [int(step) for step in history.accuracy_steps],
        "accuracies": [float(acc) for acc in history.accuracies],
        "final_parameters": [float(value) for value in result.final_parameters],
    }


def _run_backend(case: dict, backend: str) -> dict:
    experiment = make_experiment(case, backend)
    if backend == "simulator":
        return _trace(experiment.simulate())
    return _trace(experiment.run())


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {GOLDEN_PATH}; record it with "
            "--regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_regen_golden(request):
    """Not a test of behaviour: rewrites the fixture when asked to."""
    if not request.config.getoption("--regen-golden"):
        pytest.skip("pass --regen-golden to re-record the fault traces")
    traces = {
        name: _run_backend(case, "inprocess") for name, case in CASES.items()
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(traces, indent=2) + "\n")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(CASES))
def test_backend_matches_golden(name, backend, golden, request):
    if request.config.getoption("--regen-golden"):
        pytest.skip("regenerating, not asserting")
    assert name in golden, f"no golden trace for {name}; run --regen-golden"
    expected = golden[name]
    actual = _run_backend(CASES[name], backend)
    assert actual["loss_steps"] == expected["loss_steps"]
    assert actual["accuracy_steps"] == expected["accuracy_steps"]
    # Bit-identical: exact float equality, not allclose.
    assert actual["losses"] == expected["losses"]
    assert actual["accuracies"] == expected["accuracies"]
    assert actual["final_parameters"] == expected["final_parameters"]


@pytest.mark.parametrize("name", sorted(CASES))
def test_kill_resume_matches_golden(name, golden, tmp_path, request):
    """Checkpoint-kill-resume under a fault plan ≡ the uninterrupted trace."""
    if request.config.getoption("--regen-golden"):
        pytest.skip("regenerating, not asserting")
    case = CASES[name]
    ckpt = tmp_path / "state.json"
    # The "killed" run stops after round 4 (snapshot at 4)...
    make_experiment(
        case, num_steps=4, checkpoint=ckpt, checkpoint_every=2
    ).run()
    # ...and the resumed run finishes rounds 5-6 from the snapshot.
    resumed = make_experiment(
        case, checkpoint=ckpt, checkpoint_every=2
    ).resume()
    actual = _trace(resumed)
    expected = golden[name]
    assert actual["losses"] == expected["losses"]
    assert actual["accuracies"] == expected["accuracies"]
    assert actual["final_parameters"] == expected["final_parameters"]


def test_golden_covers_all_cases(golden):
    """The fixture and the case table must not drift apart."""
    assert sorted(golden) == sorted(CASES)


def test_traces_are_nontrivial(golden):
    """Guard against recording a degenerate (all-zero / empty) trace."""
    for name, trace in golden.items():
        assert len(trace["losses"]) == 6, name
        assert any(value != 0.0 for value in trace["final_parameters"]), name
        assert np.all(np.isfinite(trace["losses"])), name
