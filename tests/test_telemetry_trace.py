"""Trace reading and summarising: the ``repro trace summarize`` core.

``read_trace`` must fail loudly on any corruption, ``summarize_trace``
must fold spans/counters/gauges/warnings correctly across sources, and
``render_trace_summary`` must produce the phase table the CLI prints.
"""

import json

import pytest

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    Telemetry,
    TraceError,
    read_trace,
    render_trace_summary,
    summarize_trace,
)


def build_trace():
    """A two-source trace exercising every summarised event kind."""
    chief_sink = MemorySink()
    chief = Telemetry(sinks=[chief_sink], src="chief")
    chief.open_run(mode="train", gar="krum")
    shard_sink = MemorySink()
    shard = Telemetry(sinks=[shard_sink], src="shard:0")
    chief.set_step(1)
    chief.span_ns("round.server", 2_000_000)
    chief.span_ns("round.cohort", 6_000_000)
    chief.counter("rounds")
    chief.set_step(2)
    chief.span_ns("round.server", 2_000_000)
    chief.span_ns("round.block", 4_000_000, rounds=8)
    chief.counter("rounds")
    chief.gauge("privacy.epsilon_spent", 0.5)
    chief.warning("shard.departed", "shard 1 died", exit_code=23)
    shard.set_step(2)
    shard.counter("rounds", 2)
    for event in shard_sink.events:
        chief.forward(event)
    chief.close_run()
    return chief_sink.events


class TestSummarizeTrace:
    def test_phase_totals_counts_and_rounds(self):
        summary = summarize_trace(build_trace())
        phases = summary["phases"]
        assert phases["round.server"]["count"] == 2
        assert phases["round.server"]["total_ns"] == 4_000_000
        assert phases["round.server"]["rounds"] == 2  # one round per span
        assert phases["round.block"]["rounds"] == 8  # block attr honoured
        total = sum(entry["total_ns"] for entry in phases.values())
        assert sum(entry["share"] for entry in phases.values()) == pytest.approx(1.0)
        assert phases["round.cohort"]["share"] == pytest.approx(6_000_000 / total)

    def test_counters_sum_across_sources(self):
        summary = summarize_trace(build_trace())
        # chief counted 2 rounds, shard:0 counted 2 more.
        assert summary["counters"]["rounds"] == 4

    def test_gauges_warnings_meta_srcs(self):
        summary = summarize_trace(build_trace())
        assert summary["gauges"]["privacy.epsilon_spent"] == 0.5
        assert summary["gauges"]["rounds_per_sec"] > 0
        (warning,) = summary["warnings"]
        assert warning["attrs"]["exit_code"] == 23
        assert summary["srcs"] == ["chief", "shard:0"]
        assert summary["meta"] == {"mode": "train", "gar": "krum"}
        assert summary["steps"] == 2
        assert summary["elapsed_ns"] is not None

    def test_validates_before_summarising(self):
        events = build_trace()
        with pytest.raises(TraceError):
            summarize_trace(events[1:])  # missing run_start

    def test_run_end_snapshot_backfills_counters(self):
        """A source whose counter events were lost still contributes its
        run_end snapshot."""
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink], src="chief")
        telemetry.open_run()
        telemetry.metrics.counter("rounds").add(7)  # no counter event emitted
        telemetry.close_run()
        assert summarize_trace(sink.events)["counters"]["rounds"] == 7


class TestRenderTraceSummary:
    def test_renders_phase_table_with_bars(self):
        text = render_trace_summary(summarize_trace(build_trace()))
        assert "phase" in text and "share" in text
        assert "round.cohort" in text
        assert "#" in text  # proportional bar
        assert "counters:" in text and "rounds = 4" in text
        assert "gauges:" in text
        assert "warnings (1):" in text
        assert "shard 1 died" in text
        # Longest phase sorts first (flamegraph-style ordering).
        lines = text.splitlines()
        first_phase_row = next(line for line in lines if line.startswith("round."))
        assert first_phase_row.startswith("round.cohort")

    def test_renders_sparse_trace_without_sections(self):
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink])
        telemetry.open_run()
        telemetry.close_run()
        text = render_trace_summary(summarize_trace(sink.events))
        assert "1 source(s)" in text
        assert "warnings" not in text
        assert "phase" not in text


class TestReadTrace:
    def write_trace(self, path):
        telemetry = Telemetry(sinks=[JsonlSink(path)])
        telemetry.open_run(mode="train")
        telemetry.counter("rounds")
        telemetry.close_run()
        telemetry.close()

    def test_roundtrips_jsonl_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        events = read_trace(path)
        summary = summarize_trace(events)
        assert summary["counters"]["rounds"] == 1

    def test_ignores_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert len(read_trace(path)) == 4  # run_start, counter, gauge, run_end

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_trace(tmp_path / "nope.jsonl")

    def test_unparseable_line_names_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        with open(path, "a") as handle:
            handle.write("{truncated\n")
        with pytest.raises(TraceError, match=r":5: unparseable"):
            read_trace(path)

    def test_truncated_trace_fails_validation_not_summarises(self, tmp_path):
        """A trace cut mid-run (no run_start survives a head-truncation)
        must fail, not produce a partial summary."""
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(TraceError, match="run_start"):
            summarize_trace(read_trace(path))

    def test_out_of_order_trace_fails_validation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.write_trace(path)
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        events.append(dict(events[-1]))  # duplicate seq: not increasing
        path.write_text("\n".join(json.dumps(event) for event in events) + "\n")
        with pytest.raises(TraceError, match="does not increase"):
            summarize_trace(read_trace(path))
