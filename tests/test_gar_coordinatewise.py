"""Tests for the coordinate-wise GARs: Median, Trimmed Mean, Meamed, Phocas."""

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.gars.meamed import MeamedGAR, mean_around_anchor
from repro.gars.median import MedianGAR
from repro.gars.phocas import PhocasGAR
from repro.gars.trimmed_mean import TrimmedMeanGAR
from tests.helpers import random_gradient_matrix


class TestMedian:
    def test_matches_numpy(self):
        gradients = random_gradient_matrix(9, 6, seed=0)
        assert np.allclose(
            MedianGAR(9, 4).aggregate(gradients), np.median(gradients, axis=0)
        )

    def test_resists_minority_extremes(self):
        gradients = random_gradient_matrix(9, 3, seed=1, scale=0.1)
        gradients[:4] = 1e9  # 4 < majority
        output = MedianGAR(9, 4).aggregate(gradients)
        assert np.all(np.abs(output) < 1.0)

    def test_precondition(self):
        assert MedianGAR.supports(11, 5)
        assert not MedianGAR.supports(10, 5)


class TestTrimmedMean:
    def test_known_values(self):
        # Single coordinate, n=5, f=1: drop min and max, average rest.
        gradients = np.array([[1.0], [2.0], [3.0], [4.0], [100.0]])
        output = TrimmedMeanGAR(5, 1).aggregate(gradients)
        assert output[0] == pytest.approx((2 + 3 + 4) / 3)

    def test_f_zero_is_mean(self):
        gradients = random_gradient_matrix(5, 3, seed=2)
        assert np.allclose(
            TrimmedMeanGAR(5, 0).aggregate(gradients), gradients.mean(axis=0)
        )

    def test_trims_each_coordinate_independently(self):
        gradients = np.array(
            [[0.0, 100.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [100.0, 0.0]]
        )
        output = TrimmedMeanGAR(5, 1).aggregate(gradients)
        assert output[0] == pytest.approx(2.0)
        assert output[1] == pytest.approx(2.0)

    def test_resists_f_extremes(self):
        gradients = random_gradient_matrix(11, 4, seed=3, scale=0.1)
        gradients[:5] = -1e8
        output = TrimmedMeanGAR(11, 5).aggregate(gradients)
        assert np.all(np.abs(output) < 10.0)


class TestMeanAroundAnchor:
    def test_keep_all_is_mean(self):
        gradients = random_gradient_matrix(5, 3, seed=4)
        anchor = np.zeros(3)
        assert np.allclose(
            mean_around_anchor(gradients, anchor, 5), gradients.mean(axis=0)
        )

    def test_keep_one_is_closest(self):
        gradients = np.array([[1.0], [5.0], [-3.0]])
        assert mean_around_anchor(gradients, np.array([4.0]), 1)[0] == 5.0

    def test_known_selection(self):
        gradients = np.array([[0.0], [1.0], [2.0], [10.0]])
        # Anchor 1.0, keep 3 -> {0, 1, 2}, mean 1.
        assert mean_around_anchor(gradients, np.array([1.0]), 3)[0] == pytest.approx(1.0)


class TestMeamed:
    def test_single_coordinate_example(self):
        gradients = np.array([[1.0], [2.0], [3.0], [4.0], [1000.0]])
        # Median 3; keep n - f = 4 closest: {1, 2, 3, 4}; mean 2.5.
        output = MeamedGAR(5, 1).aggregate(gradients)
        assert output[0] == pytest.approx(2.5)

    def test_resists_f_extremes(self):
        gradients = random_gradient_matrix(11, 4, seed=5, scale=0.1)
        gradients[:5] = 1e7
        output = MeamedGAR(11, 5).aggregate(gradients)
        assert np.all(np.abs(output) < 10.0)

    def test_f_zero_is_mean(self):
        gradients = random_gradient_matrix(5, 3, seed=6)
        assert np.allclose(MeamedGAR(5, 0).aggregate(gradients), gradients.mean(axis=0))


class TestPhocas:
    def test_single_coordinate_example(self):
        gradients = np.array([[1.0], [2.0], [3.0], [4.0], [1000.0]])
        # Trimmed mean (f=1): mean of {2,3,4} = 3; keep 4 closest to 3:
        # {1,2,3,4}; mean 2.5.
        output = PhocasGAR(5, 1).aggregate(gradients)
        assert output[0] == pytest.approx(2.5)

    def test_resists_f_extremes(self):
        gradients = random_gradient_matrix(11, 4, seed=7, scale=0.1)
        gradients[:5] = -1e7
        output = PhocasGAR(11, 5).aggregate(gradients)
        assert np.all(np.abs(output) < 10.0)

    def test_f_zero_is_mean(self):
        gradients = random_gradient_matrix(5, 3, seed=8)
        assert np.allclose(PhocasGAR(5, 0).aggregate(gradients), gradients.mean(axis=0))

    def test_differs_from_meamed_on_some_input(self):
        """Phocas anchors on the trimmed mean, Meamed on the median; the
        anchors select different keep-sets on some inputs.  Scan a fixed
        family of seeds and require at least one disagreement."""
        rng = np.random.default_rng(0)
        meamed_gar, phocas_gar = MeamedGAR(7, 2), PhocasGAR(7, 2)
        for _ in range(300):
            gradients = rng.standard_normal((7, 1)) ** 3  # skewed values
            if not np.allclose(
                meamed_gar.aggregate(gradients), phocas_gar.aggregate(gradients)
            ):
                return
        pytest.fail("meamed and phocas agreed on 300 random skewed inputs")


class TestAverage:
    def test_is_mean(self):
        from repro.gars.average import AverageGAR

        gradients = random_gradient_matrix(7, 3, seed=9)
        assert np.allclose(AverageGAR(7, 0).aggregate(gradients), gradients.mean(axis=0))

    def test_byzantine_guard(self):
        from repro.gars.average import AverageGAR

        with pytest.raises(AggregationError, match="not Byzantine resilient"):
            AverageGAR(7, 2)
        gar = AverageGAR(7, 2, allow_byzantine=True)
        assert gar.f == 2

    def test_single_large_value_corrupts(self):
        """Blanchard et al.'s observation: one Byzantine worker fully
        controls the average."""
        from repro.gars.average import AverageGAR

        gradients = np.zeros((7, 2))
        gradients[0] = 7e9
        output = AverageGAR(7, 1, allow_byzantine=True).aggregate(gradients)
        assert np.all(output == 1e9)


class TestBulyan:
    def test_precondition(self):
        from repro.gars.bulyan import BulyanGAR

        assert BulyanGAR.supports(11, 2)
        assert not BulyanGAR.supports(11, 3)  # needs n >= 4f + 3 = 15

    def test_resists_f_extremes(self):
        from repro.gars.bulyan import BulyanGAR

        gradients = random_gradient_matrix(11, 4, seed=10, scale=0.1)
        gradients[:2] = 1e8
        output = BulyanGAR(11, 2).aggregate(gradients)
        assert np.all(np.abs(output) < 10.0)

    def test_output_averages_beta_values(self):
        from repro.gars.bulyan import BulyanGAR

        # n=11, f=2: theta = 7, beta = 3.
        gar = BulyanGAR(11, 2)
        gradients = random_gradient_matrix(11, 5, seed=11)
        output = gar.aggregate(gradients)
        assert output.shape == (5,)
        assert np.all(output >= gradients.min(axis=0))
        assert np.all(output <= gradients.max(axis=0))
