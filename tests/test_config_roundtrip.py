"""Property-style tests for ExperimentConfig JSON round-tripping."""

import json
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import PAPER_SEEDS, ExperimentConfig

GARS = ("mda", "krum", "median", "average", "trimmed-mean")
ATTACKS = (None, "little", "empire", "signflip")
NOISE_KINDS = ("gaussian", "laplace")
DISTRIBUTIONS = ("shared", "iid-shards", "label-shards")


def random_config(rng: random.Random) -> ExperimentConfig:
    """One random-but-valid config cell."""
    attack = rng.choice(ATTACKS)
    epsilon = rng.choice((None, 0.1, 0.2, 1.0))
    attack_kwargs = ()
    if attack in ("little", "empire") and rng.random() < 0.5:
        attack_kwargs = (("factor", rng.choice((0.5, 1.1, 1.5))),)
    return ExperimentConfig(
        name=f"cell-{rng.randrange(10**6)}",
        num_steps=rng.randrange(1, 2000),
        n=rng.randrange(3, 30),
        f=rng.randrange(0, 3),
        num_byzantine=rng.choice((None, 0)),
        gar=rng.choice(GARS),
        attack=attack,
        attack_kwargs=attack_kwargs,
        batch_size=rng.randrange(1, 500),
        g_max=rng.choice((1e-2, 0.5, 2.0)),
        epsilon=epsilon,
        delta=rng.choice((1e-6, 1e-5)),
        noise_kind=rng.choice(NOISE_KINDS),
        learning_rate=rng.choice((0.5, 2.0)),
        momentum=rng.choice((0.0, 0.9, 0.99)),
        momentum_at=rng.choice(("worker", "server")),
        clip_mode=rng.choice(("batch", "per_example")),
        drop_probability=rng.choice((0.0, 0.1)),
        eval_every=rng.randrange(1, 100),
        seeds=tuple(sorted(rng.sample(range(1, 50), rng.randrange(1, 6)))),
    )


@pytest.mark.parametrize("case_seed", range(50))
def test_json_round_trip_is_identity(case_seed):
    config = random_config(random.Random(case_seed))
    payload = json.loads(json.dumps(config.to_dict()))
    assert ExperimentConfig.from_dict(payload) == config


def test_to_dict_is_json_serialisable():
    config = ExperimentConfig(
        name="paper", attack="little", attack_kwargs=(("factor", 1.5),)
    )
    text = json.dumps(config.to_dict())
    assert '"factor"' in text
    assert json.loads(text)["seeds"] == list(PAPER_SEEDS)


def test_from_dict_accepts_mapping_attack_kwargs():
    config = ExperimentConfig.from_dict(
        {"name": "cell", "attack": "little", "attack_kwargs": {"factor": 2.0}}
    )
    assert config.attack_kwargs == (("factor", 2.0),)
    assert config.train_kwargs(1)["attack_kwargs"] == {"factor": 2.0}


def test_from_dict_accepts_null_attack_kwargs():
    config = ExperimentConfig.from_dict(
        {"name": "cell", "attack": "little", "attack_kwargs": None}
    )
    assert config.attack_kwargs == ()
    assert config.train_kwargs(1)["attack_kwargs"] is None  # legacy shape


def test_from_dict_defaults_match_constructor():
    assert ExperimentConfig.from_dict({"name": "x"}) == ExperimentConfig(name="x")


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown config fields"):
        ExperimentConfig.from_dict({"name": "x", "bogus": 1})


def test_from_dict_validates_like_constructor():
    with pytest.raises(ConfigurationError):
        ExperimentConfig.from_dict({"name": "x", "num_steps": 0})
