"""Tests for repro.data.datasets: the Dataset container and splitting."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, train_test_split
from repro.exceptions import DataError
from repro.rng import generator_from_seed


def small_dataset(n=10, d=3, name="toy"):
    rng = np.random.default_rng(0)
    return Dataset(
        features=rng.random((n, d)),
        labels=(rng.random(n) < 0.5).astype(float),
        name=name,
    )


class TestDataset:
    def test_shapes_exposed(self):
        dataset = small_dataset(n=7, d=4)
        assert dataset.num_points == 7
        assert dataset.num_features == 4
        assert len(dataset) == 7

    def test_rejects_1d_features(self):
        with pytest.raises(DataError, match="2-D"):
            Dataset(features=np.zeros(5), labels=np.zeros(5))

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError, match="1-D"):
            Dataset(features=np.zeros((5, 2)), labels=np.zeros((5, 1)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError, match="disagree"):
            Dataset(features=np.zeros((5, 2)), labels=np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(DataError, match="at least one"):
            Dataset(features=np.zeros((0, 2)), labels=np.zeros(0))

    def test_coerces_to_float64(self):
        dataset = Dataset(
            features=np.ones((3, 2), dtype=np.float32),
            labels=np.ones(3, dtype=np.int64),
        )
        assert dataset.features.dtype == np.float64
        assert dataset.labels.dtype == np.float64

    def test_subset_preserves_order(self):
        dataset = small_dataset(n=10)
        indices = np.array([3, 1, 7])
        subset = dataset.subset(indices)
        assert np.array_equal(subset.features, dataset.features[indices])
        assert np.array_equal(subset.labels, dataset.labels[indices])

    def test_subset_rejects_2d_indices(self):
        with pytest.raises(DataError, match="1-D"):
            small_dataset().subset(np.zeros((2, 2), dtype=int))

    def test_subset_rename(self):
        subset = small_dataset().subset(np.array([0]), name="renamed")
        assert subset.name == "renamed"

    def test_class_balance_sums_to_one(self):
        balance = small_dataset(n=50).class_balance()
        assert pytest.approx(sum(balance.values())) == 1.0

    def test_class_balance_single_class(self):
        dataset = Dataset(features=np.zeros((4, 2)), labels=np.ones(4))
        assert dataset.class_balance() == {1.0: 1.0}


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(small_dataset(n=10), 7, generator_from_seed(0))
        assert train.num_points == 7
        assert test.num_points == 3

    def test_partition_is_exact(self):
        dataset = small_dataset(n=20)
        train, test = train_test_split(dataset, 12, generator_from_seed(0))
        combined = np.vstack([train.features, test.features])
        assert combined.shape == dataset.features.shape
        # Every original row appears exactly once.
        original = {tuple(row) for row in dataset.features}
        recombined = {tuple(row) for row in combined}
        assert original == recombined

    def test_deterministic_given_rng(self):
        dataset = small_dataset(n=20)
        a_train, _ = train_test_split(dataset, 12, generator_from_seed(5))
        b_train, _ = train_test_split(dataset, 12, generator_from_seed(5))
        assert np.array_equal(a_train.features, b_train.features)

    def test_no_shuffle_keeps_order(self):
        dataset = small_dataset(n=10)
        train, test = train_test_split(dataset, 6, generator_from_seed(0), shuffle=False)
        assert np.array_equal(train.features, dataset.features[:6])
        assert np.array_equal(test.features, dataset.features[6:])

    @pytest.mark.parametrize("bad_size", [0, 10, 11, -1])
    def test_invalid_sizes_rejected(self, bad_size):
        with pytest.raises(DataError):
            train_test_split(small_dataset(n=10), bad_size, generator_from_seed(0))

    def test_split_names(self):
        train, test = train_test_split(small_dataset(name="abc"), 5, generator_from_seed(0))
        assert train.name == "abc-train"
        assert test.name == "abc-test"
