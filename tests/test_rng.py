"""Tests for repro.rng: deterministic seed trees."""

import numpy as np
import pytest

from repro.rng import SeedTree, generator_from_seed, spawn_generators


class TestGeneratorFromSeed:
    def test_same_seed_same_stream(self):
        a = generator_from_seed(7)
        b = generator_from_seed(7)
        assert np.array_equal(a.standard_normal(16), b.standard_normal(16))

    def test_different_seeds_differ(self):
        a = generator_from_seed(7)
        b = generator_from_seed(8)
        assert not np.array_equal(a.standard_normal(16), b.standard_normal(16))

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(3)
        a = generator_from_seed(sequence)
        b = generator_from_seed(np.random.SeedSequence(3))
        assert np.array_equal(a.standard_normal(4), b.standard_normal(4))


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_streams_are_independent(self):
        generators = spawn_generators(0, 3)
        draws = [g.standard_normal(8) for g in generators]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible(self):
        first = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        second = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count_ok(self):
        assert spawn_generators(0, 0) == []


class TestSeedTree:
    def test_same_path_same_stream(self):
        tree = SeedTree(1)
        a = tree.generator("worker", 0, "noise")
        b = tree.generator("worker", 0, "noise")
        assert np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_different_paths_differ(self):
        tree = SeedTree(1)
        a = tree.generator("worker", 0, "noise")
        b = tree.generator("worker", 1, "noise")
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_string_vs_int_parts_distinct(self):
        tree = SeedTree(1)
        a = tree.generator("worker", 0)
        b = tree.generator("worker", "0")
        # FNV hash of "0" differs from the int 0 masked value.
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_different_roots_differ(self):
        a = SeedTree(1).generator("x")
        b = SeedTree(2).generator("x")
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_child_tree_deterministic(self):
        a = SeedTree(5).child("run", 3)
        b = SeedTree(5).child("run", 3)
        assert a.root_seed == b.root_seed

    def test_child_tree_independent_of_sibling(self):
        a = SeedTree(5).child("run", 3)
        b = SeedTree(5).child("run", 4)
        assert a.root_seed != b.root_seed

    def test_rejects_non_int_root(self):
        with pytest.raises(TypeError):
            SeedTree("not-an-int")

    def test_rejects_bad_path_part(self):
        tree = SeedTree(0)
        with pytest.raises(TypeError):
            tree.generator(("tuple",))

    def test_repr_mentions_seed(self):
        assert "42" in repr(SeedTree(42))

    def test_root_seed_property(self):
        assert SeedTree(11).root_seed == 11

    def test_unicode_path_stable(self):
        a = SeedTree(1).generator("wörker")
        b = SeedTree(1).generator("wörker")
        assert np.array_equal(a.standard_normal(4), b.standard_normal(4))
