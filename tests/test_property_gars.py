"""Property-based tests (hypothesis) for the vectorized GAR kernels.

Three families of properties, each run against randomly drawn
``(n, f, d)`` inputs:

* **Agreement with the pre-vectorization references** — the kernels in
  :mod:`repro.gars.kernels` must compute the same aggregates as the
  original per-row Python implementations kept in
  :mod:`repro.gars.reference`.  For selection-based rules (Krum, MDA,
  Bulyan) agreement is asserted on *integer-valued* inputs, where both
  distance paths are exact (no rounding anywhere), so any disagreement
  is a logic bug and not a last-ulp score flip; the smooth rules
  (coordinate-wise, geometric median) are additionally checked on
  arbitrary floats.
* **Permutation invariance** — shuffling the submission order never
  changes the aggregate, including under exact ties.
* **Batch consistency** — ``aggregate_batch`` over a stack equals the
  per-slice ``aggregate`` loop bit for bit.

The exact-tie behaviour of the new tie-break kernel gets its own
deterministic tests (duplicate rows, tied scores, signed zeros).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gars import get_gar
from repro.gars.kernels import (
    krum_scores_from_sq_distances,
    pairwise_sq_distances,
    rank_by_score_then_value,
)
from repro.gars.reference import (
    REFERENCE_AGGREGATORS,
    krum_scores_reference,
    rank_by_score_then_value_reference,
)

# (name, n, f) cells with every precondition satisfied.
SETUPS = [
    ("median", 9, 4),
    ("trimmed-mean", 9, 4),
    ("meamed", 9, 4),
    ("phocas", 9, 4),
    ("krum", 9, 2),
    ("mda", 9, 3),
    ("bulyan", 11, 2),
    ("geometric-median", 9, 4),
]


def _matrix_strategy(n, d, elements):
    return st.lists(
        st.lists(elements, min_size=d, max_size=d), min_size=n, max_size=n
    ).map(lambda rows: np.asarray(rows, dtype=np.float64))


def _integer_matrix(n, d):
    """Integer-valued float matrices: all distance arithmetic is exact."""
    return _matrix_strategy(n, d, st.integers(-8, 8).map(float))


def _float_matrix(n, d):
    return _matrix_strategy(
        n,
        d,
        st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False, width=32),
    )


@pytest.mark.slow
class TestAgreementWithReference:
    @pytest.mark.parametrize("name,n,f", SETUPS)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_integer_inputs_exact_agreement(self, name, n, f, data):
        """On exact-arithmetic inputs the kernel and the reference must
        produce identical aggregates — selection rules included."""
        d = data.draw(st.integers(1, 4))
        gradients = data.draw(_integer_matrix(n, d))
        gar = get_gar(name, n, f)
        expected = REFERENCE_AGGREGATORS[name](gradients, n, f)
        actual = gar.aggregate(gradients)
        if name == "geometric-median":  # iterative: agreement to tolerance
            assert np.allclose(actual, expected, atol=1e-7)
        else:
            assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("name,n,f", SETUPS)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_float_inputs_close_agreement(self, name, n, f, data):
        """On arbitrary floats, agreement up to reordering tolerance.

        Selection rules can legitimately flip between tied-to-rounding
        candidates, so their tolerance is driven by the score gap:
        inputs whose reference scores are neither exactly tied nor
        well-separated are skipped via ``assume``-style filtering.
        """
        from hypothesis import assume

        d = data.draw(st.integers(1, 4))
        gradients = data.draw(_float_matrix(n, d))
        gar = get_gar(name, n, f)
        if name in ("krum", "bulyan", "mda"):
            scores = krum_scores_reference(gradients, min(f, n - 3))
            gaps = np.diff(np.sort(scores))
            scale = max(float(np.max(scores)), 1.0)
            assume(np.all((gaps == 0.0) | (gaps > 1e-6 * scale)))
        expected = REFERENCE_AGGREGATORS[name](gradients, n, f)
        actual = gar.aggregate(gradients)
        scale = max(float(np.max(np.abs(gradients))), 1.0)
        assert np.allclose(actual, expected, atol=1e-6 * scale)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_krum_scores_match_brute_force(self, data):
        """Kernel scores equal the O(n^2 d) definition on any input —
        including near-duplicate rows, where the old Gram path lost
        precision (the hybrid kernel recomputes those exactly)."""
        n = data.draw(st.integers(5, 10))
        f = data.draw(st.integers(0, n - 4))
        d = data.draw(st.integers(1, 5))
        gradients = data.draw(_float_matrix(n, d))
        scores = krum_scores_from_sq_distances(pairwise_sq_distances(gradients), f)
        neighbours = n - f - 2
        for i in range(n):
            exact = sorted(
                float(np.sum((gradients[i] - gradients[j]) ** 2))
                for j in range(n)
                if j != i
            )
            assert scores[i] == pytest.approx(sum(exact[:neighbours]), rel=1e-9)


@pytest.mark.slow
class TestPermutationInvariance:
    @pytest.mark.parametrize("name,n,f", SETUPS)
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_shuffle_invariant(self, name, n, f, data):
        d = data.draw(st.integers(1, 4))
        gradients = data.draw(_integer_matrix(n, d))
        permutation = data.draw(st.permutations(list(range(n))))
        gar = get_gar(name, n, f)
        base = gar.aggregate(gradients)
        shuffled = gar.aggregate(gradients[np.asarray(permutation)])
        if name == "geometric-median":
            assert np.allclose(shuffled, base, atol=1e-7)
        else:
            assert np.array_equal(shuffled, base)


@pytest.mark.slow
class TestBatchConsistency:
    @pytest.mark.parametrize("name,n,f", SETUPS)
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_batch_equals_per_slice(self, name, n, f, data):
        """aggregate_batch == per-slice aggregate, bit for bit."""
        d = data.draw(st.integers(1, 4))
        batch = data.draw(st.integers(1, 3))
        stack = np.stack([data.draw(_float_matrix(n, d)) for _ in range(batch)])
        gar = get_gar(name, n, f)
        batched = gar.aggregate_batch(stack)
        per_slice = np.stack([gar.aggregate(matrix) for matrix in stack])
        assert np.array_equal(batched, per_slice)


class TestTieBreakKernel:
    """Deterministic exact-tie cases for the NumPy-native tie-break."""

    def _assert_matches_reference(self, scores, gradients):
        actual = rank_by_score_then_value(np.asarray(scores, float), gradients)
        expected = rank_by_score_then_value_reference(
            np.asarray(scores, float), gradients
        )
        assert np.array_equal(actual, expected)

    def test_all_scores_tied_ranks_by_value(self):
        gradients = np.array([[2.0, 1.0], [1.0, 3.0], [1.0, 2.0], [0.5, 9.0]])
        self._assert_matches_reference([1.0, 1.0, 1.0, 1.0], gradients)

    def test_duplicate_rows_keep_submission_order(self):
        row = np.array([1.0, 2.0, 3.0])
        gradients = np.stack([row, row, row + 1.0, row])
        self._assert_matches_reference([0.0, 0.0, 5.0, 0.0], gradients)

    def test_partial_tie_runs(self):
        gradients = np.array(
            [[3.0], [1.0], [2.0], [1.5], [0.0]]
        )
        self._assert_matches_reference([2.0, 1.0, 2.0, 1.0, 3.0], gradients)

    def test_signed_zeros_compare_equal(self):
        """-0.0 == 0.0 must tie (and fall through to the next column),
        exactly as Python tuple comparison treats it."""
        gradients = np.array([[0.0, 2.0], [-0.0, 1.0], [0.0, 3.0]])
        self._assert_matches_reference([1.0, 1.0, 1.0], gradients)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_on_random_ties(self, data):
        """Random low-entropy inputs (many exact ties) vs the reference."""
        n = data.draw(st.integers(2, 8))
        d = data.draw(st.integers(1, 3))
        scores = np.asarray(
            data.draw(
                st.lists(
                    st.sampled_from([0.0, 1.0, 2.0]), min_size=n, max_size=n
                )
            )
        )
        gradients = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.sampled_from([-1.0, -0.0, 0.0, 1.0]),
                        min_size=d,
                        max_size=d,
                    ),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        self._assert_matches_reference(scores, gradients)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_permutation_covariant(self, data):
        """Ranking then permuting == permuting then ranking (as index
        sets), so selection GARs stay permutation-invariant even when
        everything ties."""
        n = data.draw(st.integers(2, 7))
        gradients = np.asarray(
            data.draw(
                st.lists(
                    st.lists(st.integers(-2, 2).map(float), min_size=2, max_size=2),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        scores = np.asarray(
            data.draw(st.lists(st.sampled_from([0.0, 1.0]), min_size=n, max_size=n))
        )
        permutation = np.asarray(data.draw(st.permutations(list(range(n)))))
        base = rank_by_score_then_value(scores, gradients)
        shuffled = rank_by_score_then_value(
            scores[permutation], gradients[permutation]
        )
        # The *rows* selected at every rank must match (indices differ
        # by the permutation, and equal rows may swap places).
        assert np.array_equal(
            gradients[base], gradients[permutation][shuffled]
        )
        assert np.array_equal(scores[base], scores[permutation][shuffled])
