"""Differential tests: campaign execution vs direct run_config/simulate.

The campaign runner must be a pure orchestration layer: for a pinned
matrix, every cell executed through the campaign (serial or parallel,
cold or warm cache) is bit-identical to calling
:func:`repro.experiments.runner.run_config` (train cells) or
:meth:`repro.pipeline.builder.Experiment.simulate` (simulate cells)
directly with the same config and seeds.
"""

import numpy as np
import pytest

from repro.campaign.matrix import ScenarioMatrix
from repro.campaign.runner import job_key, run_campaign
from repro.campaign.store import ResultStore
from repro.experiments.runner import build_environment, run_config
from repro.pipeline.builder import Experiment

PINNED_MATRIX = {
    "name": "differential",
    "model": {"name": "logistic", "loss_kind": "mse"},
    "data_seed": 0,
    "base": {
        "num_steps": 3,
        "n": 5,
        "f": 2,
        "batch_size": 6,
        "eval_every": 1,
        "seeds": [1, 2],
    },
    "axes": {"gar": ["mda", "median"], "epsilon": [None, 0.5]},
    "exclude": [{"gar": "median", "epsilon": 0.5}],
    "include": [
        {
            "name": "semisync-sim",
            "gar": "mda",
            "attack": "little",
            "mode": "simulate",
            "policy": "semi-sync",
            "policy_kwargs": {"buffer_size": 3},
            "latency": "lognormal",
            "latency_kwargs": {"median": 1.0, "sigma": 0.4},
        }
    ],
}


@pytest.fixture(scope="module")
def matrix():
    return ScenarioMatrix.from_dict(PINNED_MATRIX)


@pytest.fixture(scope="module")
def environment(matrix):
    return build_environment(matrix.model_spec, matrix.data_seed)


@pytest.fixture(scope="module")
def campaign_store(matrix, tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("campaign") / "store")
    summary = run_campaign(matrix, store)
    assert summary.executed == matrix.total_runs
    return store


def cell_records(matrix, store, cell):
    return [store.load(job_key(cell, seed, matrix)) for seed in cell.config.seeds]


class TestTrainCellsMatchRunConfig:
    def test_histories_bit_identical(self, matrix, environment, campaign_store):
        model, train_set, test_set = environment
        for cell in matrix.cells:
            if cell.mode != "train":
                continue
            outcome = run_config(cell.config, model, train_set, test_set)
            records = cell_records(matrix, campaign_store, cell)
            assert len(records) == len(outcome.histories)
            for record, history in zip(records, outcome.histories):
                assert record["history"] == history.to_dict()

    def test_final_parameters_bit_identical(self, matrix, environment, campaign_store):
        model, train_set, test_set = environment
        for cell in matrix.cells:
            if cell.mode != "train":
                continue
            for seed, record in zip(
                cell.config.seeds, cell_records(matrix, campaign_store, cell)
            ):
                direct = Experiment.from_config(
                    cell.config, model, train_set, test_set, seed=seed
                ).run()
                assert record["final_parameters"] == direct.final_parameters.tolist()
                assert record["final_loss"] == direct.history.final_loss

    def test_privacy_reports_match(self, matrix, environment, campaign_store):
        model, train_set, test_set = environment
        for cell in matrix.cells:
            if cell.mode != "train" or cell.config.epsilon is None:
                continue
            outcome = run_config(cell.config, model, train_set, test_set)
            for record in cell_records(matrix, campaign_store, cell):
                assert record["privacy"]["basic"] == list(outcome.privacy.basic)
                assert record["privacy"]["noise_sigma"] == outcome.privacy.noise_sigma


class TestSimulateCellsMatchDirectSimulate:
    def test_bit_identical(self, matrix, environment, campaign_store):
        model, train_set, test_set = environment
        for cell in matrix.cells:
            if cell.mode != "simulate":
                continue
            for seed, record in zip(
                cell.config.seeds, cell_records(matrix, campaign_store, cell)
            ):
                direct = Experiment.from_config(
                    cell.config, model, train_set, test_set, seed=seed
                ).simulate()
                assert record["history"] == direct.history.to_dict()
                assert record["final_parameters"] == direct.final_parameters.tolist()
                assert record["simulation"]["virtual_time"] == direct.virtual_time
                assert record["simulation"]["rounds"] == direct.rounds


class TestExecutionPathsAgree:
    def test_parallel_cold_matches_serial_cold(self, matrix, campaign_store, tmp_path):
        parallel_store = ResultStore(tmp_path / "parallel")
        summary = run_campaign(matrix, parallel_store, max_workers=3)
        assert summary.executed == matrix.total_runs
        assert parallel_store.keys() == campaign_store.keys()
        for key in campaign_store.keys():
            assert parallel_store.load(key) == campaign_store.load(key)

    def test_warm_cache_leaves_records_untouched(self, matrix, campaign_store):
        before = {key: campaign_store.load(key) for key in campaign_store.keys()}
        summary = run_campaign(matrix, campaign_store)
        assert summary.executed == 0
        assert summary.skipped == matrix.total_runs
        after = {key: campaign_store.load(key) for key in campaign_store.keys()}
        assert before == after

    def test_warm_parallel_also_skips(self, matrix, campaign_store):
        summary = run_campaign(matrix, campaign_store, max_workers=2)
        assert (summary.executed, summary.skipped) == (0, matrix.total_runs)

    def test_store_roundtrip_preserves_float_bits(self, matrix, campaign_store):
        for key in campaign_store.keys():
            record = campaign_store.load(key)
            for loss in record["history"]["losses"]:
                assert np.float64(loss) == loss
