"""Multiprocess fault plane: real crashes, hang SIGKILL, respawn, leaks.

The in-process semantics live in ``test_faults_injection.py``; here the
same :class:`FaultPlan` drives *real* process deaths — ``crash`` is an
``os._exit`` inside the shard, ``hang`` blocks until the chief's round
timeout SIGKILLs it — followed by chief-side respawn at the scheduled
``rejoin`` round.  Covered under both ``fork`` and ``spawn`` start
methods: exit-code propagation into the departure reason, zero leaked
``/dev/shm`` wire segments after shutdown, and the membership log.
"""

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.distributed.runtime import CRASH_EXIT_CODE, wire_segment_names
from repro.exceptions import DegradedRunError
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.telemetry import MemorySink, Telemetry

CRASH_REJOIN = {
    "events": [
        {"kind": "crash", "round": 2, "shard": 1},
        {"kind": "rejoin", "round": 4, "shard": 1},
    ],
    "num_shards": 2,
}


def make_experiment(faults=None, **overrides):
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
        num_steps=5,
        n=4,
        f=0,
        gar="average",
        batch_size=10,
        eval_every=100,
        seed=3,
        backend="multiprocess",
        num_shards=2,
        faults=faults,
    )
    settings.update(overrides)
    return Experiment(**settings)


class TestRespawn:
    def test_crash_then_rejoin_restores_membership(self):
        experiment = make_experiment(faults=CRASH_REJOIN)
        with experiment.build_multiprocess_cluster() as runtime:
            runtime.start()
            results = [runtime.step() for _ in range(5)]
            assert runtime.departed == {}
            assert runtime.live_worker_count == 4
            log = runtime.membership_log
        # Shard 1 (workers 2, 3) really died at round 2 and came back
        # at round 4, respawned by the chief.
        assert [(step, shard, kind) for step, shard, kind, _ in log] == [
            (2, 1, "departed"),
            (4, 1, "respawned"),
        ]
        assert f"code {CRASH_EXIT_CODE}" in log[0][3]
        assert np.any(results[0].honest_submitted[2:] != 0.0)
        assert np.all(results[1].honest_submitted[2:] == 0.0)
        assert np.all(results[2].honest_submitted[2:] == 0.0)
        assert np.any(results[3].honest_submitted[2:] != 0.0)

    def test_respawn_emits_telemetry(self):
        sink = MemorySink()
        experiment = make_experiment(
            faults=CRASH_REJOIN, telemetry=Telemetry(sinks=[sink])
        )
        experiment.run()
        respawns = [
            event for event in sink.by_kind("counter")
            if event["name"] == "shard.respawned"
        ]
        assert len(respawns) == 1
        marks = [
            event for event in sink.events
            if event.get("name") == "shard.respawned" and event["kind"] == "mark"
        ]
        assert marks and marks[0]["attrs"]["shard"] == 1
        assert marks[0]["attrs"]["workers"] == [2, 3]

    def test_all_shards_down_raises_degraded(self):
        plan = {
            "events": [
                {"kind": "crash", "round": 2, "shard": 0},
                {"kind": "crash", "round": 2, "shard": 1},
            ],
            "num_shards": 2,
        }
        experiment = make_experiment(faults=plan)
        with pytest.raises(DegradedRunError, match="every honest worker"):
            experiment.run()
        assert wire_segment_names() == []  # error path releases the plane


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestStartMethods:
    def test_hang_is_sigkilled_and_leaks_nothing(self, start_method, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        plan = {
            "events": [{"kind": "hang", "round": 3, "shard": 1}],
            "num_shards": 2,
        }
        experiment = make_experiment(
            faults=plan, num_steps=4, round_timeout=2.0
        )
        with experiment.build_multiprocess_cluster() as runtime:
            runtime.start()
            for _ in range(4):
                runtime.step()
            # The hung shard was SIGKILLed by the chief's round timeout.
            assert runtime.departed == {1: "round timed out"}
            assert runtime.departed_workers == [2, 3]
        assert wire_segment_names() == []

    def test_crash_exit_code_propagates(self, start_method, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        plan = {
            "events": [{"kind": "crash", "round": 3, "shard": 1}],
            "num_shards": 2,
        }
        experiment = make_experiment(faults=plan, num_steps=4)
        with experiment.build_multiprocess_cluster() as runtime:
            runtime.start()
            for _ in range(4):
                runtime.step()
            assert runtime.departed == {
                1: f"process died (code {CRASH_EXIT_CODE})"
            }
        assert wire_segment_names() == []

    def test_crash_rejoin_parity_across_start_methods(
        self, start_method, monkeypatch
    ):
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        result = make_experiment(faults=CRASH_REJOIN).run()
        reference = make_experiment(faults=CRASH_REJOIN, backend="inprocess").run()
        assert (
            result.final_parameters.tolist()
            == reference.final_parameters.tolist()
        )
        assert (
            result.history.losses.tolist() == reference.history.losses.tolist()
        )
