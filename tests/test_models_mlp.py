"""Tests for the one-hidden-layer MLP (non-convex extension)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.mlp import MLPClassifierModel
from tests.helpers import numerical_gradient


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    features = rng.standard_normal((8, 3))
    labels = (rng.random(8) < 0.5).astype(float)
    return features, labels


class TestMLP:
    def test_dimension_formula(self):
        model = MLPClassifierModel(num_features=3, hidden_units=5)
        assert model.dimension == 5 * 3 + 2 * 5 + 1

    def test_invalid_hidden(self):
        with pytest.raises(ConfigurationError):
            MLPClassifierModel(3, hidden_units=0)

    def test_gradient_matches_numerical(self, batch):
        features, labels = batch
        model = MLPClassifierModel(3, hidden_units=4)
        w = model.initial_parameters(np.random.default_rng(1))
        numeric = numerical_gradient(
            lambda p: model.loss(p, features, labels), w, epsilon=1e-6
        )
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-5)

    def test_per_example_mean_equals_batch(self, batch):
        features, labels = batch
        model = MLPClassifierModel(3, hidden_units=4)
        w = model.initial_parameters(np.random.default_rng(2))
        per_example = model.per_example_gradients(w, features, labels)
        assert per_example.shape == (8, model.dimension)
        assert np.allclose(per_example.mean(axis=0), model.gradient(w, features, labels))

    def test_initialisation_seeded(self):
        model = MLPClassifierModel(3, hidden_units=4)
        a = model.initial_parameters(np.random.default_rng(7))
        b = model.initial_parameters(np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_initialisation_not_zero(self):
        model = MLPClassifierModel(3, hidden_units=4)
        w = model.initial_parameters(np.random.default_rng(0))
        assert np.linalg.norm(w) > 0

    def test_predictions_binary(self, batch):
        features, _ = batch
        model = MLPClassifierModel(3, hidden_units=4)
        w = model.initial_parameters(np.random.default_rng(3))
        assert set(np.unique(model.predict(w, features))) <= {0.0, 1.0}

    def test_loss_bounded(self, batch):
        features, labels = batch
        model = MLPClassifierModel(3, hidden_units=4)
        w = model.initial_parameters(np.random.default_rng(4))
        assert 0.0 <= model.loss(w, features, labels) <= 1.0

    def test_learns_xor(self):
        """The classic non-linearly-separable task a linear model cannot do."""
        features = np.array(
            [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 25
        )
        labels = np.array([0.0, 1.0, 1.0, 0.0] * 25)
        model = MLPClassifierModel(2, hidden_units=8)
        w = model.initial_parameters(np.random.default_rng(5))
        for _ in range(3000):
            w -= 2.0 * model.gradient(w, features, labels)
        assert model.accuracy(w, features, labels) == 1.0

    def test_feature_width_validated(self, batch):
        features, labels = batch
        model = MLPClassifierModel(5, hidden_units=4)
        with pytest.raises(ValueError):
            model.loss(model.initial_parameters(), features, labels)
