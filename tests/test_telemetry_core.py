"""Unit tests for the telemetry core: handle, metrics, event schema.

The :class:`~repro.telemetry.Telemetry` handle must stamp every event
with its source's monotonic ``seq``/``step`` so traces satisfy the
schema invariants *by construction*, and
:func:`~repro.telemetry.validate_events` must reject every malformed
shape the multiprocess merge could conceivably produce.
"""

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.telemetry import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    Counter,
    Gauge,
    MemorySink,
    MetricsRegistry,
    Telemetry,
    TraceError,
    validate_events,
)


def make_telemetry(src="chief"):
    sink = MemorySink()
    return Telemetry(sinks=[sink], src=src), sink


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        counter = Counter("rounds")
        assert counter.add() == 1
        assert counter.add(4) == 5
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            Counter("rounds").add(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("epsilon")
        assert gauge.value is None
        gauge.set(0.5)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_registry_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")

    def test_registry_rejects_type_fork(self):
        registry = MetricsRegistry()
        registry.counter("rounds")
        registry.gauge("rate")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("rounds")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("rate")

    def test_snapshots_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("z").set(9)
        assert registry.counter_values() == {"a": 1, "b": 2}
        assert registry.gauge_values() == {"z": 9}


class TestTelemetryEmission:
    def test_events_carry_src_seq_step(self):
        telemetry, sink = make_telemetry(src="shard:3")
        telemetry.mark("one")
        telemetry.set_step(5)
        telemetry.mark("two")
        first, second = sink.events
        assert first["src"] == second["src"] == "shard:3"
        assert (first["seq"], second["seq"]) == (0, 1)
        assert (first["step"], second["step"]) == (0, 5)

    def test_span_context_manager_times_block(self):
        telemetry, sink = make_telemetry()
        with telemetry.span("round.cohort", round=4):
            pass
        (event,) = sink.events
        assert event["kind"] == "span"
        assert event["name"] == "round.cohort"
        assert event["dur_ns"] >= 0
        assert event["attrs"] == {"round": 4}

    def test_span_ns_emits_preaccumulated_duration(self):
        telemetry, sink = make_telemetry()
        telemetry.span_ns("round.block", 12345, rounds=64)
        (event,) = sink.events
        assert event["dur_ns"] == 12345
        assert event["attrs"] == {"rounds": 64}

    def test_counter_emits_cumulative_value(self):
        telemetry, sink = make_telemetry()
        telemetry.counter("network.dropped")
        telemetry.counter("network.dropped", 3)
        events = sink.by_kind("counter")
        assert [event["value"] for event in events] == [1, 4]
        assert [event["delta"] for event in events] == [1, 3]
        assert telemetry.metrics.counter_values() == {"network.dropped": 4}

    def test_gauge_and_warning_and_mark_fields(self):
        telemetry, sink = make_telemetry()
        telemetry.gauge("privacy.epsilon_spent", 0.25)
        telemetry.warning("shard.departed", "shard 1 died", exit_code=23)
        telemetry.mark("shard.start", pid=99)
        gauge, warning, mark = sink.events
        assert (gauge["name"], gauge["value"]) == ("privacy.epsilon_spent", 0.25)
        assert warning["message"] == "shard 1 died"
        assert warning["attrs"] == {"exit_code": 23}
        assert mark["attrs"] == {"pid": 99}

    def test_forward_preserves_foreign_identity(self):
        shard, shard_sink = make_telemetry(src="shard:0")
        shard.mark("shard.start")
        chief, chief_sink = make_telemetry(src="chief")
        chief.mark("before")
        for event in shard_sink.events:
            chief.forward(event)
        forwarded = chief_sink.events[-1]
        assert forwarded["src"] == "shard:0"
        assert forwarded["seq"] == 0
        # Forwarding must not consume the chief's own seq numbers.
        chief.mark("after")
        assert chief_sink.events[-1]["seq"] == 1


class TestRunLifecycle:
    def test_open_close_produce_valid_trace(self):
        telemetry, sink = make_telemetry()
        telemetry.open_run(mode="train", gar="krum")
        telemetry.set_step(1)
        with telemetry.span("round.server"):
            pass
        telemetry.counter("rounds")
        telemetry.close_run()
        events = validate_events(sink.events)
        assert events[0]["kind"] == "run_start"
        assert events[0]["schema"] == TRACE_SCHEMA
        assert events[0]["meta"] == {"mode": "train", "gar": "krum"}
        assert events[-1]["kind"] == "run_end"
        assert events[-1]["counters"] == {"rounds": 1}
        assert events[-1]["elapsed_ns"] > 0

    def test_close_run_derives_rounds_per_sec(self):
        telemetry, sink = make_telemetry()
        telemetry.open_run()
        telemetry.counter("rounds", 10)
        telemetry.close_run()
        (gauge,) = sink.by_kind("gauge")
        assert gauge["name"] == "rounds_per_sec"
        assert gauge["value"] > 0

    def test_no_rate_gauge_without_rounds(self):
        telemetry, sink = make_telemetry()
        telemetry.open_run()
        telemetry.close_run()
        assert sink.by_kind("gauge") == []


class TestValidateEvents:
    def valid_trace(self):
        telemetry, sink = make_telemetry()
        telemetry.open_run(mode="train")
        telemetry.set_step(1)
        telemetry.counter("rounds")
        telemetry.close_run()
        return sink.events

    def test_accepts_valid_trace_and_returns_events(self):
        events = self.valid_trace()
        assert validate_events(events) == events

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError, match="empty"):
            validate_events([])

    def test_requires_run_start_first(self):
        events = self.valid_trace()
        with pytest.raises(TraceError, match="must open with a run_start"):
            validate_events(events[1:])

    def test_rejects_wrong_schema(self):
        events = self.valid_trace()
        events[0] = dict(events[0], schema="repro.trace/999")
        with pytest.raises(TraceError, match="unsupported trace schema"):
            validate_events(events)

    def test_rejects_unknown_kind(self):
        events = self.valid_trace()
        events.append({"kind": "bogus", "src": "chief", "seq": 99, "step": 1})
        with pytest.raises(TraceError, match="unknown event kind"):
            validate_events(events)

    def test_rejects_missing_required_field(self):
        events = self.valid_trace()
        span = {"kind": "span", "src": "chief", "seq": 99, "step": 1, "name": "x"}
        events.append(span)  # no dur_ns
        with pytest.raises(TraceError, match="missing required field 'dur_ns'"):
            validate_events(events)

    def test_rejects_duplicate_run_start(self):
        events = self.valid_trace()
        events.append(dict(events[0], seq=99))
        with pytest.raises(TraceError, match="duplicate run_start"):
            validate_events(events)

    def test_rejects_nonincreasing_seq_within_source(self):
        events = self.valid_trace()
        events.append(dict(events[-1], seq=events[-1]["seq"]))
        with pytest.raises(TraceError, match="does not increase"):
            validate_events(events)

    def test_rejects_step_going_backwards_within_source(self):
        events = self.valid_trace()
        events.append(
            {"kind": "mark", "src": "chief", "seq": 99, "step": 0, "name": "late"}
        )
        with pytest.raises(TraceError, match="goes backwards"):
            validate_events(events)

    def test_sources_are_ordered_independently(self):
        """The merged multiprocess trace interleaves sources: per-source
        monotonicity must hold, cross-source ordering must not be
        required."""
        events = self.valid_trace()
        events.append(
            {"kind": "mark", "src": "shard:0", "seq": 5, "step": 3, "name": "a"}
        )
        events.append(
            {"kind": "mark", "src": "shard:1", "seq": 0, "step": 1, "name": "b"}
        )
        events.append(
            {"kind": "mark", "src": "shard:0", "seq": 6, "step": 3, "name": "c"}
        )
        validate_events(events)

    def test_rejects_negative_span_duration(self):
        events = self.valid_trace()
        events.append(
            {
                "kind": "span", "src": "chief", "seq": 99, "step": 1,
                "name": "x", "dur_ns": -1,
            }
        )
        with pytest.raises(TraceError, match="dur_ns"):
            validate_events(events)

    def test_rejects_bad_src_and_seq_types(self):
        events = self.valid_trace()
        events.append({"kind": "mark", "src": "", "seq": 99, "step": 1, "name": "x"})
        with pytest.raises(TraceError, match="src must be"):
            validate_events(events)
        events[-1] = {"kind": "mark", "src": "chief", "seq": "9", "step": 1, "name": "x"}
        with pytest.raises(TraceError, match="seq must be"):
            validate_events(events)

    def test_trace_error_is_a_repro_error(self):
        """The CLI maps ReproError to exit code 2; bad traces must ride
        that path."""
        assert issubclass(TraceError, ConfigurationError)
        assert issubclass(TraceError, ReproError)

    def test_event_kinds_closed_vocabulary(self):
        assert EVENT_KINDS == (
            "run_start", "span", "counter", "gauge", "warning", "mark", "run_end"
        )
