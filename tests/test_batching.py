"""Tests for repro.data.batching."""

import numpy as np
import pytest

from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.rng import generator_from_seed


def dataset(n=20, d=3):
    rng = np.random.default_rng(1)
    return Dataset(features=rng.random((n, d)), labels=np.arange(n, dtype=float))


class TestBatchSampler:
    def test_batch_shapes(self):
        sampler = BatchSampler(dataset(), 5, generator_from_seed(0))
        features, labels = sampler.sample()
        assert features.shape == (5, 3)
        assert labels.shape == (5,)

    def test_no_duplicates_within_batch_by_default(self):
        sampler = BatchSampler(dataset(n=10), 10, generator_from_seed(0))
        _, labels = sampler.sample()
        assert len(set(labels.tolist())) == 10

    def test_replacement_allows_oversized_batches(self):
        sampler = BatchSampler(
            dataset(n=5), 20, generator_from_seed(0), replace_within_batch=True
        )
        features, labels = sampler.sample()
        assert features.shape == (20, 3)

    def test_oversized_batch_rejected_without_replacement(self):
        with pytest.raises(DataError, match="exceeds"):
            BatchSampler(dataset(n=5), 6, generator_from_seed(0))

    def test_batch_size_one_allowed(self):
        sampler = BatchSampler(dataset(), 1, generator_from_seed(0))
        features, _ = sampler.sample()
        assert features.shape == (1, 3)

    def test_zero_batch_rejected(self):
        with pytest.raises(DataError):
            BatchSampler(dataset(), 0, generator_from_seed(0))

    def test_deterministic_given_rng(self):
        a = BatchSampler(dataset(), 4, generator_from_seed(3))
        b = BatchSampler(dataset(), 4, generator_from_seed(3))
        for _ in range(5):
            fa, la = a.sample()
            fb, lb = b.sample()
            assert np.array_equal(fa, fb)
            assert np.array_equal(la, lb)

    def test_successive_batches_differ(self):
        sampler = BatchSampler(dataset(n=100), 10, generator_from_seed(0))
        _, first = sampler.sample()
        _, second = sampler.sample()
        assert not np.array_equal(first, second)

    def test_batch_rows_come_from_dataset(self):
        data = dataset(n=30)
        sampler = BatchSampler(data, 8, generator_from_seed(2))
        features, labels = sampler.sample()
        for row, label in zip(features, labels):
            index = int(label)  # labels are arange, so they identify rows
            assert np.array_equal(row, data.features[index])

    def test_properties(self):
        data = dataset()
        sampler = BatchSampler(data, 4, generator_from_seed(0))
        assert sampler.batch_size == 4
        assert sampler.dataset is data
