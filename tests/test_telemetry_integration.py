"""Telemetry across the execution surfaces: bit-identity and coverage.

The plane's two core promises, checked end to end on the in-process
engine (per-round and fused paths) and the event-driven simulator:

* **enabled is bit-identical** — a run observed by telemetry produces
  exactly the parameters, losses, and accuracies of an unobserved run
  (telemetry never draws randomness), including every committed golden
  trace;
* **disabled is free** — an uninstrumented ``Cluster.step`` never
  enters a single ``repro.telemetry`` frame (zero extra hops beyond
  the ``is None`` attribute check).
"""

import sys

import pytest

from repro.data.phishing import make_phishing_dataset
from repro.models.logistic import LogisticRegressionModel
from repro.pipeline.builder import Experiment
from repro.telemetry import (
    MemorySink,
    Telemetry,
    read_trace,
    summarize_trace,
    validate_events,
)

from tests.test_golden_traces import CASES as GOLDEN_CASES
from tests.test_golden_traces import GOLDEN_PATH, _run_case


def make_experiment(**overrides):
    settings = dict(
        model=LogisticRegressionModel(6),
        train_dataset=make_phishing_dataset(seed=0, num_points=150, num_features=6),
        num_steps=5,
        n=9,
        f=3,
        gar="krum",
        attack="little",
        batch_size=10,
        eval_every=2,
        seed=11,
    )
    settings.update(overrides)
    return Experiment(**settings)


def observed_run(**overrides):
    sink = MemorySink()
    telemetry = Telemetry(sinks=[sink])
    result = make_experiment(telemetry=telemetry, **overrides).run()
    return result, sink


class TestBitIdentity:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},  # fused engine (no callbacks attached)
            {"epsilon": 0.5},
            {"drop_probability": 0.3},
            {  # per-round path: the accuracy callback disables fusion
                "test_dataset": make_phishing_dataset(
                    seed=1, num_points=40, num_features=6
                )
            },
        ],
        ids=["fused", "fused-dp", "fused-lossy", "per-round"],
    )
    def test_run_unchanged_by_telemetry(self, overrides):
        baseline = make_experiment(**overrides).run()
        observed, sink = observed_run(**overrides)
        assert (
            observed.final_parameters.tolist()
            == baseline.final_parameters.tolist()
        )
        assert list(observed.history.losses) == list(baseline.history.losses)
        assert list(observed.history.accuracies) == list(baseline.history.accuracies)
        assert len(sink.events) > 0

    def test_simulate_unchanged_by_telemetry(self):
        baseline = make_experiment().simulate()
        sink = MemorySink()
        observed = make_experiment(telemetry=Telemetry(sinks=[sink])).simulate()
        assert (
            observed.final_parameters.tolist()
            == baseline.final_parameters.tolist()
        )
        assert list(observed.history.losses) == list(baseline.history.losses)
        assert len(sink.events) > 0


class TestGoldenReplayWithTelemetry:
    """Satellite: every committed golden trace replays bit-identically
    while a telemetry handle observes the run."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_golden_case_bit_identical_under_telemetry(self, name):
        import json

        golden = json.loads(GOLDEN_PATH.read_text())
        sink = MemorySink()
        overrides = dict(GOLDEN_CASES[name], telemetry=Telemetry(sinks=[sink]))
        actual = _run_case(overrides)
        assert actual == golden[name]
        validate_events(sink.events)
        assert sink.by_kind("span")  # the run was actually observed


class TestTraceContents:
    def test_fused_run_emits_valid_trace_with_block_spans(self):
        _, sink = observed_run()
        events = validate_events(sink.events)
        assert events[0]["meta"]["mode"] == "train"
        assert events[0]["meta"]["gar"] == "krum"
        span_names = {event["name"] for event in sink.by_kind("span")}
        # The fused engine's per-block phases, each tagged with the
        # rounds the block covered.
        assert {"round.cohort", "round.attack", "round.server"} <= span_names
        block_span = sink.named("round.cohort")[0]
        assert block_span["attrs"]["rounds"] >= 1
        summary = summarize_trace(sink.events)
        assert summary["counters"]["rounds"] == 5
        assert summary["gauges"]["rounds_per_sec"] > 0

    def test_per_round_run_emits_one_span_per_round(self):
        test_set = make_phishing_dataset(seed=1, num_points=40, num_features=6)
        _, sink = observed_run(test_dataset=test_set)
        validate_events(sink.events)
        assert len(sink.named("round.server")) == 5
        assert len(sink.named("round.cohort")) == 5
        winner_gauges = sink.named("gar.winner_index")
        assert winner_gauges  # krum selects a single input each round
        for event in winner_gauges:
            assert 0 <= event["value"] < 9

    def test_dropped_messages_counted_on_lossy_network(self):
        _, sink = observed_run(drop_probability=0.5)
        summary = summarize_trace(sink.events)
        assert summary["counters"]["network.dropped"] > 0

    def test_epsilon_gauge_reported_for_dp_runs(self):
        result, sink = observed_run(epsilon=0.5)
        summary = summarize_trace(sink.events)
        assert (
            summary["gauges"]["privacy.epsilon_spent"]
            == result.privacy.basic.epsilon
        )
        _, nodp_sink = observed_run()
        assert "privacy.epsilon_spent" not in summarize_trace(nodp_sink.events)["gauges"]

    def test_simulator_trace_stamps_server_steps(self):
        sink = MemorySink()
        make_experiment(telemetry=Telemetry(sinks=[sink])).simulate()
        events = validate_events(sink.events)
        assert events[0]["meta"]["mode"] == "simulate"
        span_names = {event["name"] for event in sink.by_kind("span")}
        assert {"round.cohort", "round.server"} <= span_names
        summary = summarize_trace(sink.events)
        assert summary["counters"]["rounds"] == 5

    def test_path_spec_writes_jsonl_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result = make_experiment(telemetry=path).run()
        baseline = make_experiment().run()
        assert result.final_parameters.tolist() == baseline.final_parameters.tolist()
        events = validate_events(read_trace(path))
        assert events[-1]["kind"] == "run_end"

    def test_shared_instance_observes_several_runs(self):
        """A caller-owned handle is flushed, not closed, between runs."""
        sink = MemorySink()
        telemetry = Telemetry(sinks=[sink])
        make_experiment(num_steps=2, telemetry=telemetry).run()
        first_total = len(sink.events)
        make_experiment(num_steps=2, telemetry=telemetry).run()
        assert len(sink.events) > first_total

    def test_rejects_bogus_telemetry_spec(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="telemetry must be"):
            make_experiment(telemetry=object())


class TestOffPathOverhead:
    """Satellite: with no handle installed, the hot path executes zero
    telemetry frames — the cost is one attribute-is-None check."""

    def test_uninstrumented_step_never_enters_telemetry_code(self):
        experiment = make_experiment()
        cluster = experiment.build_cluster()
        assert cluster.telemetry is None
        cluster.step()  # warm caches outside the profiled region
        telemetry_frames = []

        def profiler(frame, event, arg):
            if event == "call" and "repro/telemetry" in frame.f_code.co_filename:
                telemetry_frames.append(frame.f_code.co_name)

        sys.setprofile(profiler)
        try:
            cluster.step()
        finally:
            sys.setprofile(None)
        assert telemetry_frames == []

    def test_uninstrumented_fused_run_never_enters_telemetry_code(self):
        experiment = make_experiment()
        cluster = experiment.build_cluster()
        engine = cluster.engine
        assert engine.supports_fused
        engine.run(1)
        telemetry_frames = []

        def profiler(frame, event, arg):
            if event == "call" and "repro/telemetry" in frame.f_code.co_filename:
                telemetry_frames.append(frame.f_code.co_name)

        sys.setprofile(profiler)
        try:
            engine.run(2)
        finally:
            sys.setprofile(None)
        assert telemetry_frames == []

    def test_instrumented_step_is_the_observed_twin(self):
        """Sanity check on the guard above: with a handle installed the
        same profiler *does* see telemetry frames."""
        experiment = make_experiment()
        cluster = experiment.build_cluster()
        cluster.telemetry = Telemetry(sinks=[MemorySink()])
        cluster.step()
        telemetry_frames = []

        def profiler(frame, event, arg):
            if event == "call" and "repro/telemetry" in frame.f_code.co_filename:
                telemetry_frames.append(frame.f_code.co_name)

        sys.setprofile(profiler)
        try:
            cluster.step()
        finally:
            sys.setprofile(None)
        assert telemetry_frames != []
