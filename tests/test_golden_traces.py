"""Golden-trace regression tests for the vectorized aggregation engine.

Each case pins a seed and runs a short end-to-end training job (one per
GAR × attack × mechanism combination, including a lossy-network cell)
and asserts the engine reproduces the committed trace *bit-identically*:
every recorded loss, every recorded accuracy, and the final parameter
vector must round-trip exactly.  JSON stores floats via ``repr``, which
round-trips IEEE-754 doubles exactly, so equality here is equality of
bits — any change to the order of floating-point operations anywhere in
the pipeline (kernels, cohort batching, clipping, noise, momentum)
fails these tests.

Regenerating after an *intentional* numerical change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

then commit the updated ``tests/golden/traces.json`` and call out the
trace change in the PR.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.phishing import make_phishing_dataset
from repro.distributed.trainer import train
from repro.models.logistic import LogisticRegressionModel

GOLDEN_PATH = Path(__file__).parent / "golden" / "traces.json"

#: name -> train() keyword overrides.  Every case shares the small
#: seed-pinned phishing environment below; together they cover the
#: selection GARs (krum, mda, bulyan), the iterative geometric median,
#: a coordinate-wise rule, both DP mechanisms, no-DP, four attacks,
#: the no-attack path, and the dropped-message (lossy network) path.
CASES = {
    "mda-little-gaussian": dict(
        gar="mda", attack="little", epsilon=0.5, noise_kind="gaussian", n=9, f=3
    ),
    "krum-signflip-nodp": dict(gar="krum", attack="signflip", n=9, f=3),
    "median-empire-laplace": dict(
        gar="median", attack="empire", epsilon=1.0, noise_kind="laplace", n=9, f=4
    ),
    "geomedian-little-gaussian": dict(
        gar="geometric-median",
        attack="little",
        epsilon=0.5,
        noise_kind="gaussian",
        n=9,
        f=4,
    ),
    "bulyan-zero-nodp": dict(gar="bulyan", attack="zero", n=11, f=2),
    "trimmedmean-noattack-gaussian": dict(
        gar="trimmed-mean", attack=None, epsilon=0.2, noise_kind="gaussian", n=9, f=4
    ),
    "meamed-little-nodp-lossy": dict(
        gar="meamed", attack="little", n=9, f=4, drop_probability=0.3
    ),
}


def _run_case(overrides: dict) -> dict:
    """One short, fully seed-pinned training run -> JSON-able trace."""
    dataset = make_phishing_dataset(seed=0, num_points=240, num_features=10)
    result = train(
        model=LogisticRegressionModel(10),
        train_dataset=dataset,
        test_dataset=make_phishing_dataset(seed=1, num_points=60, num_features=10),
        num_steps=6,
        batch_size=10,
        eval_every=3,
        seed=7,
        **overrides,
    )
    return {
        "loss_steps": [int(step) for step in result.history.loss_steps],
        "losses": [float(loss) for loss in result.history.losses],
        "accuracy_steps": [int(step) for step in result.history.accuracy_steps],
        "accuracies": [float(acc) for acc in result.history.accuracies],
        "final_parameters": [float(value) for value in result.final_parameters],
    }


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {GOLDEN_PATH}; record it with "
            "--regen-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_regen_golden(request):
    """Not a test of behaviour: rewrites the fixture when asked to."""
    if not request.config.getoption("--regen-golden"):
        pytest.skip("pass --regen-golden to re-record the golden traces")
    traces = {name: _run_case(overrides) for name, overrides in CASES.items()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(traces, indent=2) + "\n")


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_bit_identical(name, golden, request):
    if request.config.getoption("--regen-golden"):
        pytest.skip("regenerating, not asserting")
    assert name in golden, f"no golden trace for {name}; run --regen-golden"
    expected = golden[name]
    actual = _run_case(CASES[name])
    assert actual["loss_steps"] == expected["loss_steps"]
    assert actual["accuracy_steps"] == expected["accuracy_steps"]
    # Bit-identical: exact float equality, not allclose.
    assert actual["losses"] == expected["losses"]
    assert actual["accuracies"] == expected["accuracies"]
    assert actual["final_parameters"] == expected["final_parameters"]


def test_golden_covers_all_cases(golden):
    """The fixture and the case table must not drift apart."""
    assert sorted(golden) == sorted(CASES)


def test_traces_are_nontrivial(golden):
    """Guard against recording a degenerate (all-zero / empty) trace."""
    for name, trace in golden.items():
        assert len(trace["losses"]) == 6, name
        assert any(value != 0.0 for value in trace["final_parameters"]), name
        assert np.all(np.isfinite(trace["losses"])), name
