"""Edge cases for privacy amplification by subsampling, and the
amplified per-worker :class:`PrivacyReport` path the simulator feeds."""

import math

import pytest

from repro.exceptions import PrivacyError
from repro.privacy.amplification import amplify_by_rate, amplify_by_subsampling
from repro.privacy.mechanisms import GaussianMechanism
from repro.pipeline.results import amplified_privacy_report, privacy_report


class TestAmplifyByRate:
    def test_rate_one_is_bit_exact_identity(self):
        spend = amplify_by_rate(0.7, 1e-6, 1.0)
        assert spend.epsilon == 0.7
        assert spend.delta == 1e-6

    def test_rate_below_one_strictly_tighter(self):
        base_epsilon, base_delta = 0.5, 1e-6
        spend = amplify_by_rate(base_epsilon, base_delta, 0.3)
        assert spend.epsilon < base_epsilon
        assert spend.delta < base_delta
        assert spend.epsilon == pytest.approx(
            math.log(1.0 + 0.3 * (math.exp(0.5) - 1.0))
        )

    def test_vanishing_rate_limit(self):
        """As q -> 0 the amplified budget behaves like q * (e^eps - 1) -> 0."""
        epsilon = 1.0
        previous = amplify_by_rate(epsilon, 1e-6, 1e-3).epsilon
        for rate in (1e-6, 1e-9, 1e-12):
            current = amplify_by_rate(epsilon, 1e-6, rate).epsilon
            assert 0 < current < previous
            assert current == pytest.approx(rate * (math.e - 1.0), rel=1e-3)
            previous = current

    def test_monotone_in_rate(self):
        spends = [amplify_by_rate(0.5, 1e-6, q).epsilon for q in (0.1, 0.3, 0.7, 1.0)]
        assert spends == sorted(spends)

    def test_invalid_inputs(self):
        with pytest.raises(PrivacyError):
            amplify_by_rate(0.0, 1e-6, 0.5)
        with pytest.raises(PrivacyError):
            amplify_by_rate(0.5, 1.0, 0.5)
        with pytest.raises(PrivacyError):
            amplify_by_rate(0.5, 1e-6, 0.0)
        with pytest.raises(PrivacyError):
            amplify_by_rate(0.5, 1e-6, 1.5)


class TestAmplifyBySubsamplingEdges:
    def test_full_batch_reduces_to_identity(self):
        """q = 1 (batch == dataset): no subsampling, no amplification."""
        spend = amplify_by_subsampling(0.4, 1e-6, batch_size=500, dataset_size=500)
        assert spend.epsilon == 0.4
        assert spend.delta == 1e-6

    def test_tiny_rate_limit(self):
        """q -> 0: epsilon shrinks toward q * (e^eps - 1), delta toward q*delta."""
        spend = amplify_by_subsampling(1.0, 1e-4, batch_size=1, dataset_size=10**9)
        rate = 1e-9
        assert spend.epsilon == pytest.approx(rate * (math.e - 1.0), rel=1e-6)
        assert spend.delta == pytest.approx(rate * 1e-4)

    def test_invalid_batch_size(self):
        with pytest.raises(PrivacyError, match="batch_size"):
            amplify_by_subsampling(0.5, 1e-6, batch_size=0, dataset_size=100)
        with pytest.raises(PrivacyError, match="batch_size"):
            amplify_by_subsampling(0.5, 1e-6, batch_size=-5, dataset_size=100)

    def test_batch_larger_than_dataset(self):
        with pytest.raises(PrivacyError, match="dataset_size"):
            amplify_by_subsampling(0.5, 1e-6, batch_size=101, dataset_size=100)

    def test_matches_rate_form(self):
        by_sizes = amplify_by_subsampling(0.5, 1e-6, batch_size=50, dataset_size=1000)
        by_rate = amplify_by_rate(0.5, 1e-6, 50 / 1000)
        assert by_sizes == by_rate


class TestAmplifiedPrivacyReport:
    def setup_method(self):
        self.mechanism = GaussianMechanism.for_clipped_gradients(
            epsilon=0.5, delta=1e-6, g_max=1e-2, batch_size=25
        )

    def test_none_without_dp(self):
        assert amplified_privacy_report(None, None, 1e-6, 100, 0.5) is None
        assert amplified_privacy_report(self.mechanism, None, 1e-6, 100, 0.5) is None

    def test_subsampled_strictly_tighter_than_unsampled_same_noise(self):
        """The acceptance criterion: same mechanism (same noise sigma),
        subsampled run reports a strictly smaller total budget."""
        unsampled = privacy_report(self.mechanism, 0.5, 1e-6, 100)
        amplified = amplified_privacy_report(self.mechanism, 0.5, 1e-6, 100, 0.6)
        assert amplified.noise_sigma == unsampled.noise_sigma
        assert amplified.per_step.epsilon < unsampled.per_step.epsilon
        assert amplified.basic.epsilon < unsampled.basic.epsilon
        assert amplified.advanced.epsilon < unsampled.advanced.epsilon
        assert amplified.sampling_rate == 0.6
        assert unsampled.sampling_rate is None

    def test_rate_one_matches_basic_composition(self):
        full = amplified_privacy_report(self.mechanism, 0.5, 1e-6, 50, 1.0)
        unsampled = privacy_report(self.mechanism, 0.5, 1e-6, 50)
        assert full.per_step == unsampled.per_step
        assert full.basic == unsampled.basic
        assert full.advanced == unsampled.advanced

    def test_zero_rate_reports_zero_spend(self):
        report = amplified_privacy_report(self.mechanism, 0.5, 1e-6, 100, 0.0)
        assert report.per_step.epsilon == 0.0
        assert report.basic.epsilon == 0.0
        assert report.advanced.epsilon == 0.0
        assert report.sampling_rate == 0.0

    def test_rdp_omitted_for_amplified_reports(self):
        report = amplified_privacy_report(self.mechanism, 0.5, 1e-6, 100, 0.5)
        assert report.rdp is None

    def test_summary_mentions_rate(self):
        report = amplified_privacy_report(self.mechanism, 0.5, 1e-6, 100, 0.5)
        assert "q=0.5" in report.summary()


class TestSimulatedSubsampledRun:
    """End-to-end: a subsampled simulation reports tighter budgets than
    the same experiment at full participation, at identical noise."""

    def _simulate(self, **overrides):
        from repro.data.phishing import make_phishing_dataset
        from repro.models.logistic import LogisticRegressionModel
        from repro.pipeline.builder import Experiment

        return Experiment(
            model=LogisticRegressionModel(6),
            train_dataset=make_phishing_dataset(seed=0, num_points=120, num_features=6),
            num_steps=10,
            n=5,
            f=1,
            gar="median",
            attack="little",
            batch_size=10,
            epsilon=0.5,
            seed=3,
            **overrides,
        ).simulate()

    def test_per_worker_reports_strictly_tighter(self):
        subsampled = self._simulate(
            participation_rate=0.5, participation_kind="uniform"
        )
        full = self._simulate()
        for worker, report in subsampled.per_worker_privacy.items():
            baseline = full.per_worker_privacy[worker]
            assert report.noise_sigma == baseline.noise_sigma  # same mechanism
            assert report.basic.epsilon < baseline.basic.epsilon
            assert report.advanced.epsilon < baseline.advanced.epsilon
            assert report.sampling_rate < 1.0
        assert all(
            report.sampling_rate == 1.0
            for report in full.per_worker_privacy.values()
        )

    def test_rates_match_reported_sampling(self):
        result = self._simulate(participation_rate=0.5, participation_kind="uniform")
        for worker, rate in result.participation_rates.items():
            assert result.per_worker_privacy[worker].sampling_rate == rate
