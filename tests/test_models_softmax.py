"""Tests for the softmax classifier."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.softmax import SoftmaxClassifierModel
from tests.helpers import numerical_gradient


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    features = rng.standard_normal((10, 3))
    labels = rng.integers(0, 4, size=10).astype(float)
    return features, labels


class TestSoftmax:
    def test_dimension(self):
        model = SoftmaxClassifierModel(num_features=3, num_classes=4)
        assert model.dimension == 4 * 4  # 4 classes x (3 features + bias)

    def test_invalid_classes(self):
        with pytest.raises(ConfigurationError):
            SoftmaxClassifierModel(3, num_classes=1)

    def test_gradient_matches_numerical(self, batch):
        features, labels = batch
        model = SoftmaxClassifierModel(3, 4)
        w = 0.3 * np.random.default_rng(1).standard_normal(model.dimension)
        numeric = numerical_gradient(lambda p: model.loss(p, features, labels), w)
        assert np.allclose(model.gradient(w, features, labels), numeric, atol=1e-6)

    def test_per_example_mean_equals_batch(self, batch):
        features, labels = batch
        model = SoftmaxClassifierModel(3, 4)
        w = np.random.default_rng(2).standard_normal(model.dimension)
        per_example = model.per_example_gradients(w, features, labels)
        assert per_example.shape == (10, model.dimension)
        assert np.allclose(per_example.mean(axis=0), model.gradient(w, features, labels))

    def test_loss_at_zero_weights(self, batch):
        """Uniform predictions give loss log(num_classes)."""
        features, labels = batch
        model = SoftmaxClassifierModel(3, 4)
        assert model.loss(np.zeros(model.dimension), features, labels) == pytest.approx(
            np.log(4.0)
        )

    def test_predictions_in_range(self, batch):
        features, _ = batch
        model = SoftmaxClassifierModel(3, 4)
        w = np.random.default_rng(3).standard_normal(model.dimension)
        predictions = model.predict(w, features)
        assert set(np.unique(predictions)) <= {0.0, 1.0, 2.0, 3.0}

    def test_label_validation(self, batch):
        features, _ = batch
        model = SoftmaxClassifierModel(3, 4)
        with pytest.raises(ValueError, match="labels"):
            model.loss(np.zeros(model.dimension), features, np.full(10, 7.0))

    def test_fractional_labels_rejected(self, batch):
        features, _ = batch
        model = SoftmaxClassifierModel(3, 4)
        with pytest.raises(ValueError, match="labels"):
            model.loss(np.zeros(model.dimension), features, np.full(10, 0.5))

    def test_large_logits_stable(self, batch):
        features, labels = batch
        model = SoftmaxClassifierModel(3, 4)
        w = 1e4 * np.ones(model.dimension)
        assert np.isfinite(model.loss(w, features, labels))

    def test_learns_separable_task(self):
        """A few GD steps crack a trivially separable 3-class task."""
        rng = np.random.default_rng(4)
        centers = np.array([[5.0, 0.0], [0.0, 5.0], [-5.0, -5.0]])
        labels = rng.integers(0, 3, size=150).astype(float)
        features = centers[labels.astype(int)] + 0.3 * rng.standard_normal((150, 2))
        model = SoftmaxClassifierModel(2, 3)
        w = np.zeros(model.dimension)
        for _ in range(200):
            w -= 0.5 * model.gradient(w, features, labels)
        assert model.accuracy(w, features, labels) >= 0.99
